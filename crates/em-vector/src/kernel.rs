//! Blocked similarity kernels — the compute layer behind the spatial
//! pipeline *and* the matcher's batched GEMM engine.
//!
//! The cluster → graph → centrality pipeline (§3.3) spends its time in
//! two primitives: pairwise dot products of unit-norm pair
//! representations (edge scoring; the paper runs this step on FAISS's
//! batched kernels, §4.2) and point-to-centroid squared distances
//! (K-Means). The matcher half of each iteration (§3.1/§4.2) spends its
//! time in dense layer products, which reduce to the same primitive.
//! This module provides the batched versions every hot path now uses:
//!
//! * [`gemm`] / [`gemm_bias_relu`] — cache-blocked row-major `A·Bᵀ`
//!   matrix products (the MLP forward/backward building block; the
//!   fused variant adds a per-column bias and an optional ReLU);
//! * [`gram_packed`] / [`gram_block`] — cache-blocked Gram matrices
//!   (`X·Yᵀ`) over row subsets, computed once and reused by every
//!   downstream stage;
//! * [`top_k_batch`] — batched top-`k` by dot product with the exact
//!   ordering semantics of the scalar [`crate::knn`] search;
//! * [`sq_dist`] / [`sq_dist_batch`] — an ILP-friendly unrolled squared
//!   Euclidean distance (the seed's scalar loop carried a
//!   single-accumulator dependency chain that cost ~3× on wide rows);
//! * [`pack_rows`] — gathers a row subset into a contiguous buffer so
//!   the kernels stream without indirection.
//!
//! # Dispatch tiers
//!
//! Every inner product goes through one runtime-dispatched [`dot`]
//! kernel with two tiers, decided **once** at startup (cached in a
//! `OnceLock`) via `std::is_x86_feature_detected!`:
//!
//! * [`SimdTier::Portable`] — the 16-lane autovectorizing form shared
//!   with [`crate::embeddings::dot`]; compiles on every target.
//! * [`SimdTier::Avx2`] — explicit AVX2 intrinsics (selected when the
//!   CPU reports `avx2` **and** `fma`): the same 16 lanes held in two
//!   256-bit accumulators, multiply-then-add per lane.
//!
//! `EM_SIMD_TIER=portable` forces the fallback (e.g. to A/B the tiers on
//! one machine); [`with_simd_tier`] overrides the tier on the current
//! thread for golden tests.
//!
//! # Reduction-order contract
//!
//! All tiers compute **bit-identical** results: 16 fixed accumulator
//! lanes (lane `l` accumulates elements `16·c + l`), lanes reduced in
//! ascending order, scalar remainder folded last. The AVX2 tier encodes
//! exactly that shape — and deliberately performs *separate* multiply
//! and add (no `fmadd` contraction: FMA's single rounding would diverge
//! from the portable lanes; AVX-512 with an FMA inner loop behind a
//! tolerance-gated — not bit-gated — comparison is the recorded next
//! step in ROADMAP.md). Blocked kernels ([`gemm`], [`gram_packed`], …)
//! evaluate each output entry as exactly one [`dot`] call (plus, for the
//! fused variant, one bias add after the reduction), so blocking and
//! parallelism only reorder *which entries* are computed when, never the
//! arithmetic within an entry. The golden tests in this module and the
//! matcher's GEMM-vs-scalar tests assert exactly that.

use std::cell::Cell;
use std::sync::OnceLock;

use rayon::prelude::*;

use crate::embeddings::{dot as portable_dot, Embeddings};
use crate::knn::{Neighbor, TopBuffer};

// --- Runtime ISA dispatch. -----------------------------------------------

/// Instruction-set tier the dispatched kernels run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdTier {
    /// 16-lane portable form (LLVM autovectorizes it on any target).
    Portable,
    /// Explicit AVX2 intrinsics; selected when the CPU reports both
    /// `avx2` and `fma`. Bit-identical to [`SimdTier::Portable`] (see
    /// the module-level reduction-order contract).
    Avx2,
}

impl SimdTier {
    /// Stable display name (`"portable"` / `"avx2"`).
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Portable => "portable",
            SimdTier::Avx2 => "avx2",
        }
    }
}

/// Detect the best available tier. `EM_SIMD_TIER=portable` forces the
/// fallback; any other value (or none) means "best detected".
fn detect_tier() -> SimdTier {
    if std::env::var("EM_SIMD_TIER").is_ok_and(|v| v.eq_ignore_ascii_case("portable")) {
        return SimdTier::Portable;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma") {
            return SimdTier::Avx2;
        }
    }
    SimdTier::Portable
}

thread_local! {
    /// Per-thread tier override for golden tests ([`with_simd_tier`]).
    static TIER_OVERRIDE: Cell<Option<SimdTier>> = const { Cell::new(None) };
}

/// The dispatched tier: the startup detection, unless overridden on this
/// thread by [`with_simd_tier`]. The detection runs once per process.
pub fn simd_tier() -> SimdTier {
    if let Some(t) = TIER_OVERRIDE.with(Cell::get) {
        return t;
    }
    static TIER: OnceLock<SimdTier> = OnceLock::new();
    *TIER.get_or_init(detect_tier)
}

/// Run `f` with the dispatched tier pinned on the **current thread**
/// (golden tests compare the tiers this way; combine with
/// `rayon::serial_scope` so no work escapes to other threads). A
/// requested tier the hardware cannot run is clamped to the best
/// available one, so this is always safe to call. The previous override
/// is restored even if `f` panics (test harnesses catch unwinds and
/// reuse the thread).
pub fn with_simd_tier<R>(tier: SimdTier, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<SimdTier>);
    impl Drop for Restore {
        fn drop(&mut self) {
            TIER_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let clamped = tier.min(detect_tier());
    let _restore = Restore(TIER_OVERRIDE.with(|c| c.replace(Some(clamped))));
    f()
}

/// AVX2 dot product mirroring the portable 16-lane kernel exactly:
/// lanes 0–7 live in `acc0`, lanes 8–15 in `acc1`, each updated with a
/// separate multiply and add (no `fmadd`), then reduced in lane order
/// with the scalar remainder folded last — bit-identical to
/// [`crate::embeddings::dot`] by construction.
///
/// # Safety
/// Requires the `avx2` CPU feature (guaranteed by dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = a.len();
    let chunks = n / 16;
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    for c in 0..chunks {
        let base = c * 16;
        let a0 = _mm256_loadu_ps(pa.add(base));
        let b0 = _mm256_loadu_ps(pb.add(base));
        let a1 = _mm256_loadu_ps(pa.add(base + 8));
        let b1 = _mm256_loadu_ps(pb.add(base + 8));
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(a0, b0));
        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(a1, b1));
    }
    let mut lanes = [0.0f32; 16];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc0);
    _mm256_storeu_ps(lanes.as_mut_ptr().add(8), acc1);
    let mut sum = 0.0f32;
    for lane in lanes {
        sum += lane;
    }
    for i in chunks * 16..n {
        sum += a[i] * b[i];
    }
    sum
}

/// Four dot products of one left row against four consecutive packed
/// right rows — the GEMM micro-kernel. Each output is computed with
/// **exactly** the [`dot_avx2`] recipe (its own accumulator pair,
/// multiply-then-add, lane-order reduction, sequential remainder), so
/// every result is bit-identical to a standalone `dot` call; grouping
/// only shares the loads of `a` and amortizes call overhead.
///
/// # Safety
/// Requires the `avx2` CPU feature (guaranteed by dispatch); `b` must
/// hold four consecutive rows of `a.len()` starting at `b_off`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// The remainder loop indexes `a` in lockstep with raw row pointers; the
// indexed form keeps that correspondence visible.
#[allow(clippy::needless_range_loop)]
unsafe fn dot4_avx2(a: &[f32], b: &[f32], b_off: usize, out: &mut [f32]) {
    use std::arch::x86_64::*;
    let k = a.len();
    let chunks = k / 16;
    let pa = a.as_ptr();
    let pb0 = b.as_ptr().add(b_off);
    let pb1 = pb0.add(k);
    let pb2 = pb1.add(k);
    let pb3 = pb2.add(k);
    let mut acc = [_mm256_setzero_ps(); 8];
    for c in 0..chunks {
        let base = c * 16;
        let a0 = _mm256_loadu_ps(pa.add(base));
        let a1 = _mm256_loadu_ps(pa.add(base + 8));
        acc[0] = _mm256_add_ps(acc[0], _mm256_mul_ps(a0, _mm256_loadu_ps(pb0.add(base))));
        acc[1] = _mm256_add_ps(
            acc[1],
            _mm256_mul_ps(a1, _mm256_loadu_ps(pb0.add(base + 8))),
        );
        acc[2] = _mm256_add_ps(acc[2], _mm256_mul_ps(a0, _mm256_loadu_ps(pb1.add(base))));
        acc[3] = _mm256_add_ps(
            acc[3],
            _mm256_mul_ps(a1, _mm256_loadu_ps(pb1.add(base + 8))),
        );
        acc[4] = _mm256_add_ps(acc[4], _mm256_mul_ps(a0, _mm256_loadu_ps(pb2.add(base))));
        acc[5] = _mm256_add_ps(
            acc[5],
            _mm256_mul_ps(a1, _mm256_loadu_ps(pb2.add(base + 8))),
        );
        acc[6] = _mm256_add_ps(acc[6], _mm256_mul_ps(a0, _mm256_loadu_ps(pb3.add(base))));
        acc[7] = _mm256_add_ps(
            acc[7],
            _mm256_mul_ps(a1, _mm256_loadu_ps(pb3.add(base + 8))),
        );
    }
    let rows = [pb0, pb1, pb2, pb3];
    for (j, row) in rows.iter().enumerate() {
        let mut lanes = [0.0f32; 16];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc[2 * j]);
        _mm256_storeu_ps(lanes.as_mut_ptr().add(8), acc[2 * j + 1]);
        let mut sum = 0.0f32;
        for lane in lanes {
            sum += lane;
        }
        for i in chunks * 16..k {
            sum += a[i] * *row.add(i);
        }
        out[j] = sum;
    }
}

/// Fill `out[j - j0]` with `dot(a, b_j)` for `j` in `j0..j1` over packed
/// rows of width `k` — the inner loop of every GEMM tile. On the AVX2
/// tier, groups of four consecutive rows go through the [`dot4_avx2`]
/// micro-kernel (bit-identical to per-entry dots; the grouping only
/// amortizes loads and calls), with per-entry dots on the remainder and
/// on the portable tier.
#[inline]
fn dot_row_with_tier(
    tier: SimdTier,
    a: &[f32],
    b: &[f32],
    k: usize,
    j0: usize,
    j1: usize,
    out: &mut [f32],
) {
    debug_assert!(j1 * k <= b.len());
    debug_assert!(j1 - j0 <= out.len());
    let mut j = j0;
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx2 {
        while j + 4 <= j1 {
            // SAFETY: Avx2 tier implies the feature is present; rows
            // j..j+4 lie inside `b` by the debug-asserted bound.
            unsafe { dot4_avx2(a, b, j * k, &mut out[j - j0..j - j0 + 4]) };
            j += 4;
        }
    }
    for jj in j..j1 {
        out[jj - j0] = dot_with_tier(tier, a, &b[jj * k..(jj + 1) * k]);
    }
}

/// Dot product on an explicit tier (dispatch hoisted by the blocked
/// kernels so the decision is made once per kernel call, not per entry).
#[inline]
pub fn dot_with_tier(tier: SimdTier, a: &[f32], b: &[f32]) -> f32 {
    // Hard assert: the AVX2 path reads `a.len()` elements of `b` through
    // raw pointers, so a length mismatch must panic here rather than
    // read out of bounds in release builds.
    assert_eq!(a.len(), b.len());
    match tier {
        SimdTier::Portable => portable_dot(a, b),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the Avx2 tier is only ever produced by `detect_tier`
        // (or clamped to it), which checks `avx2` at runtime.
        SimdTier::Avx2 => unsafe { dot_avx2(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        SimdTier::Avx2 => portable_dot(a, b),
    }
}

/// Runtime-dispatched dot product — the one inner-product kernel every
/// blocked path evaluates (bit-identical on every tier).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    dot_with_tier(simd_tier(), a, b)
}

/// Tile edge (rows × columns per block) for the blocked kernels. 64 rows
/// of a 128-d `f32` matrix are 32 KiB — two operand tiles stay resident
/// in L1/L2 while a tile of `TILE²` outputs is produced.
pub const TILE: usize = 64;

/// Gather `rows` of `data` into a contiguous row-major buffer.
///
/// The spatial pipeline operates on cluster subsets of a shared
/// embedding matrix; packing removes the per-access index indirection
/// and makes the kernels stream sequentially.
pub fn pack_rows(data: &Embeddings, rows: &[usize]) -> Vec<f32> {
    let dim = data.dim();
    let mut out = Vec::with_capacity(rows.len() * dim);
    for &r in rows {
        out.extend_from_slice(data.row(r));
    }
    out
}

/// Blocked Gram matrix between two packed row sets: `out[i·nb + j] =
/// dot(a_i, b_j)`.
///
/// `a` has `na` rows and `b` has `nb` rows, both of width `dim`. A Gram
/// matrix over row subsets *is* the [`gemm`] product `A·Bᵀ`, so this
/// simply delegates — same tiling, same micro-kernel, each entry one
/// [`dot`] call (bit-identical to the scalar path).
pub fn gram_block(a: &[f32], na: usize, b: &[f32], nb: usize, dim: usize, out: &mut [f32]) {
    gemm(a, na, b, nb, dim, out);
}

/// Cache-blocked row-major GEMM against a transposed right operand:
/// `out[i·n + j] = dot(a_i, b_j)` — i.e. `C = A·Bᵀ` with `A` of shape
/// `m × k` and `B` of shape `n × k`, both row-major.
///
/// This is the matcher's layer product: with `A` a batch of activations
/// and `B` a weight matrix stored as `n` output rows of `k` inputs,
/// `C` is the batch of pre-activations. Same tiling as [`gram_block`];
/// each entry is exactly one [`dot`] call on the tier dispatched once
/// per GEMM, so the result is bit-identical to the per-row scalar path
/// on every tier.
pub fn gemm(a: &[f32], m: usize, b: &[f32], n: usize, k: usize, out: &mut [f32]) {
    // Hard asserts: the AVX2 micro-kernel reads through raw pointers, so
    // an undersized operand must panic here rather than read out of
    // bounds in release builds.
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), n * k);
    assert_eq!(out.len(), m * n);
    let tier = simd_tier();
    for i0 in (0..m).step_by(TILE) {
        let i1 = (i0 + TILE).min(m);
        for j0 in (0..n).step_by(TILE) {
            let j1 = (j0 + TILE).min(n);
            for i in i0..i1 {
                let ai = &a[i * k..(i + 1) * k];
                let row_out = &mut out[i * n + j0..i * n + j1];
                dot_row_with_tier(tier, ai, b, k, j0, j1, row_out);
            }
        }
    }
}

/// [`gemm`] fused with a per-column bias add and an optional ReLU:
/// `out[i·n + j] = act(dot(a_i, b_j) + bias[j])` where `act` is
/// `max(0, ·)` when `relu` is set and the identity otherwise.
///
/// The bias is added **after** the dot reduction completes (one `f32`
/// add), matching the scalar forward path bit-for-bit; ReLU is a
/// max and cannot change bits beyond selecting them.
#[allow(clippy::too_many_arguments)]
pub fn gemm_bias_relu(
    a: &[f32],
    m: usize,
    b: &[f32],
    n: usize,
    k: usize,
    bias: &[f32],
    relu: bool,
    out: &mut [f32],
) {
    // Hard asserts — see [`gemm`] on why these cannot be debug-only.
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), n * k);
    assert_eq!(bias.len(), n);
    assert_eq!(out.len(), m * n);
    let tier = simd_tier();
    for i0 in (0..m).step_by(TILE) {
        let i1 = (i0 + TILE).min(m);
        for j0 in (0..n).step_by(TILE) {
            let j1 = (j0 + TILE).min(n);
            for i in i0..i1 {
                let ai = &a[i * k..(i + 1) * k];
                let row_out = &mut out[i * n + j0..i * n + j1];
                dot_row_with_tier(tier, ai, b, k, j0, j1, row_out);
                for (v, &bj) in row_out.iter_mut().zip(&bias[j0..j1]) {
                    *v += bj;
                    if relu {
                        *v = v.max(0.0);
                    }
                }
            }
        }
    }
}

/// Symmetric Gram matrix over a packed row set, parallel over row tiles.
///
/// Returns the dense `n × n` matrix with `out[i·n + j] = dot(x_i, x_j)`
/// for `i ≠ j` and `0.0` on the diagonal (the pipeline never consumes
/// self-similarities). Each off-diagonal pair is computed **once** (the
/// upper triangle) and mirrored, so `out[i·n+j]` and `out[j·n+i]` are
/// the same bits.
pub fn gram_packed(packed: &[f32], n: usize, dim: usize) -> Vec<f32> {
    // Hard assert — see [`gemm`] on why this cannot be debug-only.
    assert_eq!(packed.len(), n * dim);
    let n_tiles = n.div_ceil(TILE).max(1);
    // One dispatch decision for the whole Gram; the captured value also
    // pins any `with_simd_tier` override across the worker threads.
    let tier = simd_tier();
    // Each task computes the upper-triangle strip of one row tile.
    let strips: Vec<Vec<f32>> = (0..n_tiles)
        .into_par_iter()
        .map(|t| {
            let i0 = t * TILE;
            let i1 = (i0 + TILE).min(n);
            let rows = i1 - i0;
            let mut strip = vec![0.0f32; rows * n];
            for j0 in (i0..n).step_by(TILE) {
                let j1 = (j0 + TILE).min(n);
                for i in i0..i1 {
                    let xi = &packed[i * dim..(i + 1) * dim];
                    let js = j0.max(i + 1);
                    let row_out = &mut strip[(i - i0) * n + js..(i - i0) * n + j1];
                    dot_row_with_tier(tier, xi, packed, dim, js, j1, row_out);
                }
            }
            strip
        })
        .collect();
    let mut out = vec![0.0f32; n * n];
    for (t, strip) in strips.into_iter().enumerate() {
        let i0 = t * TILE;
        let rows = strip.len() / n.max(1);
        out[i0 * n..i0 * n + rows * n].copy_from_slice(&strip);
    }
    // Mirror the upper triangle; copying preserves bits exactly.
    for i in 0..n {
        for j in i + 1..n {
            out[j * n + i] = out[i * n + j];
        }
    }
    out
}

/// Scalar reference for the batched top-`k`: dot-product top-`k` of
/// `query_row` among `among`, skipping the query itself.
///
/// Same selection semantics as [`crate::knn::top_k_among`] (descending
/// similarity, ties toward the smaller index) but with the raw dot
/// product the graph builder uses on pre-normalized rows, instead of
/// re-deriving cosine.
pub fn top_k_among_dot(
    data: &Embeddings,
    query_row: usize,
    among: &[usize],
    k: usize,
) -> Vec<Neighbor> {
    let q = data.row(query_row);
    let mut buf = TopBuffer::new(k);
    for &i in among {
        if i == query_row {
            continue;
        }
        buf.offer(Neighbor {
            index: i,
            similarity: dot(q, data.row(i)),
        });
    }
    buf.into_sorted()
}

/// Batched top-`k` by dot product: for every query row, its `k` most
/// similar rows among `among` (global indices), excluding itself.
///
/// One blocked pass packs the candidate rows and streams them against
/// each query; queries are processed in parallel. Results are exactly
/// [`top_k_among_dot`] per query — the top-`k` under the total order
/// (similarity desc, index asc) does not depend on candidate visit
/// order.
pub fn top_k_batch(
    data: &Embeddings,
    queries: &[usize],
    among: &[usize],
    k: usize,
) -> Vec<Vec<Neighbor>> {
    let dim = data.dim();
    let packed = pack_rows(data, among);
    let tier = simd_tier();
    queries
        .par_iter()
        .map(|&q| {
            let qrow = data.row(q);
            let mut buf = TopBuffer::new(k);
            let mut sims = [0.0f32; TILE];
            for c0 in (0..among.len()).step_by(TILE) {
                let c1 = (c0 + TILE).min(among.len());
                for (s, c) in (c0..c1).enumerate() {
                    sims[s] = dot_with_tier(tier, qrow, &packed[c * dim..(c + 1) * dim]);
                }
                for (s, c) in (c0..c1).enumerate() {
                    let idx = among[c];
                    if idx == q {
                        continue;
                    }
                    buf.offer(Neighbor {
                        index: idx,
                        similarity: sims[s],
                    });
                }
            }
            buf.into_sorted()
        })
        .collect()
}

/// Vectorizable squared Euclidean distance (16 accumulator lanes).
///
/// The seed's [`crate::embeddings::sq_euclidean`] carries one
/// loop-borne accumulator — a ~4-cycle dependency per element that also
/// blocks autovectorization. This kernel uses the same lane structure
/// as [`dot`] (measured ~3.5× on 128-d rows). **Not** bit-compatible
/// with `sq_euclidean` (different summation association); the
/// clustering paths use one or the other consistently, never a mix.
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 16];
    let ca = a.chunks_exact(16);
    let cb = b.chunks_exact(16);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        for l in 0..16 {
            let d = xa[l] - xb[l];
            acc[l] += d * d;
        }
    }
    let mut sum = 0.0;
    for lane in acc {
        sum += lane;
    }
    for (x, y) in ra.iter().zip(rb) {
        let d = x - y;
        sum += d * d;
    }
    sum
}

/// Squared distances from every row of `points` (packed, `n × dim`) to
/// every row of `centers` (packed, `k × dim`), parallel over points.
///
/// `out[i·k + c] = sq_dist(point_i, center_c)`. The K-Means assignment
/// and regret passes both read this one matrix instead of re-deriving
/// distances point-by-point.
pub fn sq_dist_batch(points: &[f32], n: usize, centers: &[f32], k: usize, dim: usize) -> Vec<f32> {
    debug_assert_eq!(points.len(), n * dim);
    debug_assert_eq!(centers.len(), k * dim);
    (0..n)
        .into_par_iter()
        .map(|i| {
            let p = &points[i * dim..(i + 1) * dim];
            let mut row = Vec::with_capacity(k);
            for c in 0..k {
                row.push(sq_dist(p, &centers[c * dim..(c + 1) * dim]));
            }
            row
        })
        .collect::<Vec<Vec<f32>>>()
        .concat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::Rng;

    fn gaussian(n: usize, dim: usize, seed: u64) -> Embeddings {
        let mut rng = Rng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.normal() as f32).collect())
            .collect();
        let mut e = Embeddings::from_rows(&rows).unwrap();
        e.normalize_rows();
        e
    }

    #[test]
    fn gram_packed_matches_scalar_dot_bitwise() {
        // n deliberately not a multiple of TILE to cover ragged tiles.
        let data = gaussian(150, 37, 1);
        let members: Vec<usize> = (0..150).collect();
        let packed = pack_rows(&data, &members);
        let gram = gram_packed(&packed, 150, 37);
        for i in 0..150 {
            for j in 0..150 {
                let expected = if i == j {
                    0.0
                } else {
                    dot(data.row(i), data.row(j))
                };
                assert_eq!(
                    gram[i * 150 + j].to_bits(),
                    expected.to_bits(),
                    "gram[{i},{j}]"
                );
            }
        }
    }

    #[test]
    fn gram_packed_on_subset_rows() {
        let data = gaussian(80, 16, 2);
        let members: Vec<usize> = (0..80).step_by(3).collect();
        let m = members.len();
        let packed = pack_rows(&data, &members);
        let gram = gram_packed(&packed, m, 16);
        for a in 0..m {
            for b in 0..m {
                let expected = if a == b {
                    0.0
                } else {
                    dot(data.row(members[a]), data.row(members[b]))
                };
                assert_eq!(gram[a * m + b].to_bits(), expected.to_bits());
            }
        }
    }

    #[test]
    fn gram_block_rectangular_matches_scalar() {
        let data = gaussian(100, 24, 3);
        let rows: Vec<usize> = (0..70).collect();
        let cols: Vec<usize> = (70..100).collect();
        let a = pack_rows(&data, &rows);
        let b = pack_rows(&data, &cols);
        let mut out = vec![0.0f32; rows.len() * cols.len()];
        gram_block(&a, rows.len(), &b, cols.len(), 24, &mut out);
        for (i, &r) in rows.iter().enumerate() {
            for (j, &c) in cols.iter().enumerate() {
                assert_eq!(
                    out[i * cols.len() + j].to_bits(),
                    dot(data.row(r), data.row(c)).to_bits()
                );
            }
        }
    }

    #[test]
    fn top_k_batch_matches_scalar_reference_exactly() {
        let data = gaussian(130, 19, 4);
        let among: Vec<usize> = (0..130).collect();
        let queries: Vec<usize> = (0..130).step_by(7).collect();
        let batch = top_k_batch(&data, &queries, &among, 9);
        for (qi, &q) in queries.iter().enumerate() {
            let reference = top_k_among_dot(&data, q, &among, 9);
            assert_eq!(batch[qi].len(), reference.len(), "query {q}");
            for (a, b) in batch[qi].iter().zip(&reference) {
                assert_eq!(a.index, b.index, "query {q}");
                assert_eq!(a.similarity.to_bits(), b.similarity.to_bits(), "query {q}");
            }
        }
    }

    #[test]
    fn top_k_batch_parallel_equals_serial() {
        let data = gaussian(200, 12, 5);
        let among: Vec<usize> = (0..200).collect();
        let queries: Vec<usize> = (0..200).collect();
        let par = top_k_batch(&data, &queries, &among, 5);
        let ser = rayon::serial_scope(|| top_k_batch(&data, &queries, &among, 5));
        assert_eq!(par.len(), ser.len());
        for (a, b) in par.iter().zip(&ser) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn top_k_batch_handles_small_and_duplicate_cases() {
        let data = gaussian(6, 8, 6);
        // k larger than candidate count, query inside candidates.
        let hits = top_k_batch(&data, &[0], &[0, 1, 2], 10);
        assert_eq!(hits[0].len(), 2);
        // Zero k.
        assert!(top_k_batch(&data, &[1], &[0, 2], 0)[0].is_empty());
        // Empty candidates.
        assert!(top_k_batch(&data, &[1], &[], 3)[0].is_empty());
    }

    #[test]
    fn sq_dist_agrees_with_reference_within_fp_tolerance() {
        let data = gaussian(40, 33, 7);
        for i in 0..40 {
            for j in 0..40 {
                let fast = sq_dist(data.row(i), data.row(j));
                let slow = crate::embeddings::sq_euclidean(data.row(i), data.row(j));
                assert!(
                    (fast - slow).abs() <= 1e-5 * (1.0 + slow),
                    "({i},{j}): {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn dispatch_tiers_are_bit_identical() {
        // On AVX2 hardware this compares the intrinsics path against the
        // portable lanes; elsewhere `with_simd_tier` clamps to Portable
        // and the test degenerates to self-comparison (still valid).
        let mut rng = Rng::seed_from_u64(42);
        for len in [0usize, 1, 7, 15, 16, 17, 33, 64, 128, 131] {
            let a: Vec<f32> = (0..len).map(|_| rng.normal() as f32).collect();
            let b: Vec<f32> = (0..len).map(|_| rng.normal() as f32).collect();
            let portable = with_simd_tier(SimdTier::Portable, || dot(&a, &b));
            let avx2 = with_simd_tier(SimdTier::Avx2, || dot(&a, &b));
            assert_eq!(portable.to_bits(), avx2.to_bits(), "len {len}");
            assert_eq!(
                portable.to_bits(),
                crate::embeddings::dot(&a, &b).to_bits(),
                "len {len}"
            );
        }
    }

    #[test]
    fn gemm_matches_per_entry_dot_on_every_tier() {
        let data = gaussian(90, 45, 11);
        let a_rows: Vec<usize> = (0..53).collect();
        let b_rows: Vec<usize> = (53..90).collect();
        let a = pack_rows(&data, &a_rows);
        let b = pack_rows(&data, &b_rows);
        for tier in [SimdTier::Portable, SimdTier::Avx2] {
            let mut out = vec![0.0f32; a_rows.len() * b_rows.len()];
            with_simd_tier(tier, || {
                gemm(&a, a_rows.len(), &b, b_rows.len(), 45, &mut out)
            });
            for (i, &r) in a_rows.iter().enumerate() {
                for (j, &c) in b_rows.iter().enumerate() {
                    assert_eq!(
                        out[i * b_rows.len() + j].to_bits(),
                        crate::embeddings::dot(data.row(r), data.row(c)).to_bits(),
                        "tier {} entry ({i},{j})",
                        tier.name()
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_bias_relu_fuses_exactly() {
        let data = gaussian(70, 30, 12);
        let a_rows: Vec<usize> = (0..40).collect();
        let w_rows: Vec<usize> = (40..70).collect();
        let a = pack_rows(&data, &a_rows);
        let w = pack_rows(&data, &w_rows);
        let bias: Vec<f32> = (0..w_rows.len()).map(|j| (j as f32 - 15.0) * 0.1).collect();
        for relu in [false, true] {
            let mut out = vec![0.0f32; a_rows.len() * w_rows.len()];
            gemm_bias_relu(
                &a,
                a_rows.len(),
                &w,
                w_rows.len(),
                30,
                &bias,
                relu,
                &mut out,
            );
            for (i, &r) in a_rows.iter().enumerate() {
                for (j, &c) in w_rows.iter().enumerate() {
                    let mut expected = dot(data.row(r), data.row(c)) + bias[j];
                    if relu {
                        expected = expected.max(0.0);
                    }
                    assert_eq!(
                        out[i * w_rows.len() + j].to_bits(),
                        expected.to_bits(),
                        "relu {relu} entry ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn tier_override_clamps_and_restores() {
        let outer = simd_tier();
        with_simd_tier(SimdTier::Portable, || {
            assert_eq!(simd_tier(), SimdTier::Portable);
            // Nested override: Avx2 request never exceeds the detection.
            with_simd_tier(SimdTier::Avx2, || {
                assert!(simd_tier() <= detect_tier());
            });
            assert_eq!(simd_tier(), SimdTier::Portable);
        });
        assert_eq!(simd_tier(), outer);
        // The override is restored even when the closure panics (test
        // harnesses catch unwinds and reuse the thread).
        let caught = std::panic::catch_unwind(|| {
            with_simd_tier(SimdTier::Portable, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(simd_tier(), outer);
    }

    #[test]
    fn sq_dist_batch_matches_pointwise_kernel() {
        let data = gaussian(50, 21, 8);
        let pts: Vec<usize> = (0..30).collect();
        let ctr: Vec<usize> = (30..37).collect();
        let p = pack_rows(&data, &pts);
        let c = pack_rows(&data, &ctr);
        let out = sq_dist_batch(&p, 30, &c, 7, 21);
        for i in 0..30 {
            for k in 0..7 {
                let expected = sq_dist(data.row(pts[i]), data.row(ctr[k]));
                assert_eq!(out[i * 7 + k].to_bits(), expected.to_bits());
            }
        }
    }
}
