//! Blocked similarity kernels — the compute layer behind the spatial
//! pipeline *and* the matcher's batched GEMM engine.
//!
//! The cluster → graph → centrality pipeline (§3.3) spends its time in
//! two primitives: pairwise dot products of unit-norm pair
//! representations (edge scoring; the paper runs this step on FAISS's
//! batched kernels, §4.2) and point-to-centroid squared distances
//! (K-Means). The matcher half of each iteration (§3.1/§4.2) spends its
//! time in dense layer products, which reduce to the same primitive.
//! This module provides the batched versions every hot path now uses:
//!
//! * [`gemm`] / [`gemm_bias_relu`] — cache-blocked row-major `A·Bᵀ`
//!   matrix products (the MLP forward/backward building block; the
//!   fused variant adds a per-column bias and an optional ReLU);
//! * [`gram_packed`] / [`gram_block`] — cache-blocked Gram matrices
//!   (`X·Yᵀ`) over row subsets, computed once and reused by every
//!   downstream stage;
//! * [`top_k_batch`] — batched top-`k` by dot product with the exact
//!   ordering semantics of the scalar [`crate::knn`] search;
//! * [`sq_dist`] / [`sq_dist_batch`] — an ILP-friendly unrolled squared
//!   Euclidean distance (the seed's scalar loop carried a
//!   single-accumulator dependency chain that cost ~3× on wide rows);
//! * [`pack_rows`] — gathers a row subset into a contiguous buffer so
//!   the kernels stream without indirection.
//!
//! # Dispatch tiers
//!
//! Every inner product goes through one runtime-dispatched [`dot`]
//! kernel with three tiers, decided **once** at startup (cached in a
//! `OnceLock`) via `std::is_x86_feature_detected!`:
//!
//! * [`SimdTier::Portable`] — the 16-lane autovectorizing form shared
//!   with [`crate::embeddings::dot`]; compiles on every target.
//! * [`SimdTier::Avx2`] — explicit AVX2 intrinsics (selected when the
//!   CPU reports `avx2` **and** `fma`): the same 16 lanes held in two
//!   256-bit accumulators, multiply-then-add per lane.
//! * [`SimdTier::Avx512`] — explicit AVX-512 intrinsics (selected when
//!   the CPU reports `avx512f`): 64 lanes per unrolled step in four
//!   512-bit accumulator chains updated with **single-rounding FMA**
//!   (`vfmadd`).
//!
//! `EM_SIMD_TIER=portable|avx2|avx512` pins the tier (e.g. to A/B the
//! tiers on one machine) — a request the hardware cannot run is clamped
//! to the best available tier, and an unknown value is ignored (the
//! structured parse error behind both behaviours is [`SimdTier::parse`],
//! so config surfaces can reject bad values without ever crashing the
//! dispatch). [`with_simd_tier`] overrides the tier on the current
//! thread for golden tests.
//!
//! # Reduction-order contract (Portable ≡ AVX2)
//!
//! The portable and AVX2 tiers compute **bit-identical** results: 16
//! fixed accumulator lanes (lane `l` accumulates elements `16·c + l`),
//! lanes reduced in ascending order, scalar remainder folded last. The
//! AVX2 tier encodes exactly that shape — and deliberately performs
//! *separate* multiply and add (no `fmadd` contraction: FMA's single
//! rounding would diverge from the portable lanes). Blocked kernels
//! ([`gemm`], [`gram_packed`], …) evaluate each output entry as exactly
//! one [`dot`] call (plus, for the fused variant, one bias add after the
//! reduction), so blocking and parallelism only reorder *which entries*
//! are computed when, never the arithmetic within an entry. The golden
//! tests in this module and the matcher's GEMM-vs-scalar tests assert
//! exactly that.
//!
//! # Tolerance contract (AVX-512)
//!
//! The AVX-512 tier trades the bit-identity contract for FMA throughput:
//! each `a·b` product is folded into its accumulator lane with a single
//! rounding, so results differ from the portable lanes in the low bits.
//! What it keeps is *determinism* and a *proven error bound*:
//!
//! * **Deterministic**: 32 fixed accumulator lanes (lane `l` accumulates
//!   elements `32·c + l` via `vfmaddps`), the two 512-bit accumulators
//!   added lane-wise, that vector reduced by a fixed explicit tree
//!   (quarters `q01 = q0+q1`, `q23 = q2+q3`, `q = q01+q23`, then the
//!   four lanes of `q` in ascending order), scalar remainder folded last
//!   with `f32::mul_add`. Every step is spelled out in source — no
//!   compiler-chosen reassociation — so results are bit-stable across
//!   runs, threads and builds *within* the tier.
//! * **Bounded**: both the portable and the AVX-512 sums satisfy the
//!   standard forward bound `|fl(aᵀb) − aᵀb| ≤ γ(n)·Σ|aᵢbᵢ|` with
//!   `γ(n) = n·ε/(1−n·ε)`, `ε = 2⁻²⁴` (FMA only *tightens* the
//!   per-term rounding), so the tiers differ by at most `2γ(n)·Σ|aᵢbᵢ|`.
//!   `tests/simd_tolerance.rs` pins this bound against an `f64`
//!   reference, asserts argmax/top-k stability whenever the winner's
//!   margin exceeds the bound, and gates the end-to-end ΔF1 of a grid
//!   run across tiers — the conditions under which AVX-512 is allowed
//!   as a detected default.
//!
//! Within the AVX-512 tier the blocked kernels keep the same per-entry
//! shape as everywhere else: each output entry is exactly one
//! [`dot`]-recipe evaluation, so `gemm`/`gram` entries are bit-identical
//! to standalone `dot` calls *on the same tier*.

use std::cell::Cell;
use std::sync::OnceLock;

use rayon::prelude::*;

use em_core::{EmError, Result};

use crate::embeddings::{dot as portable_dot, Embeddings};
use crate::knn::{Neighbor, TopBuffer};

// --- Runtime ISA dispatch. -----------------------------------------------

/// Instruction-set tier the dispatched kernels run on.
///
/// Ordered by capability: clamping a requested tier to the hardware is
/// `tier.min(detected)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdTier {
    /// 16-lane portable form (LLVM autovectorizes it on any target).
    Portable,
    /// Explicit AVX2 intrinsics; selected when the CPU reports both
    /// `avx2` and `fma`. Bit-identical to [`SimdTier::Portable`] (see
    /// the module-level reduction-order contract).
    Avx2,
    /// Explicit AVX-512 intrinsics with single-rounding FMA; selected
    /// when the CPU reports `avx512f`. **Not** bit-identical to the
    /// lower tiers — see the module-level tolerance contract.
    Avx512,
}

impl SimdTier {
    /// Stable display name (`"portable"` / `"avx2"` / `"avx512"`).
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Portable => "portable",
            SimdTier::Avx2 => "avx2",
            SimdTier::Avx512 => "avx512",
        }
    }

    /// Parse a tier name (the `EM_SIMD_TIER` vocabulary), case
    /// insensitively. An unknown name is a structured
    /// [`EmError::InvalidConfig`] — dispatch itself never fails on it
    /// (it falls back to the detected best), but config surfaces use
    /// this to reject bad values instead of silently ignoring them.
    pub fn parse(value: &str) -> Result<SimdTier> {
        let v = value.trim();
        for tier in [SimdTier::Portable, SimdTier::Avx2, SimdTier::Avx512] {
            if v.eq_ignore_ascii_case(tier.name()) {
                return Ok(tier);
            }
        }
        Err(EmError::InvalidConfig(format!(
            "unknown SIMD tier `{value}` (expected portable, avx2 or avx512)"
        )))
    }
}

/// The best tier the hardware supports (no env override applied).
fn detect_best() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::is_x86_feature_detected!("avx512f") {
            return SimdTier::Avx512;
        }
        if std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma") {
            return SimdTier::Avx2;
        }
    }
    SimdTier::Portable
}

/// Detect the dispatch tier: the best available one, clamped down by a
/// parseable `EM_SIMD_TIER` request. A request the hardware cannot run
/// clamps to the best available tier; an unparseable value is ignored —
/// detection never fails (callers that want the structured parse error
/// go through [`SimdTier::parse`] directly).
fn detect_tier() -> SimdTier {
    let best = detect_best();
    match std::env::var("EM_SIMD_TIER") {
        Ok(v) => match SimdTier::parse(&v) {
            Ok(requested) => requested.min(best),
            Err(_) => best,
        },
        Err(_) => best,
    }
}

thread_local! {
    /// Per-thread tier override for golden tests ([`with_simd_tier`]).
    static TIER_OVERRIDE: Cell<Option<SimdTier>> = const { Cell::new(None) };
}

/// The dispatched tier: the startup detection, unless overridden on this
/// thread by [`with_simd_tier`]. The detection runs once per process.
pub fn simd_tier() -> SimdTier {
    if let Some(t) = TIER_OVERRIDE.with(Cell::get) {
        return t;
    }
    static TIER: OnceLock<SimdTier> = OnceLock::new();
    *TIER.get_or_init(detect_tier)
}

/// Run `f` with the dispatched tier pinned on the **current thread**
/// (golden tests compare the tiers this way; combine with
/// `rayon::serial_scope` so no work escapes to other threads). A
/// requested tier the hardware cannot run is clamped to the best
/// available one, so this is always safe to call. The previous override
/// is restored even if `f` panics (test harnesses catch unwinds and
/// reuse the thread).
pub fn with_simd_tier<R>(tier: SimdTier, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<SimdTier>);
    impl Drop for Restore {
        fn drop(&mut self) {
            TIER_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let clamped = tier.min(detect_tier());
    let _restore = Restore(TIER_OVERRIDE.with(|c| c.replace(Some(clamped))));
    f()
}

/// AVX2 dot product mirroring the portable 16-lane kernel exactly:
/// lanes 0–7 live in `acc0`, lanes 8–15 in `acc1`, each updated with a
/// separate multiply and add (no `fmadd`), then reduced in lane order
/// with the scalar remainder folded last — bit-identical to
/// [`crate::embeddings::dot`] by construction.
///
/// # Safety
/// Requires the `avx2` CPU feature (guaranteed by dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = a.len();
    let chunks = n / 16;
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    for c in 0..chunks {
        let base = c * 16;
        let a0 = _mm256_loadu_ps(pa.add(base));
        let b0 = _mm256_loadu_ps(pb.add(base));
        let a1 = _mm256_loadu_ps(pa.add(base + 8));
        let b1 = _mm256_loadu_ps(pb.add(base + 8));
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(a0, b0));
        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(a1, b1));
    }
    let mut lanes = [0.0f32; 16];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc0);
    _mm256_storeu_ps(lanes.as_mut_ptr().add(8), acc1);
    let mut sum = 0.0f32;
    for lane in lanes {
        sum += lane;
    }
    for i in chunks * 16..n {
        sum += a[i] * b[i];
    }
    sum
}

/// Four dot products of one left row against four consecutive packed
/// right rows — the GEMM micro-kernel. Each output is computed with
/// **exactly** the [`dot_avx2`] recipe (its own accumulator pair,
/// multiply-then-add, lane-order reduction, sequential remainder), so
/// every result is bit-identical to a standalone `dot` call; grouping
/// only shares the loads of `a` and amortizes call overhead.
///
/// # Safety
/// Requires the `avx2` CPU feature (guaranteed by dispatch); `b` must
/// hold four consecutive rows of `a.len()` starting at `b_off`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// The remainder loop indexes `a` in lockstep with raw row pointers; the
// indexed form keeps that correspondence visible.
#[allow(clippy::needless_range_loop)]
unsafe fn dot4_avx2(a: &[f32], b: &[f32], b_off: usize, out: &mut [f32]) {
    use std::arch::x86_64::*;
    let k = a.len();
    let chunks = k / 16;
    let pa = a.as_ptr();
    let pb0 = b.as_ptr().add(b_off);
    let pb1 = pb0.add(k);
    let pb2 = pb1.add(k);
    let pb3 = pb2.add(k);
    let mut acc = [_mm256_setzero_ps(); 8];
    for c in 0..chunks {
        let base = c * 16;
        let a0 = _mm256_loadu_ps(pa.add(base));
        let a1 = _mm256_loadu_ps(pa.add(base + 8));
        acc[0] = _mm256_add_ps(acc[0], _mm256_mul_ps(a0, _mm256_loadu_ps(pb0.add(base))));
        acc[1] = _mm256_add_ps(
            acc[1],
            _mm256_mul_ps(a1, _mm256_loadu_ps(pb0.add(base + 8))),
        );
        acc[2] = _mm256_add_ps(acc[2], _mm256_mul_ps(a0, _mm256_loadu_ps(pb1.add(base))));
        acc[3] = _mm256_add_ps(
            acc[3],
            _mm256_mul_ps(a1, _mm256_loadu_ps(pb1.add(base + 8))),
        );
        acc[4] = _mm256_add_ps(acc[4], _mm256_mul_ps(a0, _mm256_loadu_ps(pb2.add(base))));
        acc[5] = _mm256_add_ps(
            acc[5],
            _mm256_mul_ps(a1, _mm256_loadu_ps(pb2.add(base + 8))),
        );
        acc[6] = _mm256_add_ps(acc[6], _mm256_mul_ps(a0, _mm256_loadu_ps(pb3.add(base))));
        acc[7] = _mm256_add_ps(
            acc[7],
            _mm256_mul_ps(a1, _mm256_loadu_ps(pb3.add(base + 8))),
        );
    }
    let rows = [pb0, pb1, pb2, pb3];
    for (j, row) in rows.iter().enumerate() {
        let mut lanes = [0.0f32; 16];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc[2 * j]);
        _mm256_storeu_ps(lanes.as_mut_ptr().add(8), acc[2 * j + 1]);
        let mut sum = 0.0f32;
        for lane in lanes {
            sum += lane;
        }
        for i in chunks * 16..k {
            sum += a[i] * *row.add(i);
        }
        out[j] = sum;
    }
}

/// Fixed-tree reduction of one 512-bit accumulator — the AVX-512 tiers'
/// one reduction shape (see the module-level tolerance contract):
/// quarters `q01 = q0 + q1`, `q23 = q2 + q3`, `q = q01 + q23` as 128-bit
/// vector adds, then the four lanes of `q` in ascending order. Spelled
/// out so the association is fixed in source, not chosen by the
/// compiler (`_mm512_reduce_add_ps` lowers to an unordered LLVM
/// reduction).
///
/// # Safety
/// Requires the `avx512f` CPU feature (guaranteed by dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn reduce_add_avx512(v: std::arch::x86_64::__m512) -> f32 {
    use std::arch::x86_64::*;
    let q0 = _mm512_extractf32x4_ps::<0>(v);
    let q1 = _mm512_extractf32x4_ps::<1>(v);
    let q2 = _mm512_extractf32x4_ps::<2>(v);
    let q3 = _mm512_extractf32x4_ps::<3>(v);
    let q = _mm_add_ps(_mm_add_ps(q0, q1), _mm_add_ps(q2, q3));
    let mut lanes = [0.0f32; 4];
    _mm_storeu_ps(lanes.as_mut_ptr(), q);
    ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3]
}

/// AVX-512 dot product: 64 fixed lanes per unrolled step in **four**
/// 512-bit accumulators (four independent FMA chains — two are not
/// enough to hide the ~4-cycle FMA latency, which left the two-chain
/// version no faster than the latency-friendlier mul+add AVX2 tier),
/// an odd trailing 32-lane step folded into the first two chains, each
/// product folded in with a **single-rounding FMA**, then the fixed
/// pairwise combine `(acc0+acc1) + (acc2+acc3)` into the
/// [`reduce_add_avx512`] tree with the scalar remainder folded last
/// (also via `mul_add`). Deterministic, but *not* bit-identical to the
/// lower tiers — covered by the tolerance contract, not the bit
/// contract.
///
/// # Safety
/// Requires the `avx512f` CPU feature (guaranteed by dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn dot_avx512(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = a.len();
    let chunks = n / 32;
    let pairs = chunks / 2;
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut acc0 = _mm512_setzero_ps();
    let mut acc1 = _mm512_setzero_ps();
    let mut acc2 = _mm512_setzero_ps();
    let mut acc3 = _mm512_setzero_ps();
    for p in 0..pairs {
        let base = p * 64;
        acc0 = _mm512_fmadd_ps(
            _mm512_loadu_ps(pa.add(base)),
            _mm512_loadu_ps(pb.add(base)),
            acc0,
        );
        acc1 = _mm512_fmadd_ps(
            _mm512_loadu_ps(pa.add(base + 16)),
            _mm512_loadu_ps(pb.add(base + 16)),
            acc1,
        );
        acc2 = _mm512_fmadd_ps(
            _mm512_loadu_ps(pa.add(base + 32)),
            _mm512_loadu_ps(pb.add(base + 32)),
            acc2,
        );
        acc3 = _mm512_fmadd_ps(
            _mm512_loadu_ps(pa.add(base + 48)),
            _mm512_loadu_ps(pb.add(base + 48)),
            acc3,
        );
    }
    if chunks % 2 == 1 {
        let base = pairs * 64;
        acc0 = _mm512_fmadd_ps(
            _mm512_loadu_ps(pa.add(base)),
            _mm512_loadu_ps(pb.add(base)),
            acc0,
        );
        acc1 = _mm512_fmadd_ps(
            _mm512_loadu_ps(pa.add(base + 16)),
            _mm512_loadu_ps(pb.add(base + 16)),
            acc1,
        );
    }
    let combined = _mm512_add_ps(_mm512_add_ps(acc0, acc1), _mm512_add_ps(acc2, acc3));
    let mut sum = reduce_add_avx512(combined);
    for i in chunks * 32..n {
        sum = a[i].mul_add(b[i], sum);
    }
    sum
}

/// Four dot products of one left row against four consecutive packed
/// right rows — the AVX-512 GEMM micro-kernel. Each output is computed
/// with **exactly** the [`dot_avx512`] recipe (its own four-accumulator
/// group over 64-lane unrolled steps, the odd 32-lane step into the
/// group's first two chains, FMA per lane, the fixed pairwise combine
/// and reduction tree, sequential `mul_add` remainder), so every result
/// is bit-identical to a standalone `dot` call *on this tier*; grouping
/// only shares the loads of `a`.
///
/// # Safety
/// Requires the `avx512f` CPU feature (guaranteed by dispatch); `b` must
/// hold four consecutive rows of `a.len()` starting at `b_off`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
// The remainder loop indexes `a` in lockstep with raw row pointers; the
// indexed form keeps that correspondence visible.
#[allow(clippy::needless_range_loop)]
unsafe fn dot4_avx512(a: &[f32], b: &[f32], b_off: usize, out: &mut [f32]) {
    use std::arch::x86_64::*;
    let k = a.len();
    let chunks = k / 32;
    let pairs = chunks / 2;
    let pa = a.as_ptr();
    let pb0 = b.as_ptr().add(b_off);
    let pb1 = pb0.add(k);
    let pb2 = pb1.add(k);
    let pb3 = pb2.add(k);
    let rows = [pb0, pb1, pb2, pb3];
    // acc[4j..4j + 4] is row j's accumulator group, in dot_avx512's
    // chain order.
    let mut acc = [_mm512_setzero_ps(); 16];
    for p in 0..pairs {
        let base = p * 64;
        let a0 = _mm512_loadu_ps(pa.add(base));
        let a1 = _mm512_loadu_ps(pa.add(base + 16));
        let a2 = _mm512_loadu_ps(pa.add(base + 32));
        let a3 = _mm512_loadu_ps(pa.add(base + 48));
        for (j, row) in rows.iter().enumerate() {
            acc[4 * j] = _mm512_fmadd_ps(a0, _mm512_loadu_ps(row.add(base)), acc[4 * j]);
            acc[4 * j + 1] =
                _mm512_fmadd_ps(a1, _mm512_loadu_ps(row.add(base + 16)), acc[4 * j + 1]);
            acc[4 * j + 2] =
                _mm512_fmadd_ps(a2, _mm512_loadu_ps(row.add(base + 32)), acc[4 * j + 2]);
            acc[4 * j + 3] =
                _mm512_fmadd_ps(a3, _mm512_loadu_ps(row.add(base + 48)), acc[4 * j + 3]);
        }
    }
    if chunks % 2 == 1 {
        let base = pairs * 64;
        let a0 = _mm512_loadu_ps(pa.add(base));
        let a1 = _mm512_loadu_ps(pa.add(base + 16));
        for (j, row) in rows.iter().enumerate() {
            acc[4 * j] = _mm512_fmadd_ps(a0, _mm512_loadu_ps(row.add(base)), acc[4 * j]);
            acc[4 * j + 1] =
                _mm512_fmadd_ps(a1, _mm512_loadu_ps(row.add(base + 16)), acc[4 * j + 1]);
        }
    }
    for (j, row) in rows.iter().enumerate() {
        let combined = _mm512_add_ps(
            _mm512_add_ps(acc[4 * j], acc[4 * j + 1]),
            _mm512_add_ps(acc[4 * j + 2], acc[4 * j + 3]),
        );
        let mut sum = reduce_add_avx512(combined);
        for i in chunks * 32..k {
            sum = a[i].mul_add(*row.add(i), sum);
        }
        out[j] = sum;
    }
}

/// AVX-512 squared Euclidean distance: the [`dot_avx512`] shape (four
/// FMA chains over 64-lane unrolled steps, odd 32-lane step into the
/// first two chains, fixed pairwise combine + reduction tree) with
/// `d = aᵢ − bᵢ` and `d·d` folded in by FMA. Same tolerance contract as
/// the dot kernel; **not** bit-identical to [`sq_dist`]'s portable
/// lanes.
///
/// # Safety
/// Requires the `avx512f` CPU feature (guaranteed by dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn sq_dist_avx512(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = a.len();
    let chunks = n / 32;
    let pairs = chunks / 2;
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut acc0 = _mm512_setzero_ps();
    let mut acc1 = _mm512_setzero_ps();
    let mut acc2 = _mm512_setzero_ps();
    let mut acc3 = _mm512_setzero_ps();
    for p in 0..pairs {
        let base = p * 64;
        let d0 = _mm512_sub_ps(_mm512_loadu_ps(pa.add(base)), _mm512_loadu_ps(pb.add(base)));
        let d1 = _mm512_sub_ps(
            _mm512_loadu_ps(pa.add(base + 16)),
            _mm512_loadu_ps(pb.add(base + 16)),
        );
        let d2 = _mm512_sub_ps(
            _mm512_loadu_ps(pa.add(base + 32)),
            _mm512_loadu_ps(pb.add(base + 32)),
        );
        let d3 = _mm512_sub_ps(
            _mm512_loadu_ps(pa.add(base + 48)),
            _mm512_loadu_ps(pb.add(base + 48)),
        );
        acc0 = _mm512_fmadd_ps(d0, d0, acc0);
        acc1 = _mm512_fmadd_ps(d1, d1, acc1);
        acc2 = _mm512_fmadd_ps(d2, d2, acc2);
        acc3 = _mm512_fmadd_ps(d3, d3, acc3);
    }
    if chunks % 2 == 1 {
        let base = pairs * 64;
        let d0 = _mm512_sub_ps(_mm512_loadu_ps(pa.add(base)), _mm512_loadu_ps(pb.add(base)));
        let d1 = _mm512_sub_ps(
            _mm512_loadu_ps(pa.add(base + 16)),
            _mm512_loadu_ps(pb.add(base + 16)),
        );
        acc0 = _mm512_fmadd_ps(d0, d0, acc0);
        acc1 = _mm512_fmadd_ps(d1, d1, acc1);
    }
    let combined = _mm512_add_ps(_mm512_add_ps(acc0, acc1), _mm512_add_ps(acc2, acc3));
    let mut sum = reduce_add_avx512(combined);
    for i in chunks * 32..n {
        let d = a[i] - b[i];
        sum = d.mul_add(d, sum);
    }
    sum
}

/// Fill `out[j - j0]` with `dot(a, b_j)` for `j` in `j0..j1` over packed
/// rows of width `k` — the inner loop of every GEMM tile. On the AVX2
/// and AVX-512 tiers, groups of four consecutive rows go through the
/// [`dot4_avx2`] / [`dot4_avx512`] micro-kernels (bit-identical to
/// per-entry dots on the same tier; the grouping only amortizes loads
/// and calls), with per-entry dots on the remainder and on the portable
/// tier.
#[inline]
fn dot_row_with_tier(
    tier: SimdTier,
    a: &[f32],
    b: &[f32],
    k: usize,
    j0: usize,
    j1: usize,
    out: &mut [f32],
) {
    debug_assert!(j1 * k <= b.len());
    debug_assert!(j1 - j0 <= out.len());
    let mut j = j0;
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx2 {
        while j + 4 <= j1 {
            // SAFETY: Avx2 tier implies the feature is present; rows
            // j..j+4 lie inside `b` by the debug-asserted bound.
            unsafe { dot4_avx2(a, b, j * k, &mut out[j - j0..j - j0 + 4]) };
            j += 4;
        }
    }
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx512 {
        while j + 4 <= j1 {
            // SAFETY: the Avx512 tier is only ever produced by
            // `detect_best` (or clamped to it), which checks `avx512f`
            // at runtime; rows j..j+4 lie inside `b` by the
            // debug-asserted bound.
            unsafe { dot4_avx512(a, b, j * k, &mut out[j - j0..j - j0 + 4]) };
            j += 4;
        }
    }
    for jj in j..j1 {
        out[jj - j0] = dot_with_tier(tier, a, &b[jj * k..(jj + 1) * k]);
    }
}

/// Dot product on an explicit tier (dispatch hoisted by the blocked
/// kernels so the decision is made once per kernel call, not per entry).
#[inline]
pub fn dot_with_tier(tier: SimdTier, a: &[f32], b: &[f32]) -> f32 {
    // Hard assert: the AVX2 path reads `a.len()` elements of `b` through
    // raw pointers, so a length mismatch must panic here rather than
    // read out of bounds in release builds.
    assert_eq!(a.len(), b.len());
    match tier {
        SimdTier::Portable => portable_dot(a, b),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the Avx2 tier is only ever produced by `detect_best`
        // (or clamped to it), which checks `avx2` at runtime.
        SimdTier::Avx2 => unsafe { dot_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the Avx512 tier is only ever produced by `detect_best`
        // (or clamped to it), which checks `avx512f` at runtime.
        SimdTier::Avx512 => unsafe { dot_avx512(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        SimdTier::Avx2 | SimdTier::Avx512 => portable_dot(a, b),
    }
}

/// Runtime-dispatched dot product — the one inner-product kernel every
/// blocked path evaluates (bit-identical between the Portable and Avx2
/// tiers; tolerance-bounded on Avx512 — see the module docs).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    dot_with_tier(simd_tier(), a, b)
}

/// Tile edge (rows × columns per block) for the blocked kernels. 64 rows
/// of a 128-d `f32` matrix are 32 KiB — two operand tiles stay resident
/// in L1/L2 while a tile of `TILE²` outputs is produced.
pub const TILE: usize = 64;

/// Gather `rows` of `data` into a contiguous row-major buffer.
///
/// The spatial pipeline operates on cluster subsets of a shared
/// embedding matrix; packing removes the per-access index indirection
/// and makes the kernels stream sequentially.
pub fn pack_rows(data: &Embeddings, rows: &[usize]) -> Vec<f32> {
    let dim = data.dim();
    let mut out = Vec::with_capacity(rows.len() * dim);
    for &r in rows {
        out.extend_from_slice(data.row(r));
    }
    out
}

/// Blocked Gram matrix between two packed row sets: `out[i·nb + j] =
/// dot(a_i, b_j)`.
///
/// `a` has `na` rows and `b` has `nb` rows, both of width `dim`. A Gram
/// matrix over row subsets *is* the [`gemm`] product `A·Bᵀ`, so this
/// simply delegates — same tiling, same micro-kernel, each entry one
/// [`dot`] call (bit-identical to the scalar path).
pub fn gram_block(a: &[f32], na: usize, b: &[f32], nb: usize, dim: usize, out: &mut [f32]) {
    gemm(a, na, b, nb, dim, out);
}

/// Cache-blocked row-major GEMM against a transposed right operand:
/// `out[i·n + j] = dot(a_i, b_j)` — i.e. `C = A·Bᵀ` with `A` of shape
/// `m × k` and `B` of shape `n × k`, both row-major.
///
/// This is the matcher's layer product: with `A` a batch of activations
/// and `B` a weight matrix stored as `n` output rows of `k` inputs,
/// `C` is the batch of pre-activations. Same tiling as [`gram_block`];
/// each entry is exactly one [`dot`] call on the tier dispatched once
/// per GEMM, so the result is bit-identical to the per-row scalar path
/// on every tier.
pub fn gemm(a: &[f32], m: usize, b: &[f32], n: usize, k: usize, out: &mut [f32]) {
    // Hard asserts: the AVX2 micro-kernel reads through raw pointers, so
    // an undersized operand must panic here rather than read out of
    // bounds in release builds.
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), n * k);
    assert_eq!(out.len(), m * n);
    let tier = simd_tier();
    for i0 in (0..m).step_by(TILE) {
        let i1 = (i0 + TILE).min(m);
        for j0 in (0..n).step_by(TILE) {
            let j1 = (j0 + TILE).min(n);
            for i in i0..i1 {
                let ai = &a[i * k..(i + 1) * k];
                let row_out = &mut out[i * n + j0..i * n + j1];
                dot_row_with_tier(tier, ai, b, k, j0, j1, row_out);
            }
        }
    }
}

/// [`gemm`] fused with a per-column bias add and an optional ReLU:
/// `out[i·n + j] = act(dot(a_i, b_j) + bias[j])` where `act` is
/// `max(0, ·)` when `relu` is set and the identity otherwise.
///
/// The bias is added **after** the dot reduction completes (one `f32`
/// add), matching the scalar forward path bit-for-bit; ReLU is a
/// max and cannot change bits beyond selecting them.
#[allow(clippy::too_many_arguments)]
pub fn gemm_bias_relu(
    a: &[f32],
    m: usize,
    b: &[f32],
    n: usize,
    k: usize,
    bias: &[f32],
    relu: bool,
    out: &mut [f32],
) {
    // Hard asserts — see [`gemm`] on why these cannot be debug-only.
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), n * k);
    assert_eq!(bias.len(), n);
    assert_eq!(out.len(), m * n);
    let tier = simd_tier();
    for i0 in (0..m).step_by(TILE) {
        let i1 = (i0 + TILE).min(m);
        for j0 in (0..n).step_by(TILE) {
            let j1 = (j0 + TILE).min(n);
            for i in i0..i1 {
                let ai = &a[i * k..(i + 1) * k];
                let row_out = &mut out[i * n + j0..i * n + j1];
                dot_row_with_tier(tier, ai, b, k, j0, j1, row_out);
                for (v, &bj) in row_out.iter_mut().zip(&bias[j0..j1]) {
                    *v += bj;
                    if relu {
                        *v = v.max(0.0);
                    }
                }
            }
        }
    }
}

/// Symmetric Gram matrix over a packed row set, parallel over row tiles.
///
/// Returns the dense `n × n` matrix with `out[i·n + j] = dot(x_i, x_j)`
/// for `i ≠ j` and `0.0` on the diagonal (the pipeline never consumes
/// self-similarities). Each off-diagonal pair is computed **once** (the
/// upper triangle) and mirrored, so `out[i·n+j]` and `out[j·n+i]` are
/// the same bits.
pub fn gram_packed(packed: &[f32], n: usize, dim: usize) -> Vec<f32> {
    // Hard assert — see [`gemm`] on why this cannot be debug-only.
    assert_eq!(packed.len(), n * dim);
    let n_tiles = n.div_ceil(TILE).max(1);
    // One dispatch decision for the whole Gram; the captured value also
    // pins any `with_simd_tier` override across the worker threads.
    let tier = simd_tier();
    // Each task computes the upper-triangle strip of one row tile.
    let strips: Vec<Vec<f32>> = (0..n_tiles)
        .into_par_iter()
        .map(|t| {
            let i0 = t * TILE;
            let i1 = (i0 + TILE).min(n);
            let rows = i1 - i0;
            let mut strip = vec![0.0f32; rows * n];
            for j0 in (i0..n).step_by(TILE) {
                let j1 = (j0 + TILE).min(n);
                for i in i0..i1 {
                    let xi = &packed[i * dim..(i + 1) * dim];
                    let js = j0.max(i + 1);
                    let row_out = &mut strip[(i - i0) * n + js..(i - i0) * n + j1];
                    dot_row_with_tier(tier, xi, packed, dim, js, j1, row_out);
                }
            }
            strip
        })
        .collect();
    let mut out = vec![0.0f32; n * n];
    for (t, strip) in strips.into_iter().enumerate() {
        let i0 = t * TILE;
        let rows = strip.len() / n.max(1);
        out[i0 * n..i0 * n + rows * n].copy_from_slice(&strip);
    }
    // Mirror the upper triangle; copying preserves bits exactly.
    for i in 0..n {
        for j in i + 1..n {
            out[j * n + i] = out[i * n + j];
        }
    }
    out
}

/// Scalar reference for the batched top-`k`: dot-product top-`k` of
/// `query_row` among `among`, skipping the query itself.
///
/// Same selection semantics as [`crate::knn::top_k_among`] (descending
/// similarity, ties toward the smaller index) but with the raw dot
/// product the graph builder uses on pre-normalized rows, instead of
/// re-deriving cosine.
pub fn top_k_among_dot(
    data: &Embeddings,
    query_row: usize,
    among: &[usize],
    k: usize,
) -> Vec<Neighbor> {
    let q = data.row(query_row);
    let mut buf = TopBuffer::new(k);
    for &i in among {
        if i == query_row {
            continue;
        }
        buf.offer(Neighbor {
            index: i,
            similarity: dot(q, data.row(i)),
        });
    }
    buf.into_sorted()
}

/// Batched top-`k` by dot product: for every query row, its `k` most
/// similar rows among `among` (global indices), excluding itself.
///
/// One blocked pass packs the candidate rows and streams them against
/// each query; queries are processed in parallel. Results are exactly
/// [`top_k_among_dot`] per query — the top-`k` under the total order
/// (similarity desc, index asc) does not depend on candidate visit
/// order.
pub fn top_k_batch(
    data: &Embeddings,
    queries: &[usize],
    among: &[usize],
    k: usize,
) -> Vec<Vec<Neighbor>> {
    let dim = data.dim();
    let packed = pack_rows(data, among);
    let tier = simd_tier();
    queries
        .par_iter()
        .map(|&q| {
            let qrow = data.row(q);
            let mut buf = TopBuffer::new(k);
            let mut sims = [0.0f32; TILE];
            for c0 in (0..among.len()).step_by(TILE) {
                let c1 = (c0 + TILE).min(among.len());
                for (s, c) in (c0..c1).enumerate() {
                    sims[s] = dot_with_tier(tier, qrow, &packed[c * dim..(c + 1) * dim]);
                }
                for (s, c) in (c0..c1).enumerate() {
                    let idx = among[c];
                    if idx == q {
                        continue;
                    }
                    buf.offer(Neighbor {
                        index: idx,
                        similarity: sims[s],
                    });
                }
            }
            buf.into_sorted()
        })
        .collect()
}

/// Portable squared Euclidean distance (16 accumulator lanes).
///
/// The seed's [`crate::embeddings::sq_euclidean`] carries one
/// loop-borne accumulator — a ~4-cycle dependency per element that also
/// blocks autovectorization. This kernel uses the same lane structure
/// as [`dot`] (measured ~3.5× on 128-d rows). **Not** bit-compatible
/// with `sq_euclidean` (different summation association); the
/// clustering paths use one or the other consistently, never a mix.
#[inline]
fn sq_dist_portable(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 16];
    let ca = a.chunks_exact(16);
    let cb = b.chunks_exact(16);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        for l in 0..16 {
            let d = xa[l] - xb[l];
            acc[l] += d * d;
        }
    }
    let mut sum = 0.0;
    for lane in acc {
        sum += lane;
    }
    for (x, y) in ra.iter().zip(rb) {
        let d = x - y;
        sum += d * d;
    }
    sum
}

/// Squared Euclidean distance on an explicit tier. The Portable and
/// Avx2 tiers share the autovectorized 16-lane form (the bit contract
/// holds between them by construction); the Avx512 tier runs the FMA
/// kernel under the tolerance contract.
#[inline]
pub fn sq_dist_with_tier(tier: SimdTier, a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx512 {
        // Hard assert: the AVX-512 path reads `a.len()` elements of `b`
        // through raw pointers, so a length mismatch must panic here
        // rather than read out of bounds in release builds.
        assert_eq!(a.len(), b.len());
        // SAFETY: the Avx512 tier is only ever produced by `detect_best`
        // (or clamped to it), which checks `avx512f` at runtime; lengths
        // are equal per the assert above.
        return unsafe { sq_dist_avx512(a, b) };
    }
    let _ = tier;
    debug_assert_eq!(a.len(), b.len());
    sq_dist_portable(a, b)
}

/// Runtime-dispatched squared Euclidean distance — see
/// [`sq_dist_with_tier`] for the per-tier contracts.
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    sq_dist_with_tier(simd_tier(), a, b)
}

/// Squared distances from every row of `points` (packed, `n × dim`) to
/// every row of `centers` (packed, `k × dim`), parallel over points.
///
/// `out[i·k + c] = sq_dist(point_i, center_c)`. The K-Means assignment
/// and regret passes both read this one matrix instead of re-deriving
/// distances point-by-point.
pub fn sq_dist_batch(points: &[f32], n: usize, centers: &[f32], k: usize, dim: usize) -> Vec<f32> {
    debug_assert_eq!(points.len(), n * dim);
    debug_assert_eq!(centers.len(), k * dim);
    // One dispatch decision for the whole batch; the captured value also
    // pins any `with_simd_tier` override across the worker threads.
    let tier = simd_tier();
    (0..n)
        .into_par_iter()
        .map(|i| {
            let p = &points[i * dim..(i + 1) * dim];
            let mut row = Vec::with_capacity(k);
            for c in 0..k {
                row.push(sq_dist_with_tier(tier, p, &centers[c * dim..(c + 1) * dim]));
            }
            row
        })
        .collect::<Vec<Vec<f32>>>()
        .concat()
}

/// Distance in units-in-the-last-place between two finite `f32`s — the
/// metric of the AVX-512 tolerance harness. Implemented over the
/// monotone mapping of IEEE-754 bit patterns onto a signed integer
/// line, so the result counts representable values between `a` and `b`
/// (0 means bit-identical; +0.0 and −0.0 are 1 apart).
pub fn ulp_diff(a: f32, b: f32) -> u64 {
    fn ordered(x: f32) -> i64 {
        let bits = x.to_bits();
        if bits & 0x8000_0000 != 0 {
            // Negative floats order by descending magnitude; map them
            // below the positives (−0.0 → −1) preserving order.
            -((bits & 0x7FFF_FFFF) as i64) - 1
        } else {
            bits as i64
        }
    }
    ordered(a).abs_diff(ordered(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::Rng;

    fn gaussian(n: usize, dim: usize, seed: u64) -> Embeddings {
        let mut rng = Rng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.normal() as f32).collect())
            .collect();
        let mut e = Embeddings::from_rows(&rows).unwrap();
        e.normalize_rows();
        e
    }

    #[test]
    fn gram_packed_matches_scalar_dot_bitwise() {
        // n deliberately not a multiple of TILE to cover ragged tiles.
        let data = gaussian(150, 37, 1);
        let members: Vec<usize> = (0..150).collect();
        let packed = pack_rows(&data, &members);
        let gram = gram_packed(&packed, 150, 37);
        for i in 0..150 {
            for j in 0..150 {
                let expected = if i == j {
                    0.0
                } else {
                    dot(data.row(i), data.row(j))
                };
                assert_eq!(
                    gram[i * 150 + j].to_bits(),
                    expected.to_bits(),
                    "gram[{i},{j}]"
                );
            }
        }
    }

    #[test]
    fn gram_packed_on_subset_rows() {
        let data = gaussian(80, 16, 2);
        let members: Vec<usize> = (0..80).step_by(3).collect();
        let m = members.len();
        let packed = pack_rows(&data, &members);
        let gram = gram_packed(&packed, m, 16);
        for a in 0..m {
            for b in 0..m {
                let expected = if a == b {
                    0.0
                } else {
                    dot(data.row(members[a]), data.row(members[b]))
                };
                assert_eq!(gram[a * m + b].to_bits(), expected.to_bits());
            }
        }
    }

    #[test]
    fn gram_block_rectangular_matches_scalar() {
        let data = gaussian(100, 24, 3);
        let rows: Vec<usize> = (0..70).collect();
        let cols: Vec<usize> = (70..100).collect();
        let a = pack_rows(&data, &rows);
        let b = pack_rows(&data, &cols);
        let mut out = vec![0.0f32; rows.len() * cols.len()];
        gram_block(&a, rows.len(), &b, cols.len(), 24, &mut out);
        for (i, &r) in rows.iter().enumerate() {
            for (j, &c) in cols.iter().enumerate() {
                assert_eq!(
                    out[i * cols.len() + j].to_bits(),
                    dot(data.row(r), data.row(c)).to_bits()
                );
            }
        }
    }

    #[test]
    fn top_k_batch_matches_scalar_reference_exactly() {
        let data = gaussian(130, 19, 4);
        let among: Vec<usize> = (0..130).collect();
        let queries: Vec<usize> = (0..130).step_by(7).collect();
        let batch = top_k_batch(&data, &queries, &among, 9);
        for (qi, &q) in queries.iter().enumerate() {
            let reference = top_k_among_dot(&data, q, &among, 9);
            assert_eq!(batch[qi].len(), reference.len(), "query {q}");
            for (a, b) in batch[qi].iter().zip(&reference) {
                assert_eq!(a.index, b.index, "query {q}");
                assert_eq!(a.similarity.to_bits(), b.similarity.to_bits(), "query {q}");
            }
        }
    }

    #[test]
    fn top_k_batch_parallel_equals_serial() {
        let data = gaussian(200, 12, 5);
        let among: Vec<usize> = (0..200).collect();
        let queries: Vec<usize> = (0..200).collect();
        let par = top_k_batch(&data, &queries, &among, 5);
        let ser = rayon::serial_scope(|| top_k_batch(&data, &queries, &among, 5));
        assert_eq!(par.len(), ser.len());
        for (a, b) in par.iter().zip(&ser) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn top_k_batch_handles_small_and_duplicate_cases() {
        let data = gaussian(6, 8, 6);
        // k larger than candidate count, query inside candidates.
        let hits = top_k_batch(&data, &[0], &[0, 1, 2], 10);
        assert_eq!(hits[0].len(), 2);
        // Zero k.
        assert!(top_k_batch(&data, &[1], &[0, 2], 0)[0].is_empty());
        // Empty candidates.
        assert!(top_k_batch(&data, &[1], &[], 3)[0].is_empty());
    }

    #[test]
    fn sq_dist_agrees_with_reference_within_fp_tolerance() {
        let data = gaussian(40, 33, 7);
        for i in 0..40 {
            for j in 0..40 {
                let fast = sq_dist(data.row(i), data.row(j));
                let slow = crate::embeddings::sq_euclidean(data.row(i), data.row(j));
                assert!(
                    (fast - slow).abs() <= 1e-5 * (1.0 + slow),
                    "({i},{j}): {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn dispatch_tiers_are_bit_identical() {
        // On AVX2 hardware this compares the intrinsics path against the
        // portable lanes; elsewhere `with_simd_tier` clamps to Portable
        // and the test degenerates to self-comparison (still valid).
        let mut rng = Rng::seed_from_u64(42);
        for len in [0usize, 1, 7, 15, 16, 17, 33, 64, 128, 131] {
            let a: Vec<f32> = (0..len).map(|_| rng.normal() as f32).collect();
            let b: Vec<f32> = (0..len).map(|_| rng.normal() as f32).collect();
            let portable = with_simd_tier(SimdTier::Portable, || dot(&a, &b));
            let avx2 = with_simd_tier(SimdTier::Avx2, || dot(&a, &b));
            assert_eq!(portable.to_bits(), avx2.to_bits(), "len {len}");
            assert_eq!(
                portable.to_bits(),
                crate::embeddings::dot(&a, &b).to_bits(),
                "len {len}"
            );
        }
    }

    #[test]
    fn gemm_matches_per_entry_dot_on_every_tier() {
        let data = gaussian(90, 45, 11);
        let a_rows: Vec<usize> = (0..53).collect();
        let b_rows: Vec<usize> = (53..90).collect();
        let a = pack_rows(&data, &a_rows);
        let b = pack_rows(&data, &b_rows);
        for tier in [SimdTier::Portable, SimdTier::Avx2] {
            let mut out = vec![0.0f32; a_rows.len() * b_rows.len()];
            with_simd_tier(tier, || {
                gemm(&a, a_rows.len(), &b, b_rows.len(), 45, &mut out)
            });
            for (i, &r) in a_rows.iter().enumerate() {
                for (j, &c) in b_rows.iter().enumerate() {
                    assert_eq!(
                        out[i * b_rows.len() + j].to_bits(),
                        crate::embeddings::dot(data.row(r), data.row(c)).to_bits(),
                        "tier {} entry ({i},{j})",
                        tier.name()
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_bias_relu_fuses_exactly() {
        let data = gaussian(70, 30, 12);
        let a_rows: Vec<usize> = (0..40).collect();
        let w_rows: Vec<usize> = (40..70).collect();
        let a = pack_rows(&data, &a_rows);
        let w = pack_rows(&data, &w_rows);
        let bias: Vec<f32> = (0..w_rows.len()).map(|j| (j as f32 - 15.0) * 0.1).collect();
        for relu in [false, true] {
            let mut out = vec![0.0f32; a_rows.len() * w_rows.len()];
            gemm_bias_relu(
                &a,
                a_rows.len(),
                &w,
                w_rows.len(),
                30,
                &bias,
                relu,
                &mut out,
            );
            for (i, &r) in a_rows.iter().enumerate() {
                for (j, &c) in w_rows.iter().enumerate() {
                    let mut expected = dot(data.row(r), data.row(c)) + bias[j];
                    if relu {
                        expected = expected.max(0.0);
                    }
                    assert_eq!(
                        out[i * w_rows.len() + j].to_bits(),
                        expected.to_bits(),
                        "relu {relu} entry ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn tier_override_clamps_and_restores() {
        let outer = simd_tier();
        with_simd_tier(SimdTier::Portable, || {
            assert_eq!(simd_tier(), SimdTier::Portable);
            // Nested override: Avx2 request never exceeds the detection.
            with_simd_tier(SimdTier::Avx2, || {
                assert!(simd_tier() <= detect_tier());
            });
            assert_eq!(simd_tier(), SimdTier::Portable);
        });
        assert_eq!(simd_tier(), outer);
        // The override is restored even when the closure panics (test
        // harnesses catch unwinds and reuse the thread).
        let caught = std::panic::catch_unwind(|| {
            with_simd_tier(SimdTier::Portable, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(simd_tier(), outer);
    }

    #[test]
    fn simd_tier_parse_vocabulary() {
        assert_eq!(SimdTier::parse("portable").unwrap(), SimdTier::Portable);
        assert_eq!(SimdTier::parse("AVX2").unwrap(), SimdTier::Avx2);
        assert_eq!(SimdTier::parse(" avx512 ").unwrap(), SimdTier::Avx512);
        // Unknown names are structured errors, never panics.
        for bad in ["avx1024", "", "sse", "portable2"] {
            match SimdTier::parse(bad) {
                Err(em_core::EmError::InvalidConfig(msg)) => {
                    assert!(msg.contains("SIMD tier"), "message for `{bad}`: {msg}")
                }
                other => panic!("parse(`{bad}`) should be InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn avx512_request_clamps_to_hardware() {
        // Requesting the top tier is always safe: `with_simd_tier`
        // clamps to the detection, so on non-AVX-512 hosts this runs the
        // best lower tier instead of faulting.
        let a: Vec<f32> = (0..67).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..67).map(|i| (i as f32).cos()).collect();
        with_simd_tier(SimdTier::Avx512, || {
            assert!(simd_tier() <= detect_best());
            let _ = dot(&a, &b);
        });
    }

    /// Forward-error budget for an `n`-term f32 dot product against an
    /// f64 reference: `γ(n)·Σ|aᵢbᵢ|` with a small safety factor.
    fn dot_error_budget(a: &[f32], b: &[f32]) -> f64 {
        let n = a.len().max(2) as f64;
        let eps = 2.0_f64.powi(-24);
        let gamma = n * eps / (1.0 - n * eps);
        let mag: f64 = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| (f64::from(x) * f64::from(y)).abs())
            .sum();
        2.0 * gamma * mag.max(f64::MIN_POSITIVE)
    }

    #[test]
    fn every_tier_is_within_the_dot_error_budget() {
        let mut rng = Rng::seed_from_u64(71);
        for len in [1usize, 15, 16, 31, 32, 33, 64, 127, 128, 384] {
            let a: Vec<f32> = (0..len).map(|_| rng.normal() as f32).collect();
            let b: Vec<f32> = (0..len).map(|_| rng.normal() as f32).collect();
            let reference: f64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| f64::from(x) * f64::from(y))
                .sum();
            let budget = dot_error_budget(&a, &b);
            for tier in [SimdTier::Portable, SimdTier::Avx2, SimdTier::Avx512] {
                let got = with_simd_tier(tier, || dot(&a, &b));
                assert!(
                    (f64::from(got) - reference).abs() <= budget,
                    "tier {} len {len}: {got} vs {reference} (budget {budget:e})",
                    tier.name()
                );
            }
        }
    }

    #[test]
    fn avx512_gemm_entries_match_standalone_dot_on_the_same_tier() {
        // The within-tier contract: blocked kernels evaluate each entry
        // as exactly one dot call of their tier, AVX-512 included.
        let data = gaussian(90, 45, 13);
        let a_rows: Vec<usize> = (0..53).collect();
        let b_rows: Vec<usize> = (53..90).collect();
        let a = pack_rows(&data, &a_rows);
        let b = pack_rows(&data, &b_rows);
        with_simd_tier(SimdTier::Avx512, || {
            let mut out = vec![0.0f32; a_rows.len() * b_rows.len()];
            gemm(&a, a_rows.len(), &b, b_rows.len(), 45, &mut out);
            for (i, &r) in a_rows.iter().enumerate() {
                for (j, &c) in b_rows.iter().enumerate() {
                    assert_eq!(
                        out[i * b_rows.len() + j].to_bits(),
                        dot(data.row(r), data.row(c)).to_bits(),
                        "entry ({i},{j})"
                    );
                }
            }
        });
    }

    #[test]
    fn avx512_sq_dist_within_budget_and_batch_consistent() {
        let data = gaussian(30, 70, 14);
        with_simd_tier(SimdTier::Avx512, || {
            for i in 0..30 {
                for j in 0..30 {
                    let got = f64::from(sq_dist(data.row(i), data.row(j)));
                    let reference: f64 = data
                        .row(i)
                        .iter()
                        .zip(data.row(j))
                        .map(|(&x, &y)| {
                            let d = f64::from(x) - f64::from(y);
                            d * d
                        })
                        .sum();
                    assert!(
                        (got - reference).abs() <= 1e-4 * (1.0 + reference),
                        "({i},{j}): {got} vs {reference}"
                    );
                }
            }
            // The batched form hoists the tier once and must agree
            // bit-for-bit with the pointwise kernel on that tier.
            let pts: Vec<usize> = (0..20).collect();
            let ctr: Vec<usize> = (20..27).collect();
            let p = pack_rows(&data, &pts);
            let c = pack_rows(&data, &ctr);
            let out = sq_dist_batch(&p, 20, &c, 7, 70);
            for i in 0..20 {
                for k in 0..7 {
                    let expected = sq_dist(data.row(pts[i]), data.row(ctr[k]));
                    assert_eq!(out[i * 7 + k].to_bits(), expected.to_bits());
                }
            }
        });
    }

    #[test]
    fn ulp_diff_counts_representable_steps() {
        assert_eq!(ulp_diff(1.0, 1.0), 0);
        assert_eq!(ulp_diff(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        assert_eq!(ulp_diff(0.0, -0.0), 1);
        assert_eq!(ulp_diff(-1.0, -1.0), 0);
        let a = -1.0f32;
        let next_toward_zero = f32::from_bits(a.to_bits() - 1);
        assert_eq!(ulp_diff(a, next_toward_zero), 1);
        // Symmetric.
        assert_eq!(ulp_diff(3.5, 3.25), ulp_diff(3.25, 3.5));
    }

    #[test]
    fn sq_dist_batch_matches_pointwise_kernel() {
        let data = gaussian(50, 21, 8);
        let pts: Vec<usize> = (0..30).collect();
        let ctr: Vec<usize> = (30..37).collect();
        let p = pack_rows(&data, &pts);
        let c = pack_rows(&data, &ctr);
        let out = sq_dist_batch(&p, 30, &c, 7, 21);
        for i in 0..30 {
            for k in 0..7 {
                let expected = sq_dist(data.row(pts[i]), data.row(ctr[k]));
                assert_eq!(out[i * 7 + k].to_bits(), expected.to_bits());
            }
        }
    }
}
