//! Blocked similarity kernels — the compute layer behind the spatial
//! pipeline.
//!
//! The cluster → graph → centrality pipeline (§3.3) spends its time in
//! two primitives: pairwise dot products of unit-norm pair
//! representations (edge scoring; the paper runs this step on FAISS's
//! batched kernels, §4.2) and point-to-centroid squared distances
//! (K-Means). The seed implementation evaluated both one scalar call at
//! a time, recomputing each similarity up to three times across the
//! q-NN and top-ratio stages. This module provides the batched versions
//! every hot path now uses:
//!
//! * [`gram_packed`] / [`gram_block`] — cache-blocked Gram matrices
//!   (`X·Yᵀ`) over row subsets, computed once and reused by every
//!   downstream stage;
//! * [`top_k_batch`] — batched top-`k` by dot product with the exact
//!   ordering semantics of the scalar [`crate::knn`] search;
//! * [`sq_dist`] / [`sq_dist_batch`] — an ILP-friendly unrolled squared
//!   Euclidean distance (the seed's scalar loop carried a
//!   single-accumulator dependency chain that cost ~3× on wide rows);
//! * [`pack_rows`] — gathers a row subset into a contiguous buffer so
//!   the kernels stream without indirection.
//!
//! **Determinism contract.** Every dot product is evaluated by the one
//! shared [`dot`] kernel (16 fixed accumulator lanes, fixed reduction
//! order) the scalar paths also use, so each Gram entry is bit-identical
//! to the
//! corresponding `dot(row(i), row(j))` call — blocking only reorders
//! *which pairs* are computed when, never the arithmetic within a pair.
//! The golden tests in this module assert exactly that.

use rayon::prelude::*;

use crate::embeddings::{dot, Embeddings};
use crate::knn::{Neighbor, TopBuffer};

/// Tile edge (rows × columns per block) for the blocked kernels. 64 rows
/// of a 128-d `f32` matrix are 32 KiB — two operand tiles stay resident
/// in L1/L2 while a tile of `TILE²` outputs is produced.
pub const TILE: usize = 64;

/// Gather `rows` of `data` into a contiguous row-major buffer.
///
/// The spatial pipeline operates on cluster subsets of a shared
/// embedding matrix; packing removes the per-access index indirection
/// and makes the kernels stream sequentially.
pub fn pack_rows(data: &Embeddings, rows: &[usize]) -> Vec<f32> {
    let dim = data.dim();
    let mut out = Vec::with_capacity(rows.len() * dim);
    for &r in rows {
        out.extend_from_slice(data.row(r));
    }
    out
}

/// Blocked Gram matrix between two packed row sets: `out[i·nb + j] =
/// dot(a_i, b_j)`.
///
/// `a` has `na` rows and `b` has `nb` rows, both of width `dim`. The
/// traversal is tiled so operand tiles are reused across a whole block
/// of outputs; each entry is one [`dot`] call (bit-identical to the
/// scalar path).
pub fn gram_block(a: &[f32], na: usize, b: &[f32], nb: usize, dim: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), na * dim);
    debug_assert_eq!(b.len(), nb * dim);
    debug_assert_eq!(out.len(), na * nb);
    for i0 in (0..na).step_by(TILE) {
        let i1 = (i0 + TILE).min(na);
        for j0 in (0..nb).step_by(TILE) {
            let j1 = (j0 + TILE).min(nb);
            for i in i0..i1 {
                let ai = &a[i * dim..(i + 1) * dim];
                let row_out = &mut out[i * nb..(i + 1) * nb];
                for j in j0..j1 {
                    row_out[j] = dot(ai, &b[j * dim..(j + 1) * dim]);
                }
            }
        }
    }
}

/// Symmetric Gram matrix over a packed row set, parallel over row tiles.
///
/// Returns the dense `n × n` matrix with `out[i·n + j] = dot(x_i, x_j)`
/// for `i ≠ j` and `0.0` on the diagonal (the pipeline never consumes
/// self-similarities). Each off-diagonal pair is computed **once** (the
/// upper triangle) and mirrored, so `out[i·n+j]` and `out[j·n+i]` are
/// the same bits.
pub fn gram_packed(packed: &[f32], n: usize, dim: usize) -> Vec<f32> {
    debug_assert_eq!(packed.len(), n * dim);
    let n_tiles = n.div_ceil(TILE).max(1);
    // Each task computes the upper-triangle strip of one row tile.
    let strips: Vec<Vec<f32>> = (0..n_tiles)
        .into_par_iter()
        .map(|t| {
            let i0 = t * TILE;
            let i1 = (i0 + TILE).min(n);
            let rows = i1 - i0;
            let mut strip = vec![0.0f32; rows * n];
            for j0 in (i0..n).step_by(TILE) {
                let j1 = (j0 + TILE).min(n);
                for i in i0..i1 {
                    let xi = &packed[i * dim..(i + 1) * dim];
                    let row_out = &mut strip[(i - i0) * n..(i - i0 + 1) * n];
                    for j in j0.max(i + 1)..j1 {
                        row_out[j] = dot(xi, &packed[j * dim..(j + 1) * dim]);
                    }
                }
            }
            strip
        })
        .collect();
    let mut out = vec![0.0f32; n * n];
    for (t, strip) in strips.into_iter().enumerate() {
        let i0 = t * TILE;
        let rows = strip.len() / n.max(1);
        out[i0 * n..i0 * n + rows * n].copy_from_slice(&strip);
    }
    // Mirror the upper triangle; copying preserves bits exactly.
    for i in 0..n {
        for j in i + 1..n {
            out[j * n + i] = out[i * n + j];
        }
    }
    out
}

/// Scalar reference for the batched top-`k`: dot-product top-`k` of
/// `query_row` among `among`, skipping the query itself.
///
/// Same selection semantics as [`crate::knn::top_k_among`] (descending
/// similarity, ties toward the smaller index) but with the raw dot
/// product the graph builder uses on pre-normalized rows, instead of
/// re-deriving cosine.
pub fn top_k_among_dot(
    data: &Embeddings,
    query_row: usize,
    among: &[usize],
    k: usize,
) -> Vec<Neighbor> {
    let q = data.row(query_row);
    let mut buf = TopBuffer::new(k);
    for &i in among {
        if i == query_row {
            continue;
        }
        buf.offer(Neighbor {
            index: i,
            similarity: dot(q, data.row(i)),
        });
    }
    buf.into_sorted()
}

/// Batched top-`k` by dot product: for every query row, its `k` most
/// similar rows among `among` (global indices), excluding itself.
///
/// One blocked pass packs the candidate rows and streams them against
/// each query; queries are processed in parallel. Results are exactly
/// [`top_k_among_dot`] per query — the top-`k` under the total order
/// (similarity desc, index asc) does not depend on candidate visit
/// order.
pub fn top_k_batch(
    data: &Embeddings,
    queries: &[usize],
    among: &[usize],
    k: usize,
) -> Vec<Vec<Neighbor>> {
    let dim = data.dim();
    let packed = pack_rows(data, among);
    queries
        .par_iter()
        .map(|&q| {
            let qrow = data.row(q);
            let mut buf = TopBuffer::new(k);
            let mut sims = [0.0f32; TILE];
            for c0 in (0..among.len()).step_by(TILE) {
                let c1 = (c0 + TILE).min(among.len());
                for (s, c) in (c0..c1).enumerate() {
                    sims[s] = dot(qrow, &packed[c * dim..(c + 1) * dim]);
                }
                for (s, c) in (c0..c1).enumerate() {
                    let idx = among[c];
                    if idx == q {
                        continue;
                    }
                    buf.offer(Neighbor {
                        index: idx,
                        similarity: sims[s],
                    });
                }
            }
            buf.into_sorted()
        })
        .collect()
}

/// Vectorizable squared Euclidean distance (16 accumulator lanes).
///
/// The seed's [`crate::embeddings::sq_euclidean`] carries one
/// loop-borne accumulator — a ~4-cycle dependency per element that also
/// blocks autovectorization. This kernel uses the same lane structure
/// as [`dot`] (measured ~3.5× on 128-d rows). **Not** bit-compatible
/// with `sq_euclidean` (different summation association); the
/// clustering paths use one or the other consistently, never a mix.
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 16];
    let ca = a.chunks_exact(16);
    let cb = b.chunks_exact(16);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        for l in 0..16 {
            let d = xa[l] - xb[l];
            acc[l] += d * d;
        }
    }
    let mut sum = 0.0;
    for lane in acc {
        sum += lane;
    }
    for (x, y) in ra.iter().zip(rb) {
        let d = x - y;
        sum += d * d;
    }
    sum
}

/// Squared distances from every row of `points` (packed, `n × dim`) to
/// every row of `centers` (packed, `k × dim`), parallel over points.
///
/// `out[i·k + c] = sq_dist(point_i, center_c)`. The K-Means assignment
/// and regret passes both read this one matrix instead of re-deriving
/// distances point-by-point.
pub fn sq_dist_batch(points: &[f32], n: usize, centers: &[f32], k: usize, dim: usize) -> Vec<f32> {
    debug_assert_eq!(points.len(), n * dim);
    debug_assert_eq!(centers.len(), k * dim);
    (0..n)
        .into_par_iter()
        .map(|i| {
            let p = &points[i * dim..(i + 1) * dim];
            let mut row = Vec::with_capacity(k);
            for c in 0..k {
                row.push(sq_dist(p, &centers[c * dim..(c + 1) * dim]));
            }
            row
        })
        .collect::<Vec<Vec<f32>>>()
        .concat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::Rng;

    fn gaussian(n: usize, dim: usize, seed: u64) -> Embeddings {
        let mut rng = Rng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.normal() as f32).collect())
            .collect();
        let mut e = Embeddings::from_rows(&rows).unwrap();
        e.normalize_rows();
        e
    }

    #[test]
    fn gram_packed_matches_scalar_dot_bitwise() {
        // n deliberately not a multiple of TILE to cover ragged tiles.
        let data = gaussian(150, 37, 1);
        let members: Vec<usize> = (0..150).collect();
        let packed = pack_rows(&data, &members);
        let gram = gram_packed(&packed, 150, 37);
        for i in 0..150 {
            for j in 0..150 {
                let expected = if i == j {
                    0.0
                } else {
                    dot(data.row(i), data.row(j))
                };
                assert_eq!(
                    gram[i * 150 + j].to_bits(),
                    expected.to_bits(),
                    "gram[{i},{j}]"
                );
            }
        }
    }

    #[test]
    fn gram_packed_on_subset_rows() {
        let data = gaussian(80, 16, 2);
        let members: Vec<usize> = (0..80).step_by(3).collect();
        let m = members.len();
        let packed = pack_rows(&data, &members);
        let gram = gram_packed(&packed, m, 16);
        for a in 0..m {
            for b in 0..m {
                let expected = if a == b {
                    0.0
                } else {
                    dot(data.row(members[a]), data.row(members[b]))
                };
                assert_eq!(gram[a * m + b].to_bits(), expected.to_bits());
            }
        }
    }

    #[test]
    fn gram_block_rectangular_matches_scalar() {
        let data = gaussian(100, 24, 3);
        let rows: Vec<usize> = (0..70).collect();
        let cols: Vec<usize> = (70..100).collect();
        let a = pack_rows(&data, &rows);
        let b = pack_rows(&data, &cols);
        let mut out = vec![0.0f32; rows.len() * cols.len()];
        gram_block(&a, rows.len(), &b, cols.len(), 24, &mut out);
        for (i, &r) in rows.iter().enumerate() {
            for (j, &c) in cols.iter().enumerate() {
                assert_eq!(
                    out[i * cols.len() + j].to_bits(),
                    dot(data.row(r), data.row(c)).to_bits()
                );
            }
        }
    }

    #[test]
    fn top_k_batch_matches_scalar_reference_exactly() {
        let data = gaussian(130, 19, 4);
        let among: Vec<usize> = (0..130).collect();
        let queries: Vec<usize> = (0..130).step_by(7).collect();
        let batch = top_k_batch(&data, &queries, &among, 9);
        for (qi, &q) in queries.iter().enumerate() {
            let reference = top_k_among_dot(&data, q, &among, 9);
            assert_eq!(batch[qi].len(), reference.len(), "query {q}");
            for (a, b) in batch[qi].iter().zip(&reference) {
                assert_eq!(a.index, b.index, "query {q}");
                assert_eq!(a.similarity.to_bits(), b.similarity.to_bits(), "query {q}");
            }
        }
    }

    #[test]
    fn top_k_batch_parallel_equals_serial() {
        let data = gaussian(200, 12, 5);
        let among: Vec<usize> = (0..200).collect();
        let queries: Vec<usize> = (0..200).collect();
        let par = top_k_batch(&data, &queries, &among, 5);
        let ser = rayon::serial_scope(|| top_k_batch(&data, &queries, &among, 5));
        assert_eq!(par.len(), ser.len());
        for (a, b) in par.iter().zip(&ser) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn top_k_batch_handles_small_and_duplicate_cases() {
        let data = gaussian(6, 8, 6);
        // k larger than candidate count, query inside candidates.
        let hits = top_k_batch(&data, &[0], &[0, 1, 2], 10);
        assert_eq!(hits[0].len(), 2);
        // Zero k.
        assert!(top_k_batch(&data, &[1], &[0, 2], 0)[0].is_empty());
        // Empty candidates.
        assert!(top_k_batch(&data, &[1], &[], 3)[0].is_empty());
    }

    #[test]
    fn sq_dist_agrees_with_reference_within_fp_tolerance() {
        let data = gaussian(40, 33, 7);
        for i in 0..40 {
            for j in 0..40 {
                let fast = sq_dist(data.row(i), data.row(j));
                let slow = crate::embeddings::sq_euclidean(data.row(i), data.row(j));
                assert!(
                    (fast - slow).abs() <= 1e-5 * (1.0 + slow),
                    "({i},{j}): {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn sq_dist_batch_matches_pointwise_kernel() {
        let data = gaussian(50, 21, 8);
        let pts: Vec<usize> = (0..30).collect();
        let ctr: Vec<usize> = (30..37).collect();
        let p = pack_rows(&data, &pts);
        let c = pack_rows(&data, &ctr);
        let out = sq_dist_batch(&p, 30, &c, 7, 21);
        for i in 0..30 {
            for k in 0..7 {
                let expected = sq_dist(data.row(pts[i]), data.row(ctr[k]));
                assert_eq!(out[i * 7 + k].to_bits(), expected.to_bits());
            }
        }
    }
}
