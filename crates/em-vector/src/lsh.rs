//! Random-hyperplane locality-sensitive hashing for cosine similarity.
//!
//! The paper's §5.2 names LSH (Gionis et al.) as a future-work route to
//! cut the nearest-neighbour cost of graph construction. This module
//! implements the classic SimHash family: each table hashes a vector to
//! the sign pattern of `n_bits` random hyperplane projections; candidates
//! are the union of same-bucket points over `n_tables` tables, re-ranked
//! exactly.
//!
//! Besides the table-based [`LshIndex`], the module exposes the raw
//! signature machinery ([`sample_planes`] / [`signatures`]) consumed by
//! the blocking tier (`battleship::blocking`), which buckets per-band
//! signatures over record feature vectors: signatures are computed in
//! parallel (rayon-chunked over the [`kernel::dot`](crate::kernel::dot)
//! path), one batch per band.

use std::collections::HashMap;

use rayon::prelude::*;

use em_core::{EmError, Result, Rng};

use crate::embeddings::Embeddings;
use crate::knn::Neighbor;

/// Widest supported signature: bucket keys are `u64`, one bit per
/// hyperplane.
pub const MAX_SIGNATURE_BITS: usize = 64;

/// LSH index parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LshConfig {
    /// Hyperplanes (= hash bits) per table. More bits → smaller buckets,
    /// higher precision, lower recall per table.
    pub n_bits: usize,
    /// Number of independent tables. More tables → higher recall.
    pub n_tables: usize,
    /// RNG seed for hyperplane sampling.
    pub seed: u64,
}

impl Default for LshConfig {
    fn default() -> Self {
        LshConfig {
            n_bits: 12,
            n_tables: 8,
            seed: 0x15AC,
        }
    }
}

impl LshConfig {
    fn validate(&self) -> Result<()> {
        if self.n_bits == 0 || self.n_bits > MAX_SIGNATURE_BITS {
            return Err(EmError::InvalidConfig(format!(
                "LSH n_bits must be in 1..={MAX_SIGNATURE_BITS}, got {}",
                self.n_bits
            )));
        }
        if self.n_tables == 0 {
            return Err(EmError::InvalidConfig("LSH needs >= 1 table".into()));
        }
        Ok(())
    }
}

/// Sample `n_bits` hyperplane normals of dimension `dim` from `rng`,
/// concatenated row-major (`n_bits * dim` floats).
///
/// Draw order is bit-major (all of plane 0, then plane 1, …), so a given
/// `(seed, n_bits, dim)` always yields the same planes regardless of how
/// the signatures are later computed.
pub fn sample_planes(n_bits: usize, dim: usize, rng: &mut Rng) -> Vec<f32> {
    (0..n_bits * dim).map(|_| rng.normal() as f32).collect()
}

/// The sign signature of one vector against `n_bits` planes: bit `b` is
/// set iff `dot(planes[b], v) >= 0`.
#[inline]
pub fn signature_of(v: &[f32], planes: &[f32], n_bits: usize) -> u64 {
    debug_assert!(n_bits <= MAX_SIGNATURE_BITS);
    let dim = v.len();
    let mut sig = 0u64;
    for b in 0..n_bits {
        let plane = &planes[b * dim..(b + 1) * dim];
        if crate::kernel::dot(plane, v) >= 0.0 {
            sig |= 1u64 << b;
        }
    }
    sig
}

/// Per-row bit signatures of every row of `data`, computed in parallel.
///
/// Rows are fanned out over rayon in contiguous chunks and reassembled
/// in row order; each projection is one [`kernel::dot`](crate::kernel::dot)
/// call, so the output is bit-identical for any worker-thread count.
pub fn signatures(data: &Embeddings, planes: &[f32], n_bits: usize) -> Result<Vec<u64>> {
    if n_bits == 0 || n_bits > MAX_SIGNATURE_BITS {
        return Err(EmError::InvalidConfig(format!(
            "signature bits must be in 1..={MAX_SIGNATURE_BITS}, got {n_bits}"
        )));
    }
    if planes.len() != n_bits * data.dim() {
        return Err(EmError::DimensionMismatch {
            context: "LSH hyperplanes".into(),
            expected: n_bits * data.dim(),
            actual: planes.len(),
        });
    }
    Ok((0..data.len())
        .into_par_iter()
        .map(|i| signature_of(data.row(i), planes, n_bits))
        .collect())
}

struct LshTable {
    /// `n_bits` hyperplane normals, each of dimension `dim`, concatenated.
    planes: Vec<f32>,
    buckets: HashMap<u64, Vec<usize>>,
}

/// An immutable LSH index over a fixed set of embeddings.
pub struct LshIndex {
    config: LshConfig,
    tables: Vec<LshTable>,
    dim: usize,
}

impl LshIndex {
    /// Hash every row of `data` into `config.n_tables` tables.
    pub fn build(data: &Embeddings, config: LshConfig) -> Result<Self> {
        config.validate()?;
        if data.is_empty() {
            return Err(EmError::EmptyInput("LSH build data".into()));
        }
        let dim = data.dim();
        let mut rng = Rng::seed_from_u64(config.seed);
        let mut tables = Vec::with_capacity(config.n_tables);
        for _ in 0..config.n_tables {
            let planes = sample_planes(config.n_bits, dim, &mut rng);
            let sigs = signatures(data, &planes, config.n_bits)?;
            let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
            for (i, &sig) in sigs.iter().enumerate() {
                buckets.entry(sig).or_default().push(i);
            }
            tables.push(LshTable { planes, buckets });
        }
        Ok(LshIndex {
            config,
            tables,
            dim,
        })
    }

    /// Candidate rows sharing at least one bucket with `query`
    /// (deduplicated, ascending index order).
    pub fn candidates(&self, query: &[f32]) -> Result<Vec<usize>> {
        if query.len() != self.dim {
            return Err(EmError::DimensionMismatch {
                context: "LSH query".into(),
                expected: self.dim,
                actual: query.len(),
            });
        }
        let mut out = Vec::new();
        for t in &self.tables {
            let sig = signature_of(query, &t.planes, self.config.n_bits);
            if let Some(bucket) = t.buckets.get(&sig) {
                out.extend_from_slice(bucket);
            }
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Approximate top-`k`: exact re-ranking of the LSH candidate set.
    pub fn search(
        &self,
        data: &Embeddings,
        query: &[f32],
        k: usize,
        exclude: Option<usize>,
    ) -> Result<Vec<Neighbor>> {
        let cands = self.candidates(query)?;
        let mut hits: Vec<Neighbor> = cands
            .into_iter()
            .filter(|&i| exclude != Some(i))
            .map(|i| Neighbor {
                index: i,
                similarity: crate::embeddings::cosine(query, data.row(i)),
            })
            .collect();
        hits.sort_by(|a, b| {
            b.similarity
                .partial_cmp(&a.similarity)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.index.cmp(&b.index))
        });
        hits.truncate(k);
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::top_k;

    fn clustered_data(n_per: usize) -> Embeddings {
        // Two tight clusters on the unit circle, far apart.
        let mut rng = Rng::seed_from_u64(77);
        let mut rows = Vec::new();
        for c in 0..2 {
            let center = if c == 0 { 0.0f64 } else { std::f64::consts::PI };
            for _ in 0..n_per {
                let angle = center + rng.normal() * 0.05;
                rows.push(vec![angle.cos() as f32, angle.sin() as f32]);
            }
        }
        Embeddings::from_rows(&rows).unwrap()
    }

    #[test]
    fn build_rejects_bad_config() {
        let e = clustered_data(4);
        assert!(LshIndex::build(
            &e,
            LshConfig {
                n_bits: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(LshIndex::build(
            &e,
            LshConfig {
                n_tables: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(LshIndex::build(
            &e,
            LshConfig {
                n_bits: 65,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn full_width_64_bit_signatures_work() {
        // The u64 bucket-key boundary: 64 planes must build, produce
        // signatures that exercise the top bit range, and stay
        // deterministic. (The former 32-bit cap was an artifact of the
        // old `u32` key type.)
        let e = clustered_data(20);
        let cfg = LshConfig {
            n_bits: 64,
            n_tables: 2,
            seed: 9,
        };
        let idx = LshIndex::build(&e, cfg).unwrap();
        let a = idx.candidates(e.row(0)).unwrap();
        let b = LshIndex::build(&e, cfg)
            .unwrap()
            .candidates(e.row(0))
            .unwrap();
        assert_eq!(a, b);
        // A row is always its own candidate: identical signatures.
        assert!(a.contains(&0));

        // Bits above the old 32-bit cap must actually be populated.
        let mut rng = Rng::seed_from_u64(9);
        let planes = sample_planes(64, e.dim(), &mut rng);
        let sigs = signatures(&e, &planes, 64).unwrap();
        assert!(
            sigs.iter().any(|&s| s >> 32 != 0),
            "no signature used the high 32 bits"
        );
    }

    #[test]
    fn signatures_match_scalar_and_any_thread_count() {
        let e = clustered_data(40);
        let mut rng = Rng::seed_from_u64(3);
        let planes = sample_planes(16, e.dim(), &mut rng);
        let par = signatures(&e, &planes, 16).unwrap();
        let serial = rayon::serial_scope(|| signatures(&e, &planes, 16).unwrap());
        let scalar: Vec<u64> = (0..e.len())
            .map(|i| signature_of(e.row(i), &planes, 16))
            .collect();
        assert_eq!(par, serial);
        assert_eq!(par, scalar);
    }

    #[test]
    fn signatures_validate_inputs() {
        let e = clustered_data(4);
        let planes = vec![0.0f32; 2 * e.dim()];
        assert!(signatures(&e, &planes, 3).is_err(), "plane count mismatch");
        assert!(signatures(&e, &planes, 0).is_err());
        let wide = vec![0.0f32; 65 * e.dim()];
        assert!(signatures(&e, &wide, 65).is_err());
    }

    #[test]
    fn query_dim_checked() {
        let e = clustered_data(4);
        let idx = LshIndex::build(&e, LshConfig::default()).unwrap();
        assert!(idx.candidates(&[1.0, 0.0, 0.0]).is_err());
    }

    #[test]
    fn candidates_find_own_cluster() {
        let e = clustered_data(30);
        let idx = LshIndex::build(&e, LshConfig::default()).unwrap();
        // Query with a cluster-0 member: most cluster-0 members should be
        // candidates.
        let cands = idx.candidates(e.row(0)).unwrap();
        let in_cluster0 = cands.iter().filter(|&&i| i < 30).count();
        assert!(in_cluster0 >= 25, "found only {in_cluster0} of 30");
    }

    #[test]
    fn search_recall_against_exact() {
        let e = clustered_data(50);
        let idx = LshIndex::build(&e, LshConfig::default()).unwrap();
        let exact: Vec<usize> = top_k(&e, e.row(0), 10, Some(0))
            .into_iter()
            .map(|n| n.index)
            .collect();
        let approx: Vec<usize> = idx
            .search(&e, e.row(0), 10, Some(0))
            .unwrap()
            .into_iter()
            .map(|n| n.index)
            .collect();
        let hit = approx.iter().filter(|i| exact.contains(i)).count();
        assert!(hit >= 8, "recall@10 too low: {hit}/10");
    }

    #[test]
    fn search_excludes_query() {
        let e = clustered_data(10);
        let idx = LshIndex::build(&e, LshConfig::default()).unwrap();
        let hits = idx.search(&e, e.row(3), 5, Some(3)).unwrap();
        assert!(hits.iter().all(|n| n.index != 3));
    }

    #[test]
    fn deterministic_given_seed() {
        let e = clustered_data(20);
        let a = LshIndex::build(&e, LshConfig::default()).unwrap();
        let b = LshIndex::build(&e, LshConfig::default()).unwrap();
        assert_eq!(
            a.candidates(e.row(5)).unwrap(),
            b.candidates(e.row(5)).unwrap()
        );
    }
}
