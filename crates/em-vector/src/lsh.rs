//! Random-hyperplane locality-sensitive hashing for cosine similarity.
//!
//! The paper's §5.2 names LSH (Gionis et al.) as a future-work route to
//! cut the nearest-neighbour cost of graph construction. This module
//! implements the classic SimHash family: each table hashes a vector to
//! the sign pattern of `n_bits` random hyperplane projections; candidates
//! are the union of same-bucket points over `n_tables` tables, re-ranked
//! exactly.

use std::collections::HashMap;

use em_core::{EmError, Result, Rng};

use crate::embeddings::Embeddings;
use crate::knn::Neighbor;

/// LSH index parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LshConfig {
    /// Hyperplanes (= hash bits) per table. More bits → smaller buckets,
    /// higher precision, lower recall per table.
    pub n_bits: usize,
    /// Number of independent tables. More tables → higher recall.
    pub n_tables: usize,
    /// RNG seed for hyperplane sampling.
    pub seed: u64,
}

impl Default for LshConfig {
    fn default() -> Self {
        LshConfig {
            n_bits: 12,
            n_tables: 8,
            seed: 0x15AC,
        }
    }
}

impl LshConfig {
    fn validate(&self) -> Result<()> {
        if self.n_bits == 0 || self.n_bits > 32 {
            return Err(EmError::InvalidConfig(format!(
                "LSH n_bits must be in 1..=32, got {}",
                self.n_bits
            )));
        }
        if self.n_tables == 0 {
            return Err(EmError::InvalidConfig("LSH needs >= 1 table".into()));
        }
        Ok(())
    }
}

struct LshTable {
    /// `n_bits` hyperplane normals, each of dimension `dim`, concatenated.
    planes: Vec<f32>,
    buckets: HashMap<u32, Vec<usize>>,
}

impl LshTable {
    fn signature(&self, v: &[f32], n_bits: usize) -> u32 {
        let dim = v.len();
        let mut sig = 0u32;
        for b in 0..n_bits {
            let plane = &self.planes[b * dim..(b + 1) * dim];
            if crate::embeddings::dot(plane, v) >= 0.0 {
                sig |= 1 << b;
            }
        }
        sig
    }
}

/// An immutable LSH index over a fixed set of embeddings.
pub struct LshIndex {
    config: LshConfig,
    tables: Vec<LshTable>,
    dim: usize,
}

impl LshIndex {
    /// Hash every row of `data` into `config.n_tables` tables.
    pub fn build(data: &Embeddings, config: LshConfig) -> Result<Self> {
        config.validate()?;
        if data.is_empty() {
            return Err(EmError::EmptyInput("LSH build data".into()));
        }
        let dim = data.dim();
        let mut rng = Rng::seed_from_u64(config.seed);
        let mut tables = Vec::with_capacity(config.n_tables);
        for _ in 0..config.n_tables {
            let planes: Vec<f32> = (0..config.n_bits * dim)
                .map(|_| rng.normal() as f32)
                .collect();
            let mut table = LshTable {
                planes,
                buckets: HashMap::new(),
            };
            for i in 0..data.len() {
                let sig = table.signature(data.row(i), config.n_bits);
                table.buckets.entry(sig).or_default().push(i);
            }
            tables.push(table);
        }
        Ok(LshIndex {
            config,
            tables,
            dim,
        })
    }

    /// Candidate rows sharing at least one bucket with `query`
    /// (deduplicated, ascending index order).
    pub fn candidates(&self, query: &[f32]) -> Result<Vec<usize>> {
        if query.len() != self.dim {
            return Err(EmError::DimensionMismatch {
                context: "LSH query".into(),
                expected: self.dim,
                actual: query.len(),
            });
        }
        let mut out = Vec::new();
        for t in &self.tables {
            let sig = t.signature(query, self.config.n_bits);
            if let Some(bucket) = t.buckets.get(&sig) {
                out.extend_from_slice(bucket);
            }
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Approximate top-`k`: exact re-ranking of the LSH candidate set.
    pub fn search(
        &self,
        data: &Embeddings,
        query: &[f32],
        k: usize,
        exclude: Option<usize>,
    ) -> Result<Vec<Neighbor>> {
        let cands = self.candidates(query)?;
        let mut hits: Vec<Neighbor> = cands
            .into_iter()
            .filter(|&i| exclude != Some(i))
            .map(|i| Neighbor {
                index: i,
                similarity: crate::embeddings::cosine(query, data.row(i)),
            })
            .collect();
        hits.sort_by(|a, b| {
            b.similarity
                .partial_cmp(&a.similarity)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.index.cmp(&b.index))
        });
        hits.truncate(k);
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::top_k;

    fn clustered_data(n_per: usize) -> Embeddings {
        // Two tight clusters on the unit circle, far apart.
        let mut rng = Rng::seed_from_u64(77);
        let mut rows = Vec::new();
        for c in 0..2 {
            let center = if c == 0 { 0.0f64 } else { std::f64::consts::PI };
            for _ in 0..n_per {
                let angle = center + rng.normal() * 0.05;
                rows.push(vec![angle.cos() as f32, angle.sin() as f32]);
            }
        }
        Embeddings::from_rows(&rows).unwrap()
    }

    #[test]
    fn build_rejects_bad_config() {
        let e = clustered_data(4);
        assert!(LshIndex::build(
            &e,
            LshConfig {
                n_bits: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(LshIndex::build(
            &e,
            LshConfig {
                n_tables: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(LshIndex::build(
            &e,
            LshConfig {
                n_bits: 40,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn query_dim_checked() {
        let e = clustered_data(4);
        let idx = LshIndex::build(&e, LshConfig::default()).unwrap();
        assert!(idx.candidates(&[1.0, 0.0, 0.0]).is_err());
    }

    #[test]
    fn candidates_find_own_cluster() {
        let e = clustered_data(30);
        let idx = LshIndex::build(&e, LshConfig::default()).unwrap();
        // Query with a cluster-0 member: most cluster-0 members should be
        // candidates.
        let cands = idx.candidates(e.row(0)).unwrap();
        let in_cluster0 = cands.iter().filter(|&&i| i < 30).count();
        assert!(in_cluster0 >= 25, "found only {in_cluster0} of 30");
    }

    #[test]
    fn search_recall_against_exact() {
        let e = clustered_data(50);
        let idx = LshIndex::build(&e, LshConfig::default()).unwrap();
        let exact: Vec<usize> = top_k(&e, e.row(0), 10, Some(0))
            .into_iter()
            .map(|n| n.index)
            .collect();
        let approx: Vec<usize> = idx
            .search(&e, e.row(0), 10, Some(0))
            .unwrap()
            .into_iter()
            .map(|n| n.index)
            .collect();
        let hit = approx.iter().filter(|i| exact.contains(i)).count();
        assert!(hit >= 8, "recall@10 too low: {hit}/10");
    }

    #[test]
    fn search_excludes_query() {
        let e = clustered_data(10);
        let idx = LshIndex::build(&e, LshConfig::default()).unwrap();
        let hits = idx.search(&e, e.row(3), 5, Some(3)).unwrap();
        assert!(hits.iter().all(|n| n.index != 3));
    }

    #[test]
    fn deterministic_given_seed() {
        let e = clustered_data(20);
        let a = LshIndex::build(&e, LshConfig::default()).unwrap();
        let b = LshIndex::build(&e, LshConfig::default()).unwrap();
        assert_eq!(
            a.candidates(e.row(5)).unwrap(),
            b.candidates(e.row(5)).unwrap()
        );
    }
}
