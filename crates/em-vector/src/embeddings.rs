//! Row-major embedding storage and the basic vector kernels.
//!
//! Pair representations pooled from the matcher (the paper's `[CLS]`
//! embeddings, §3.2) are stored contiguously: row `i` is the vector of
//! pair `i`. Contiguous storage keeps the all-pairs similarity loops of
//! graph construction cache-friendly.

use em_core::{EmError, Result};

/// Dot product of two equal-length slices.
///
/// 16 independent accumulator lanes over `chunks_exact(16)`: the
/// iterator form eliminates bounds checks so LLVM reliably
/// autovectorizes (measured ~4× over the previous indexed 4-lane
/// unroll, which did not vectorize), and the fixed lane structure plus
/// fixed final reduction order make the result bit-deterministic on any
/// SIMD width — 16 lanes map onto 4×SSE, 2×AVX or 1×AVX-512 registers
/// with identical per-lane arithmetic.
///
/// This is the one similarity kernel of the workspace: the scalar
/// search paths, the blocked Gram kernels and the graph builders all
/// call it, so their results are mutually bit-compatible.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 16];
    let ca = a.chunks_exact(16);
    let cb = b.chunks_exact(16);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        for l in 0..16 {
            acc[l] += xa[l] * xb[l];
        }
    }
    let mut sum = 0.0;
    for lane in acc {
        sum += lane;
    }
    for (x, y) in ra.iter().zip(rb) {
        sum += x * y;
    }
    sum
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine similarity in `[-1, 1]`; zero vectors yield 0.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Normalize in place to unit norm (no-op for the zero vector).
pub fn normalize(a: &mut [f32]) {
    let n = norm(a);
    if n > 0.0 {
        for x in a {
            *x /= n;
        }
    }
}

/// Squared Euclidean distance.
#[inline]
pub fn sq_euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut sum = 0.0;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// A dense row-major matrix of `n` vectors of dimension `dim`.
#[derive(Debug, Clone, PartialEq)]
pub struct Embeddings {
    dim: usize,
    data: Vec<f32>,
}

impl Embeddings {
    /// Empty collection of `dim`-dimensional vectors.
    pub fn new(dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(EmError::InvalidConfig("embedding dim must be > 0".into()));
        }
        Ok(Embeddings {
            dim,
            data: Vec::new(),
        })
    }

    /// Build from a flat row-major buffer. `data.len()` must be a multiple
    /// of `dim`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Result<Self> {
        if dim == 0 {
            return Err(EmError::InvalidConfig("embedding dim must be > 0".into()));
        }
        if !data.len().is_multiple_of(dim) {
            return Err(EmError::DimensionMismatch {
                context: "flat embedding buffer".into(),
                expected: dim,
                actual: data.len() % dim,
            });
        }
        Ok(Embeddings { dim, data })
    }

    /// Build from row vectors; all rows must share one dimension.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self> {
        let dim = rows
            .first()
            .map(Vec::len)
            .ok_or_else(|| EmError::EmptyInput("embedding rows".into()))?;
        let mut e = Embeddings::new(dim)?;
        for r in rows {
            e.push(r)?;
        }
        Ok(e)
    }

    /// Vector dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// `true` iff no vectors are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Drop every stored vector, keeping the allocation (and `dim`) for
    /// reuse — the backing store for per-session scratch matrices that
    /// are rebuilt every iteration at roughly the same size.
    #[inline]
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Append one vector.
    pub fn push(&mut self, v: &[f32]) -> Result<()> {
        if v.len() != self.dim {
            return Err(EmError::DimensionMismatch {
                context: "Embeddings::push".into(),
                expected: self.dim,
                actual: v.len(),
            });
        }
        self.data.extend_from_slice(v);
        Ok(())
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Cosine similarity of rows `i` and `j`.
    #[inline]
    pub fn cosine(&self, i: usize, j: usize) -> f32 {
        cosine(self.row(i), self.row(j))
    }

    /// Normalize every row to unit norm, enabling dot-product == cosine.
    pub fn normalize_rows(&mut self) {
        for i in 0..self.len() {
            let start = i * self.dim;
            normalize(&mut self.data[start..start + self.dim]);
        }
    }

    /// Gather a subset of rows into a new `Embeddings` (row `k` of the
    /// output is row `idxs[k]` of the input).
    pub fn gather(&self, idxs: &[usize]) -> Result<Embeddings> {
        let mut out = Embeddings::new(self.dim)?;
        out.data.reserve(idxs.len() * self.dim);
        for &i in idxs {
            if i >= self.len() {
                return Err(EmError::IndexOutOfBounds {
                    context: "Embeddings::gather".into(),
                    index: i,
                    len: self.len(),
                });
            }
            out.data.extend_from_slice(self.row(i));
        }
        Ok(out)
    }

    /// Mean vector of all rows (error when empty).
    pub fn centroid(&self) -> Result<Vec<f32>> {
        if self.is_empty() {
            return Err(EmError::EmptyInput("embeddings for centroid".into()));
        }
        let mut c = vec![0.0f32; self.dim];
        for i in 0..self.len() {
            for (acc, &x) in c.iter_mut().zip(self.row(i)) {
                *acc += x;
            }
        }
        let n = self.len() as f32;
        for x in &mut c {
            *x /= n;
        }
        Ok(c)
    }

    /// Immutable view of the flat buffer.
    #[inline]
    pub fn flat(&self) -> &[f32] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm_basics() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        // length > 4 exercises the unrolled tail
        let a = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        assert_eq!(dot(&a, &a), 6.0);
    }

    #[test]
    fn cosine_known_values() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn cosine_is_scale_invariant() {
        let a = [0.3, -0.7, 0.2];
        let b = [1.5, 0.4, -0.9];
        let scaled: Vec<f32> = b.iter().map(|x| x * 42.0).collect();
        assert!((cosine(&a, &b) - cosine(&a, &scaled)).abs() < 1e-6);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn embeddings_push_and_row() {
        let mut e = Embeddings::new(3).unwrap();
        e.push(&[1.0, 2.0, 3.0]).unwrap();
        e.push(&[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e.row(1), &[4.0, 5.0, 6.0]);
        assert!(e.push(&[1.0]).is_err());
    }

    #[test]
    fn from_flat_validates() {
        assert!(Embeddings::from_flat(0, vec![]).is_err());
        assert!(Embeddings::from_flat(3, vec![1.0; 4]).is_err());
        let e = Embeddings::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn from_rows_and_gather() {
        let e = Embeddings::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let g = e.gather(&[2, 0]).unwrap();
        assert_eq!(g.row(0), &[1.0, 1.0]);
        assert_eq!(g.row(1), &[1.0, 0.0]);
        assert!(e.gather(&[5]).is_err());
    }

    #[test]
    fn centroid_is_mean() {
        let e = Embeddings::from_rows(&[vec![0.0, 0.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(e.centroid().unwrap(), vec![1.0, 2.0]);
        assert!(Embeddings::new(2).unwrap().centroid().is_err());
    }

    #[test]
    fn normalize_rows_enables_dot_as_cosine() {
        let mut e = Embeddings::from_rows(&[vec![3.0, 4.0], vec![5.0, 12.0]]).unwrap();
        let expected = e.cosine(0, 1);
        e.normalize_rows();
        let got = dot(e.row(0), e.row(1));
        assert!((expected - got).abs() < 1e-6);
    }

    #[test]
    fn sq_euclidean_known() {
        assert_eq!(sq_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
