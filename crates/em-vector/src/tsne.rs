//! Exact t-SNE (van der Maaten & Hinton 2008).
//!
//! Figure 1 of the paper visualizes 768-dimensional pair representations
//! with t-SNE to show that match pairs concentrate in a few regions of the
//! latent space. This implementation is the exact O(n²) algorithm with the
//! standard bells: per-point perplexity calibration by binary search,
//! symmetrized affinities, early exaggeration, momentum, and adaptive
//! gains — sufficient for the benchmark-scale inputs (≈10⁴ pairs) of the
//! figure.

use em_core::{EmError, Result, Rng};

use crate::embeddings::{sq_euclidean, Embeddings};
use crate::pca::Pca;

/// t-SNE hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsneConfig {
    /// Output dimensionality (2 for plotting).
    pub out_dim: usize,
    /// Target perplexity of the conditional distributions.
    pub perplexity: f64,
    /// Gradient descent iterations.
    pub iterations: usize,
    /// Learning rate (η). Non-positive means "auto": `max(n / (4·exaggeration), 50)`,
    /// the heuristic of Belkina et al. adopted by scikit-learn.
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of the
    /// iterations.
    pub exaggeration: f64,
    /// Seed for the PCA fallback / jitter.
    pub seed: u64,
    /// When `true`, initialize from the top principal components
    /// (recommended); otherwise random Gaussian init.
    pub pca_init: bool,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            out_dim: 2,
            perplexity: 30.0,
            iterations: 400,
            learning_rate: 0.0,
            exaggeration: 12.0,
            seed: 0x75_4E,
            pca_init: true,
        }
    }
}

impl TsneConfig {
    fn validate(&self, n: usize) -> Result<()> {
        if self.out_dim == 0 {
            return Err(EmError::InvalidConfig("t-SNE out_dim must be > 0".into()));
        }
        if self.perplexity <= 1.0 {
            return Err(EmError::InvalidConfig(
                "t-SNE perplexity must be > 1".into(),
            ));
        }
        if n < 4 {
            return Err(EmError::EmptyInput("t-SNE needs at least 4 points".into()));
        }
        if (n as f64) < 3.0 * self.perplexity + 1.0 {
            return Err(EmError::InvalidConfig(format!(
                "perplexity {} too large for {} points",
                self.perplexity, n
            )));
        }
        Ok(())
    }
}

/// The t-SNE reducer.
pub struct Tsne {
    config: TsneConfig,
}

impl Tsne {
    /// Create a reducer with the given configuration.
    pub fn new(config: TsneConfig) -> Self {
        Tsne { config }
    }

    /// Embed `data` into `config.out_dim` dimensions.
    pub fn fit(&self, data: &Embeddings) -> Result<Embeddings> {
        let n = data.len();
        self.config.validate(n)?;

        let p = self.joint_affinities(data);
        let mut y = self.init_embedding(data)?;
        self.gradient_descent(&p, &mut y, n);
        Embeddings::from_flat(self.config.out_dim, y)
    }

    /// Symmetrized joint affinities `p_ij` (flattened n×n, row-major).
    fn joint_affinities(&self, data: &Embeddings) -> Vec<f64> {
        let n = data.len();
        // Pairwise squared distances.
        let mut d2 = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i + 1..n {
                let d = sq_euclidean(data.row(i), data.row(j)) as f64;
                d2[i * n + j] = d;
                d2[j * n + i] = d;
            }
        }

        // Per-row beta (1 / 2σ²) by binary search on perplexity.
        let target_entropy = self.config.perplexity.ln();
        let mut p = vec![0.0f64; n * n];
        for i in 0..n {
            let row = &d2[i * n..(i + 1) * n];
            let mut beta = 1.0f64;
            let mut beta_min = f64::NEG_INFINITY;
            let mut beta_max = f64::INFINITY;
            for _ in 0..64 {
                let (entropy, probs) = row_entropy(row, i, beta);
                let diff = entropy - target_entropy;
                if diff.abs() < 1e-5 {
                    p[i * n..(i + 1) * n].copy_from_slice(&probs);
                    break;
                }
                if diff > 0.0 {
                    beta_min = beta;
                    beta = if beta_max.is_finite() {
                        (beta + beta_max) / 2.0
                    } else {
                        beta * 2.0
                    };
                } else {
                    beta_max = beta;
                    beta = if beta_min.is_finite() {
                        (beta + beta_min) / 2.0
                    } else {
                        beta / 2.0
                    };
                }
                p[i * n..(i + 1) * n].copy_from_slice(&probs);
            }
        }

        // Symmetrize and normalize: p_ij = (p_j|i + p_i|j) / 2n.
        let mut joint = vec![0.0f64; n * n];
        let mut total = 0.0;
        for i in 0..n {
            for j in 0..n {
                let v = (p[i * n + j] + p[j * n + i]) / 2.0;
                joint[i * n + j] = v;
                total += v;
            }
        }
        let total = total.max(f64::MIN_POSITIVE);
        for v in &mut joint {
            *v = (*v / total).max(1e-12);
        }
        joint
    }

    fn init_embedding(&self, data: &Embeddings) -> Result<Vec<f32>> {
        let n = data.len();
        let d = self.config.out_dim;
        let mut rng = Rng::seed_from_u64(self.config.seed);
        if self.config.pca_init {
            if let Ok(pca) = Pca::fit(data, d, self.config.seed) {
                let proj = pca.transform(data)?;
                // Scale to small magnitudes (σ ≈ 1e-2) as usual.
                let mut max_abs = 0.0f32;
                for v in proj.flat() {
                    max_abs = max_abs.max(v.abs());
                }
                let scale = if max_abs > 0.0 { 1e-2 / max_abs } else { 1.0 };
                let mut flat = proj.flat().to_vec();
                for (k, v) in flat.iter_mut().enumerate() {
                    // Tiny jitter breaks exact ties from degenerate PCA.
                    *v = *v * scale + (rng.normal() as f32) * 1e-5 * ((k % 7) as f32 + 1.0);
                }
                return Ok(flat);
            }
        }
        Ok((0..n * d).map(|_| rng.normal() as f32 * 1e-2).collect())
    }

    fn gradient_descent(&self, p: &[f64], y: &mut [f32], n: usize) {
        let d = self.config.out_dim;
        let iters = self.config.iterations;
        let exag_until = iters / 4;
        let eta = if self.config.learning_rate > 0.0 {
            self.config.learning_rate
        } else {
            (n as f64 / (4.0 * self.config.exaggeration)).max(50.0)
        };
        let mut velocity = vec![0.0f64; n * d];
        let mut gains = vec![1.0f64; n * d];
        let mut q = vec![0.0f64; n * n];

        for iter in 0..iters {
            let exaggeration = if iter < exag_until {
                self.config.exaggeration
            } else {
                1.0
            };
            let momentum = if iter < exag_until { 0.5 } else { 0.8 };

            // Student-t affinities q_ij with numerators cached.
            let mut q_total = 0.0f64;
            for i in 0..n {
                for j in i + 1..n {
                    let mut dist = 0.0f64;
                    for k in 0..d {
                        let diff = (y[i * d + k] - y[j * d + k]) as f64;
                        dist += diff * diff;
                    }
                    let num = 1.0 / (1.0 + dist);
                    q[i * n + j] = num;
                    q[j * n + i] = num;
                    q_total += 2.0 * num;
                }
            }
            let q_total = q_total.max(f64::MIN_POSITIVE);

            // Gradient: 4 Σ_j (exag·p_ij − q_ij) num_ij (y_i − y_j).
            for i in 0..n {
                let mut grad = vec![0.0f64; d];
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let num = q[i * n + j];
                    let qij = num / q_total;
                    let mult = (exaggeration * p[i * n + j] - qij) * num;
                    for (k, g) in grad.iter_mut().enumerate() {
                        *g += mult * (y[i * d + k] - y[j * d + k]) as f64;
                    }
                }
                for (k, g) in grad.iter_mut().enumerate() {
                    let g4 = 4.0 * *g;
                    let gi = i * d + k;
                    // Adaptive gains (Jacobs 1988 style, as in the
                    // reference implementation).
                    gains[gi] = if (g4 > 0.0) == (velocity[gi] > 0.0) {
                        (gains[gi] * 0.8).max(0.01)
                    } else {
                        (gains[gi] + 0.2).min(4.0)
                    };
                    // Cap the per-step displacement: a cheap guard that
                    // prevents rare oscillation blow-ups on tiny inputs
                    // without affecting converged embeddings.
                    velocity[gi] =
                        (momentum * velocity[gi] - eta * gains[gi] * g4).clamp(-5.0, 5.0);
                    y[gi] += velocity[gi] as f32;
                }
            }

            // Re-center to keep the embedding from drifting.
            for k in 0..d {
                let mean: f64 = (0..n).map(|i| y[i * d + k] as f64).sum::<f64>() / n as f64;
                for i in 0..n {
                    y[i * d + k] -= mean as f32;
                }
            }
        }
    }
}

/// Shannon entropy and probabilities of row `i`'s conditional distribution
/// at precision `beta`.
fn row_entropy(d2_row: &[f64], i: usize, beta: f64) -> (f64, Vec<f64>) {
    let n = d2_row.len();
    let mut probs = vec![0.0f64; n];
    let mut sum = 0.0f64;
    for (j, &d) in d2_row.iter().enumerate() {
        if j == i {
            continue;
        }
        let p = (-beta * d).exp();
        probs[j] = p;
        sum += p;
    }
    if sum <= 0.0 {
        return (0.0, probs);
    }
    let mut entropy = 0.0f64;
    for (j, p) in probs.iter_mut().enumerate() {
        if j == i {
            continue;
        }
        *p /= sum;
        if *p > 1e-300 {
            entropy -= *p * p.ln();
        }
    }
    (entropy, probs)
}

/// k-NN label purity of an embedding: for each point, the fraction of its
/// `k` nearest neighbours (Euclidean, in the embedded space) that share
/// its label, averaged per label class.
///
/// This is the quantitative reading of Figure 1: "positive pairs tend to
/// gather together" ⇔ the match class has high neighbour purity in the
/// 2-D embedding.
pub fn knn_label_purity(embedding: &Embeddings, labels: &[bool], k: usize) -> Result<(f64, f64)> {
    let n = embedding.len();
    if labels.len() != n {
        return Err(EmError::DimensionMismatch {
            context: "knn_label_purity labels".into(),
            expected: n,
            actual: labels.len(),
        });
    }
    if n < 2 || k == 0 {
        return Err(EmError::EmptyInput("purity inputs".into()));
    }
    let mut pos_purity = 0.0f64;
    let mut neg_purity = 0.0f64;
    let mut pos_count = 0usize;
    let mut neg_count = 0usize;
    for i in 0..n {
        // k nearest by Euclidean distance in the embedding.
        let mut dists: Vec<(usize, f32)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| (j, sq_euclidean(embedding.row(i), embedding.row(j))))
            .collect();
        dists.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let kk = k.min(dists.len());
        let same = dists[..kk]
            .iter()
            .filter(|(j, _)| labels[*j] == labels[i])
            .count();
        let purity = same as f64 / kk as f64;
        if labels[i] {
            pos_purity += purity;
            pos_count += 1;
        } else {
            neg_purity += purity;
            neg_count += 1;
        }
    }
    Ok((
        if pos_count > 0 {
            pos_purity / pos_count as f64
        } else {
            0.0
        },
        if neg_count > 0 {
            neg_purity / neg_count as f64
        } else {
            0.0
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs(n_per: usize, dim: usize, sep: f32) -> (Embeddings, Vec<bool>) {
        let mut rng = Rng::seed_from_u64(99);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2 {
            for _ in 0..n_per {
                let mut v: Vec<f32> = (0..dim).map(|_| rng.normal() as f32 * 0.3).collect();
                v[0] += if c == 0 { -sep } else { sep };
                rows.push(v);
                labels.push(c == 1);
            }
        }
        (Embeddings::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn config_validation() {
        let (data, _) = two_blobs(3, 2, 1.0);
        let t = Tsne::new(TsneConfig {
            perplexity: 5.0,
            ..Default::default()
        });
        // 6 points < 3*5+1 → perplexity too large.
        assert!(t.fit(&data).is_err());
        let t = Tsne::new(TsneConfig {
            perplexity: 0.5,
            ..Default::default()
        });
        assert!(t.fit(&data).is_err());
    }

    #[test]
    fn separates_well_separated_blobs() {
        let (data, labels) = two_blobs(40, 8, 4.0);
        let t = Tsne::new(TsneConfig {
            perplexity: 10.0,
            iterations: 250,
            ..Default::default()
        });
        let emb = t.fit(&data).unwrap();
        assert_eq!(emb.len(), 80);
        assert_eq!(emb.dim(), 2);
        let (pos, neg) = knn_label_purity(&emb, &labels, 10).unwrap();
        assert!(pos > 0.9, "pos purity {pos}");
        assert!(neg > 0.9, "neg purity {neg}");
    }

    #[test]
    fn embedding_is_centered() {
        let (data, _) = two_blobs(20, 4, 2.0);
        let t = Tsne::new(TsneConfig {
            perplexity: 8.0,
            iterations: 100,
            ..Default::default()
        });
        let emb = t.fit(&data).unwrap();
        for k in 0..2 {
            let mean: f64 =
                (0..emb.len()).map(|i| emb.row(i)[k] as f64).sum::<f64>() / emb.len() as f64;
            assert!(mean.abs() < 1e-3, "dim {k} mean {mean}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, _) = two_blobs(15, 4, 2.0);
        let cfg = TsneConfig {
            perplexity: 6.0,
            iterations: 60,
            ..Default::default()
        };
        let a = Tsne::new(cfg).fit(&data).unwrap();
        let b = Tsne::new(cfg).fit(&data).unwrap();
        assert_eq!(a.flat(), b.flat());
    }

    #[test]
    fn purity_validates_inputs() {
        let (data, labels) = two_blobs(5, 2, 1.0);
        assert!(knn_label_purity(&data, &labels[..3], 3).is_err());
        assert!(knn_label_purity(&data, &labels, 0).is_err());
    }

    #[test]
    fn purity_on_perfectly_mixed_labels_is_low() {
        // Alternating labels on a line: every neighbourhood is mixed.
        let rows: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32, 0.0]).collect();
        let labels: Vec<bool> = (0..20).map(|i| i % 2 == 0).collect();
        let e = Embeddings::from_rows(&rows).unwrap();
        let (pos, neg) = knn_label_purity(&e, &labels, 2).unwrap();
        assert!(pos < 0.35, "pos {pos}");
        assert!(neg < 0.35, "neg {neg}");
    }

    #[test]
    fn row_entropy_monotone_in_beta() {
        // Higher beta (smaller variance) → lower entropy.
        let d2 = vec![0.0, 1.0, 4.0, 9.0];
        let (h_low, _) = row_entropy(&d2, 0, 0.1);
        let (h_high, _) = row_entropy(&d2, 0, 10.0);
        assert!(h_low > h_high);
    }
}
