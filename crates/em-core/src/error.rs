//! Workspace-wide error type.
//!
//! Every fallible public API in the workspace returns [`Result<T>`]. The
//! error enum is deliberately small: most algorithmic code validates its
//! inputs up front and then runs infallibly.

use std::fmt;

/// Errors produced across the `battleship-em` workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum EmError {
    /// A configuration value is outside its legal domain.
    InvalidConfig(String),
    /// Two inputs that must agree in dimension/length do not.
    DimensionMismatch {
        /// Description of what was being matched up.
        context: String,
        /// Dimension expected by the callee.
        expected: usize,
        /// Dimension actually provided.
        actual: usize,
    },
    /// An operation that requires a non-empty input received an empty one.
    EmptyInput(String),
    /// An index referred to an element that does not exist.
    IndexOutOfBounds {
        /// Description of the indexed collection.
        context: String,
        /// The offending index.
        index: usize,
        /// Number of elements in the collection.
        len: usize,
    },
    /// An algorithm failed to converge or find a solution.
    NoSolution(String),
    /// Dataset-level consistency violation (dangling record ids, label
    /// count mismatch, overlapping splits, ...).
    InconsistentDataset(String),
    /// A serialized snapshot frame failed to decode (truncation, bad
    /// magic/version, checksum mismatch, corrupt length prefix, ...).
    Codec(String),
    /// A storage backend operation failed (I/O on a snapshot directory,
    /// missing key, ...).
    Storage(String),
    /// A fault that a bounded retry is expected to clear: an interrupted
    /// syscall, a timeout, an injected fault from a chaos harness.
    /// Permanent failures use [`EmError::Storage`] instead; the split is
    /// what retry policies dispatch on (see [`EmError::is_transient`]).
    Transient(String),
    /// An internal invariant failed: state that is unreachable by
    /// construction was observed anyway. The panic-free paths
    /// (`serve/`, `session/`, the codec — enforced by `em-lint`'s
    /// `no-panic` rule) return this instead of panicking; seeing one
    /// is a bug in this workspace, not bad input.
    Internal(String),
}

impl fmt::Display for EmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            EmError::DimensionMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            EmError::EmptyInput(what) => write!(f, "empty input: {what}"),
            EmError::IndexOutOfBounds {
                context,
                index,
                len,
            } => write!(f, "index {index} out of bounds in {context} (len {len})"),
            EmError::NoSolution(msg) => write!(f, "no solution: {msg}"),
            EmError::InconsistentDataset(msg) => write!(f, "inconsistent dataset: {msg}"),
            EmError::Codec(msg) => write!(f, "snapshot codec: {msg}"),
            EmError::Storage(msg) => write!(f, "snapshot storage: {msg}"),
            EmError::Transient(msg) => write!(f, "transient fault: {msg}"),
            EmError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl EmError {
    /// Whether a bounded retry is expected to clear this error.
    ///
    /// Retry loops (e.g. the serve layer's `RetryPolicy`) re-attempt an
    /// operation only while this returns `true`; every other error is
    /// surfaced immediately — retrying a checksum mismatch or a bad
    /// configuration would only hide the bug.
    pub fn is_transient(&self) -> bool {
        matches!(self, EmError::Transient(_))
    }

    /// Classify an I/O error from a storage backend: interruptions and
    /// timeouts become [`EmError::Transient`] (a retry is expected to
    /// clear them), everything else [`EmError::Storage`].
    pub fn storage_io(context: impl std::fmt::Display, err: &std::io::Error) -> EmError {
        use std::io::ErrorKind;
        match err.kind() {
            ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut => {
                EmError::Transient(format!("{context}: {err}"))
            }
            _ => EmError::Storage(format!("{context}: {err}")),
        }
    }
}

impl std::error::Error for EmError {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, EmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EmError::DimensionMismatch {
            context: "cosine".into(),
            expected: 3,
            actual: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("cosine"));
        assert!(msg.contains('3'));
        assert!(msg.contains('4'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            EmError::EmptyInput("pairs".into()),
            EmError::EmptyInput("pairs".into())
        );
        assert_ne!(
            EmError::EmptyInput("pairs".into()),
            EmError::EmptyInput("records".into())
        );
    }

    #[test]
    fn transient_classification() {
        assert!(EmError::Transient("blip".into()).is_transient());
        for e in [
            EmError::Storage("disk gone".into()),
            EmError::Codec("bad checksum".into()),
            EmError::InvalidConfig("nope".into()),
        ] {
            assert!(!e.is_transient(), "{e} misclassified as transient");
        }
        let interrupted = std::io::Error::from(std::io::ErrorKind::Interrupted);
        assert!(EmError::storage_io("write x", &interrupted).is_transient());
        let denied = std::io::Error::from(std::io::ErrorKind::PermissionDenied);
        assert!(!EmError::storage_io("write x", &denied).is_transient());
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(EmError::NoSolution("kneedle".into()));
        assert!(e.to_string().contains("kneedle"));
    }
}
