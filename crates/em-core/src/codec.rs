//! The compact binary snapshot codec substrate.
//!
//! Session checkpoints are dominated by float arrays (the matcher's
//! flat parameters, tens of thousands of `f32`s), which JSON renders at
//! ~2–4× their binary width and parses slowly. This module provides the
//! shared little-endian wire layer every snapshot type builds its
//! `to_bytes` / `from_bytes` on:
//!
//! * [`ByteWriter`] — primitive little-endian emitters plus
//!   length-prefixed arrays and strings,
//! * [`ByteReader`] — the mirror decoder; every read is bounds-checked
//!   and returns a structured [`EmError::Codec`] (never panics, never
//!   over-allocates on a corrupt length prefix),
//! * [`write_frame`] / [`read_frame`] — the self-describing envelope:
//!   a 4-byte magic, a format version byte, a length-prefixed payload
//!   and a trailing FNV-1a 64 checksum over everything before it.
//!
//! The checksum makes corruption detection deterministic: FNV-1a's
//! per-byte state transition is a bijection of the running state (xor
//! with the byte, then multiplication by an odd prime mod 2⁶⁴), so any
//! single flipped bit anywhere in the frame yields a different digest —
//! the codec robustness proptests flip bits at every position and
//! require a structured error each time.
//!
//! Floats are written as their IEEE-754 bit patterns, so a decoded
//! value is *bit-identical* to the encoded one — the same contract the
//! JSON path provides via shortest-round-trip formatting, pinned by the
//! snapshot golden tests.

use crate::error::{EmError, Result};

/// Panic-free slice→array conversion. Every caller has already
/// length-validated (via [`ByteReader::take`] or explicit frame
/// bounds), but the codec's panic-freedom contract bans `expect` even
/// for "impossible" mismatches: corrupt input must surface as a
/// structured [`EmError::Codec`] the whole way down, never a panic.
fn to_array<const N: usize>(b: &[u8]) -> Result<[u8; N]> {
    if b.len() != N {
        return Err(EmError::Codec(format!(
            "internal length mismatch: expected {N} bytes, got {}",
            b.len()
        )));
    }
    let mut out = [0u8; N];
    out.copy_from_slice(b);
    Ok(out)
}

/// FNV-1a 64 offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a 64 over `bytes` — the frame checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A growable little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer with `capacity` bytes pre-reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer into its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f32` as its IEEE-754 bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append `Some(f64)` as `1 + bits`, `None` as `0`.
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_f64(x);
            }
            None => self.put_u8(0),
        }
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a length-prefixed `u32` array.
    pub fn put_u32s(&mut self, xs: &[u32]) {
        self.put_usize(xs.len());
        for &x in xs {
            self.put_u32(x);
        }
    }

    /// Append a length-prefixed `u64` array.
    pub fn put_u64s(&mut self, xs: &[u64]) {
        self.put_usize(xs.len());
        for &x in xs {
            self.put_u64(x);
        }
    }

    /// Append a length-prefixed `usize` array (as `u64`s).
    pub fn put_usizes(&mut self, xs: &[usize]) {
        self.put_usize(xs.len());
        for &x in xs {
            self.put_usize(x);
        }
    }

    /// Append a length-prefixed `f32` array (bit patterns).
    pub fn put_f32s(&mut self, xs: &[f32]) {
        self.put_usize(xs.len());
        for &x in xs {
            self.put_f32(x);
        }
    }

    /// Append a length-prefixed opaque byte block (nested frames).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u64` as an LEB128 varint (1 byte per 7 bits, low
    /// first) — the compact form for index-like values, which are
    /// small far more often than not.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Append a varint-count-prefixed array of varint `usize`s (pair
    /// indices, stamp vectors, layer widths, …).
    pub fn put_varints(&mut self, xs: &[usize]) {
        self.put_varint(xs.len() as u64);
        for &x in xs {
            self.put_varint(x as u64);
        }
    }
}

/// A bounds-checked little-endian byte cursor.
///
/// Every failure is a structured [`EmError::Codec`] naming the decode
/// `context`; a corrupt length prefix can never cause a panic or an
/// attacker-sized allocation (lengths are validated against the bytes
/// actually remaining before any buffer is reserved).
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> ByteReader<'a> {
    /// A reader over `bytes`; `context` names the structure being
    /// decoded in every error.
    pub fn new(bytes: &'a [u8], context: &'static str) -> Self {
        ByteReader {
            bytes,
            pos: 0,
            context,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn err(&self, detail: impl Into<String>) -> EmError {
        EmError::Codec(format!("{}: {}", self.context, detail.into()))
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if n > self.remaining() {
            return Err(self.err(format!(
                "truncated: needed {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(to_array(b)?))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(to_array(b)?))
    }

    /// Read a `usize` (stored as `u64`), rejecting values that cannot
    /// index memory on this platform.
    pub fn get_usize(&mut self) -> Result<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| self.err(format!("value {v} exceeds usize")))
    }

    /// Read an `f32` bit pattern.
    pub fn get_f32(&mut self) -> Result<f32> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a bool byte (must be exactly 0 or 1).
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(self.err(format!("invalid bool byte {other}"))),
        }
    }

    /// Read an optional `f64` (tag byte then bits).
    pub fn get_opt_f64(&mut self) -> Result<Option<f64>> {
        Ok(if self.get_bool()? {
            Some(self.get_f64()?)
        } else {
            None
        })
    }

    /// Read a length prefix for elements of `elem_size` bytes,
    /// validating it against the bytes actually remaining.
    fn get_len(&mut self, elem_size: usize) -> Result<usize> {
        let n = self.get_usize()?;
        if n.checked_mul(elem_size)
            .is_none_or(|b| b > self.remaining())
        {
            return Err(self.err(format!(
                "corrupt length prefix {n} (×{elem_size} B) with {} bytes remaining",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let n = self.get_len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| self.err(format!("invalid UTF-8: {e}")))
    }

    /// Read a length-prefixed `u32` array.
    pub fn get_u32s(&mut self) -> Result<Vec<u32>> {
        let n = self.get_len(4)?;
        (0..n).map(|_| self.get_u32()).collect()
    }

    /// Read a length-prefixed `u64` array.
    pub fn get_u64s(&mut self) -> Result<Vec<u64>> {
        let n = self.get_len(8)?;
        (0..n).map(|_| self.get_u64()).collect()
    }

    /// Read a length-prefixed `usize` array.
    pub fn get_usizes(&mut self) -> Result<Vec<usize>> {
        let n = self.get_len(8)?;
        (0..n).map(|_| self.get_usize()).collect()
    }

    /// Read a length-prefixed `f32` array.
    pub fn get_f32s(&mut self) -> Result<Vec<f32>> {
        let n = self.get_len(4)?;
        (0..n).map(|_| self.get_f32()).collect()
    }

    /// Read a length-prefixed opaque byte block (nested frames).
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.get_len(1)?;
        self.take(n)
    }

    /// Read an LEB128 varint (at most 10 bytes; a non-terminated run is
    /// corruption).
    pub fn get_varint(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            let bits = (byte & 0x7F) as u64;
            // 9 full bytes carry 63 bits; the 10th may only add bit 63.
            if shift >= 64 || (shift == 63 && bits > 1) {
                return Err(self.err("varint overruns 64 bits"));
            }
            v |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read a varint as `usize`.
    pub fn get_varint_usize(&mut self) -> Result<usize> {
        let v = self.get_varint()?;
        usize::try_from(v).map_err(|_| self.err(format!("varint {v} exceeds usize")))
    }

    /// Read a varint-count-prefixed array of varint `usize`s. Each
    /// element is at least one byte, so the count is validated against
    /// the bytes remaining before anything is allocated.
    pub fn get_varints(&mut self) -> Result<Vec<usize>> {
        let n = self.get_varint_usize()?;
        if n > self.remaining() {
            return Err(self.err(format!(
                "corrupt varint count {n} with {} bytes remaining",
                self.remaining()
            )));
        }
        (0..n).map(|_| self.get_varint_usize()).collect()
    }

    /// Require that every byte has been consumed (trailing garbage is
    /// corruption, not slack).
    pub fn finish(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(self.err(format!("{} trailing bytes after payload", self.remaining())));
        }
        Ok(())
    }
}

/// Wrap `payload` in the standard frame:
/// `magic(4) | version(1) | payload_len(u64 LE) | payload | fnv1a64(u64 LE)`
/// where the checksum covers everything before it.
pub fn write_frame(magic: [u8; 4], version: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 21);
    out.extend_from_slice(&magic);
    out.push(version);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Open a frame written by [`write_frame`], verifying magic, version,
/// length and checksum, and return its payload slice.
pub fn read_frame<'a>(
    bytes: &'a [u8],
    magic: [u8; 4],
    version: u8,
    context: &'static str,
) -> Result<&'a [u8]> {
    let err = |detail: String| EmError::Codec(format!("{context}: {detail}"));
    let header = 4 + 1 + 8;
    if bytes.len() < header + 8 {
        return Err(err(format!(
            "frame of {} bytes is shorter than the {}-byte envelope",
            bytes.len(),
            header + 8
        )));
    }
    if bytes[..4] != magic {
        return Err(err(format!(
            "bad magic {:02x?} (expected {:02x?})",
            &bytes[..4],
            magic
        )));
    }
    if bytes[4] != version {
        return Err(err(format!(
            "unsupported format version {} (expected {version})",
            bytes[4]
        )));
    }
    let payload_len = u64::from_le_bytes(to_array(&bytes[5..13])?) as usize;
    let expected_total = header
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(8));
    if expected_total != Some(bytes.len()) {
        return Err(err(format!(
            "length prefix {payload_len} disagrees with frame size {}",
            bytes.len()
        )));
    }
    let body = &bytes[..header + payload_len];
    let stored = u64::from_le_bytes(to_array(&bytes[header + payload_len..])?);
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(err(format!(
            "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        )));
    }
    Ok(&bytes[header..header + payload_len])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_bit_exactly() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_usize(42);
        w.put_f32(-0.0);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_opt_f64(Some(1.5e-300));
        w.put_opt_f64(None);
        w.put_str("snapshot ≠ checkpoint");
        w.put_f32s(&[1.0, f32::MIN_POSITIVE, f32::INFINITY]);
        w.put_u32s(&[1, 2, 3]);
        w.put_u64s(&[u64::MAX]);
        w.put_usizes(&[0, 9]);
        w.put_bytes(b"nested");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes, "test");
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_usize().unwrap(), 42);
        assert_eq!(r.get_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.get_f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert!(r.get_bool().unwrap());
        assert_eq!(
            r.get_opt_f64().unwrap().unwrap().to_bits(),
            1.5e-300f64.to_bits()
        );
        assert_eq!(r.get_opt_f64().unwrap(), None);
        assert_eq!(r.get_str().unwrap(), "snapshot ≠ checkpoint");
        let f = r.get_f32s().unwrap();
        assert_eq!(f.len(), 3);
        assert_eq!(f[2], f32::INFINITY);
        assert_eq!(r.get_u32s().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_u64s().unwrap(), vec![u64::MAX]);
        assert_eq!(r.get_usizes().unwrap(), vec![0, 9]);
        assert_eq!(r.get_bytes().unwrap(), b"nested");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_are_structured_errors() {
        let mut w = ByteWriter::new();
        w.put_u64(5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..3], "trunc");
        let e = r.get_u64().unwrap_err();
        assert!(matches!(e, EmError::Codec(_)), "{e}");
        assert!(e.to_string().contains("trunc"));
    }

    #[test]
    fn corrupt_length_prefix_cannot_overallocate() {
        // A length prefix claiming u64::MAX elements must be rejected
        // before any allocation happens.
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(ByteReader::new(&bytes, "len").get_f32s().is_err());
        assert!(ByteReader::new(&bytes, "len").get_str().is_err());
        assert!(ByteReader::new(&bytes, "len").get_bytes().is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut r = ByteReader::new(&[1, 2], "tail");
        r.get_u8().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn frame_round_trips_and_detects_every_single_bit_flip() {
        let payload = b"the matcher params dominate snapshot size";
        let frame = write_frame(*b"TEST", 3, payload);
        assert_eq!(read_frame(&frame, *b"TEST", 3, "frame").unwrap(), payload);
        // Wrong magic / version / truncation are structured errors.
        assert!(read_frame(&frame, *b"NOPE", 3, "frame").is_err());
        assert!(read_frame(&frame, *b"TEST", 4, "frame").is_err());
        assert!(read_frame(&frame[..frame.len() - 1], *b"TEST", 3, "frame").is_err());
        // Exhaustive single-bit corruption: every flip must be caught
        // (FNV-1a's per-byte transition is bijective in the running
        // state, so one flipped bit always changes the digest).
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    read_frame(&bad, *b"TEST", 3, "frame").is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn varints_round_trip_and_reject_overruns() {
        let values = [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut w = ByteWriter::new();
        for &v in &values {
            w.put_varint(v);
        }
        w.put_varints(&[0, 300, 70_000]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "varint");
        for &v in &values {
            assert_eq!(r.get_varint().unwrap(), v);
        }
        assert_eq!(r.get_varints().unwrap(), vec![0, 300, 70_000]);
        r.finish().unwrap();
        // Small values really are small on the wire.
        let mut w = ByteWriter::new();
        w.put_varint(5);
        assert_eq!(w.as_slice().len(), 1);
        // A never-terminating continuation run is corruption, not a hang
        // or a silent wrap.
        let bad = [0xFFu8; 11];
        assert!(ByteReader::new(&bad, "varint").get_varint().is_err());
        // A 10th byte with payload above bit 63 is rejected.
        let mut too_big = [0x80u8; 10];
        too_big[9] = 0x02;
        assert!(ByteReader::new(&too_big, "varint").get_varint().is_err());
        // Corrupt counts cannot over-allocate.
        let mut w = ByteWriter::new();
        w.put_varint(u64::MAX);
        let bytes = w.into_bytes();
        assert!(ByteReader::new(&bytes, "varint").get_varints().is_err());
    }

    #[test]
    fn fnv_is_the_reference_function() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
    }
}
