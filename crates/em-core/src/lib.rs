#![forbid(unsafe_code)]
//! # em-core
//!
//! Core data model and shared utilities for the `battleship-em` workspace —
//! a from-scratch Rust reproduction of *"The Battleship Approach to the Low
//! Resource Entity Matching Problem"* (Genossar, Gal & Shraga, SIGMOD 2023).
//!
//! This crate owns everything that every other crate needs and that carries
//! no algorithmic opinion of its own:
//!
//! * the **relational data model** for entity matching: [`Record`],
//!   [`Schema`], [`Table`], candidate [`pair::CandidatePair`]s and
//!   [`Dataset`]s with train/validation/test splits,
//! * **DITTO-style serialization** of tuple pairs into a
//!   `[CLS] [COL] a [VAL] v … [SEP] …` token stream (paper §2.1, Example 3),
//! * a **tokenizer** with word- and character-n-gram views used by both the
//!   featurizer and the similarity measures,
//! * **evaluation metrics**: precision / recall / F1, confusion matrices and
//!   the area-under-the-F1-curve measure used by Table 5,
//! * a deterministic, splittable **pseudo-random number generator** so every
//!   experiment in the workspace is reproducible from a single `u64` seed,
//! * the labeling [`Oracle`] abstraction (perfect and noisy variants),
//! * the stamped-set [`Membership`] structure for O(1)-reset membership
//!   tests over dense id spaces (the protocol driver's hot set tests),
//! * the **binary snapshot codec substrate** ([`codec`]): checksummed
//!   little-endian frames every checkpointable type builds its
//!   `to_bytes` / `from_bytes` on (the serving layer's compact
//!   persistence format).
//!
//! Everything is dependency-light: the only third-party crate is `serde`
//! (for experiment configs and reports).

pub mod codec;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod membership;
pub mod metrics;
pub mod oracle;
pub mod pair;
pub mod record;
pub mod rng;
pub mod serialize;
pub mod tokenize;

pub use codec::{ByteReader, ByteWriter};
pub use csv::{load_magellan_dir, parse_csv};
pub use dataset::{Dataset, DatasetStats, Split, SplitRatios};
pub use error::{EmError, Result};
pub use membership::Membership;
pub use metrics::{BinaryConfusion, F1Curve, Metrics};
pub use oracle::{NoisyOracle, Oracle, PerfectOracle};
pub use pair::{CandidatePair, Label, PairIdx, Prediction};
pub use record::{Record, RecordId, Schema, Table};
pub use rng::{Rng, RngState};
pub use serialize::{serialize_pair, serialize_record};
pub use tokenize::{char_ngrams, jaccard, overlap_coefficient, tokenize, TokenSet};
