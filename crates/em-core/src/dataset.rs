//! Datasets: two tables, a candidate pair set, ground truth and splits.
//!
//! A [`Dataset`] bundles everything an experiment needs: the two record
//! tables, the blocked candidate pairs, hidden ground-truth labels (visible
//! only through an [`crate::Oracle`]), and a train/validation/test split.
//! The active-learning loop operates exclusively on the *train* portion —
//! `D` in the paper's notation — which it further partitions into
//! `D_train_i` (labeled so far) and `D_pool_i` (§3.1). The test portion is
//! used only for reporting F1.

use serde::{Deserialize, Serialize};

use crate::error::{EmError, Result};
use crate::pair::{CandidatePair, Label, PairIdx};
use crate::record::Table;
use crate::rng::Rng;

/// Ratios used to split the candidate set, e.g. `3:1:1` for
/// Walmart-Amazon/Amazon-Google/ABT-Buy/DBLP-Scholar or `4:1` + fixed test
/// for the WDC datasets (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitRatios {
    /// Relative weight of the training portion.
    pub train: f64,
    /// Relative weight of the validation portion.
    pub valid: f64,
    /// Relative weight of the test portion.
    pub test: f64,
}

impl SplitRatios {
    /// The 3:1:1 split used by the Magellan benchmarks.
    pub const MAGELLAN: SplitRatios = SplitRatios {
        train: 3.0,
        valid: 1.0,
        test: 1.0,
    };

    /// Validate that all parts are non-negative and the total is positive.
    pub fn validate(&self) -> Result<()> {
        if self.train < 0.0 || self.valid < 0.0 || self.test < 0.0 {
            return Err(EmError::InvalidConfig("split ratios must be >= 0".into()));
        }
        if self.train + self.valid + self.test <= 0.0 {
            return Err(EmError::InvalidConfig("split ratios sum to zero".into()));
        }
        if self.train <= 0.0 {
            return Err(EmError::InvalidConfig("train ratio must be > 0".into()));
        }
        Ok(())
    }
}

/// A disjoint partition of the candidate pair indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Split {
    /// Pairs available to active learning (`D` in the paper).
    pub train: Vec<PairIdx>,
    /// Pairs used for epoch selection / early stopping.
    pub valid: Vec<PairIdx>,
    /// Held-out pairs used only for the reported F1.
    pub test: Vec<PairIdx>,
}

impl Split {
    /// Total number of pairs across the three parts.
    pub fn total(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }
}

/// Summary statistics in the shape of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of candidate pairs in the training split ("Size" in Table 3).
    pub train_size: usize,
    /// Fraction of positives among training pairs ("%Pos").
    pub train_pos_rate: f64,
    /// Number of attributes per record ("#Atts").
    pub n_attrs: usize,
    /// Total candidate pairs across all splits.
    pub total_pairs: usize,
    /// Total positives across all splits.
    pub total_matches: usize,
}

/// A complete entity-matching task instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Dataset name (e.g. `"walmart-amazon"`).
    pub name: String,
    /// Left table (`D1`).
    pub left: Table,
    /// Right table (`D2`).
    pub right: Table,
    pairs: Vec<CandidatePair>,
    truth: Vec<Label>,
    split: Split,
}

impl Dataset {
    /// Assemble and validate a dataset.
    ///
    /// Checks referential integrity of every pair, label/pair alignment and
    /// that the split is a disjoint cover of the pair indices.
    pub fn new(
        name: impl Into<String>,
        left: Table,
        right: Table,
        pairs: Vec<CandidatePair>,
        truth: Vec<Label>,
        split: Split,
    ) -> Result<Self> {
        let name = name.into();
        if pairs.is_empty() {
            return Err(EmError::EmptyInput(format!("candidate pairs of `{name}`")));
        }
        if pairs.len() != truth.len() {
            return Err(EmError::InconsistentDataset(format!(
                "`{name}`: {} pairs but {} labels",
                pairs.len(),
                truth.len()
            )));
        }
        for (i, p) in pairs.iter().enumerate() {
            if p.left.index() >= left.len() || p.right.index() >= right.len() {
                return Err(EmError::InconsistentDataset(format!(
                    "`{name}`: pair {i} references missing record \
                     (left {} of {}, right {} of {})",
                    p.left.0,
                    left.len(),
                    p.right.0,
                    right.len()
                )));
            }
        }
        if split.total() != pairs.len() {
            return Err(EmError::InconsistentDataset(format!(
                "`{name}`: split covers {} of {} pairs",
                split.total(),
                pairs.len()
            )));
        }
        let mut seen = vec![false; pairs.len()];
        for &i in split.train.iter().chain(&split.valid).chain(&split.test) {
            if i >= pairs.len() {
                return Err(EmError::IndexOutOfBounds {
                    context: format!("split of `{name}`"),
                    index: i,
                    len: pairs.len(),
                });
            }
            if seen[i] {
                return Err(EmError::InconsistentDataset(format!(
                    "`{name}`: pair {i} appears in more than one split part"
                )));
            }
            seen[i] = true;
        }
        Ok(Dataset {
            name,
            left,
            right,
            pairs,
            truth,
            split,
        })
    }

    /// Build the canonical split by seeded shuffling of all pair indices.
    pub fn random_split(n_pairs: usize, ratios: SplitRatios, rng: &mut Rng) -> Result<Split> {
        ratios.validate()?;
        if n_pairs == 0 {
            return Err(EmError::EmptyInput("pairs to split".into()));
        }
        let mut idx: Vec<PairIdx> = (0..n_pairs).collect();
        rng.shuffle(&mut idx);
        let total = ratios.train + ratios.valid + ratios.test;
        let n_train = ((ratios.train / total) * n_pairs as f64).round() as usize;
        let n_valid = ((ratios.valid / total) * n_pairs as f64).round() as usize;
        let n_train = n_train.min(n_pairs);
        let n_valid = n_valid.min(n_pairs - n_train);
        let train = idx[..n_train].to_vec();
        let valid = idx[n_train..n_train + n_valid].to_vec();
        let test = idx[n_train + n_valid..].to_vec();
        Ok(Split { train, valid, test })
    }

    /// All candidate pairs, indexable by [`PairIdx`].
    #[inline]
    pub fn pairs(&self) -> &[CandidatePair] {
        &self.pairs
    }

    /// Number of candidate pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` iff there are no pairs (unreachable via `new`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The split into train/valid/test pair indices.
    #[inline]
    pub fn split(&self) -> &Split {
        &self.split
    }

    /// Ground-truth label of a pair.
    ///
    /// Algorithm code must not call this — it is for oracles and for
    /// evaluation. The type system cannot enforce that, so the name is
    /// deliberately explicit.
    #[inline]
    pub fn ground_truth(&self, idx: PairIdx) -> Label {
        self.truth[idx]
    }

    /// Ground-truth labels for a list of pair indices.
    pub fn ground_truth_of(&self, idxs: &[PairIdx]) -> Vec<Label> {
        idxs.iter().map(|&i| self.truth[i]).collect()
    }

    /// The two records of pair `idx`.
    pub fn pair_records(&self, idx: PairIdx) -> Result<(&crate::Record, &crate::Record)> {
        let p = self
            .pairs
            .get(idx)
            .ok_or_else(|| EmError::IndexOutOfBounds {
                context: format!("pairs of `{}`", self.name),
                index: idx,
                len: self.pairs.len(),
            })?;
        Ok((self.left.get(p.left)?, self.right.get(p.right)?))
    }

    /// Table-3-style statistics.
    pub fn stats(&self) -> DatasetStats {
        let train_matches = self
            .split
            .train
            .iter()
            .filter(|&&i| self.truth[i].is_match())
            .count();
        let total_matches = self.truth.iter().filter(|l| l.is_match()).count();
        DatasetStats {
            train_size: self.split.train.len(),
            train_pos_rate: if self.split.train.is_empty() {
                0.0
            } else {
                train_matches as f64 / self.split.train.len() as f64
            },
            n_attrs: self.left.schema.len(),
            total_pairs: self.pairs.len(),
            total_matches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RecordId, Schema};

    fn tiny_tables() -> (Table, Table) {
        let schema = Schema::new(["title"]).unwrap();
        let mut l = Table::new("l", schema.clone());
        let mut r = Table::new("r", schema);
        for i in 0..4 {
            l.push([format!("left {i}")]).unwrap();
            r.push([format!("right {i}")]).unwrap();
        }
        (l, r)
    }

    fn tiny_dataset() -> Dataset {
        let (l, r) = tiny_tables();
        let pairs = vec![
            CandidatePair::new(RecordId(0), RecordId(0)),
            CandidatePair::new(RecordId(1), RecordId(1)),
            CandidatePair::new(RecordId(2), RecordId(3)),
            CandidatePair::new(RecordId(3), RecordId(2)),
        ];
        let truth = vec![Label::Match, Label::Match, Label::NonMatch, Label::NonMatch];
        let split = Split {
            train: vec![0, 2],
            valid: vec![1],
            test: vec![3],
        };
        Dataset::new("tiny", l, r, pairs, truth, split).unwrap()
    }

    #[test]
    fn construction_validates_label_count() {
        let (l, r) = tiny_tables();
        let pairs = vec![CandidatePair::new(RecordId(0), RecordId(0))];
        let err = Dataset::new(
            "bad",
            l,
            r,
            pairs,
            vec![],
            Split {
                train: vec![0],
                valid: vec![],
                test: vec![],
            },
        );
        assert!(matches!(err, Err(EmError::InconsistentDataset(_))));
    }

    #[test]
    fn construction_validates_record_refs() {
        let (l, r) = tiny_tables();
        let pairs = vec![CandidatePair::new(RecordId(99), RecordId(0))];
        let err = Dataset::new(
            "bad",
            l,
            r,
            pairs,
            vec![Label::Match],
            Split {
                train: vec![0],
                valid: vec![],
                test: vec![],
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn construction_validates_split_cover() {
        let (l, r) = tiny_tables();
        let pairs = vec![
            CandidatePair::new(RecordId(0), RecordId(0)),
            CandidatePair::new(RecordId(1), RecordId(1)),
        ];
        let truth = vec![Label::Match, Label::NonMatch];
        // Split misses pair 1.
        let err = Dataset::new(
            "bad",
            l.clone(),
            r.clone(),
            pairs.clone(),
            truth.clone(),
            Split {
                train: vec![0],
                valid: vec![],
                test: vec![],
            },
        );
        assert!(err.is_err());
        // Split duplicates pair 0.
        let err = Dataset::new(
            "bad",
            l,
            r,
            pairs,
            truth,
            Split {
                train: vec![0, 0],
                valid: vec![],
                test: vec![],
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn stats_match_construction() {
        let d = tiny_dataset();
        let s = d.stats();
        assert_eq!(s.train_size, 2);
        assert_eq!(s.n_attrs, 1);
        assert_eq!(s.total_pairs, 4);
        assert_eq!(s.total_matches, 2);
        assert!((s.train_pos_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn random_split_is_disjoint_cover() {
        let mut rng = Rng::seed_from_u64(1);
        let split = Dataset::random_split(100, SplitRatios::MAGELLAN, &mut rng).unwrap();
        assert_eq!(split.total(), 100);
        let mut all: Vec<_> = split
            .train
            .iter()
            .chain(&split.valid)
            .chain(&split.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        // 3:1:1 over 100 → 60/20/20.
        assert_eq!(split.train.len(), 60);
        assert_eq!(split.valid.len(), 20);
        assert_eq!(split.test.len(), 20);
    }

    #[test]
    fn random_split_rejects_bad_ratios() {
        let mut rng = Rng::seed_from_u64(1);
        let bad = SplitRatios {
            train: 0.0,
            valid: 1.0,
            test: 1.0,
        };
        assert!(Dataset::random_split(10, bad, &mut rng).is_err());
        let neg = SplitRatios {
            train: 1.0,
            valid: -1.0,
            test: 0.0,
        };
        assert!(Dataset::random_split(10, neg, &mut rng).is_err());
    }

    #[test]
    fn pair_records_resolves_both_sides() {
        let d = tiny_dataset();
        let (a, b) = d.pair_records(2).unwrap();
        assert_eq!(a.value(0), Some("left 2"));
        assert_eq!(b.value(0), Some("right 3"));
        assert!(d.pair_records(17).is_err());
    }

    #[test]
    fn ground_truth_of_projects() {
        let d = tiny_dataset();
        assert_eq!(
            d.ground_truth_of(&[0, 3]),
            vec![Label::Match, Label::NonMatch]
        );
    }
}
