//! DITTO-style serialization of records and pairs.
//!
//! The paper (§2.1, following Li et al.'s DITTO) serializes a tuple as a
//! sequence of `[COL] attr [VAL] value` segments and a pair as the two
//! serializations joined by `[SEP]`, with a leading `[CLS]`:
//!
//! > "[CLS] [COL] title [VAL] sims 2 glamour life stuff pack [COL]
//! > manufacturer [VAL] aspyr media [COL] price [VAL] 24.99 [SEP] [COL]
//! > title [VAL] aspyr media inc sims 2 glamour life stuff pack [COL]
//! > manufacturer [VAL] [COL] price [VAL] 23.44"  (Example 3)
//!
//! The serialized string is the matcher's raw input; the featurizer in
//! `em-matcher` hashes its tokens.

use crate::record::{Record, Schema};

/// Special token opening an attribute name segment.
pub const COL: &str = "[COL]";
/// Special token opening an attribute value segment.
pub const VAL: &str = "[VAL]";
/// Special token separating the two records of a pair.
pub const SEP: &str = "[SEP]";
/// Special classification token heading the sequence.
pub const CLS: &str = "[CLS]";

/// Serialize one record against its schema:
/// `[COL] a1 [VAL] v1 [COL] a2 [VAL] v2 …`.
///
/// Missing (empty) values keep their `[COL] attr [VAL]` header with no
/// value tokens, exactly as in the paper's Example 3 (the empty
/// `manufacturer` of the Google record).
pub fn serialize_record(schema: &Schema, record: &Record) -> String {
    let mut out = String::new();
    for (attr, value) in schema.attrs().iter().zip(&record.values) {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(COL);
        out.push(' ');
        out.push_str(attr);
        out.push(' ');
        out.push_str(VAL);
        if !value.is_empty() {
            out.push(' ');
            out.push_str(value);
        }
    }
    out
}

/// Serialize a candidate pair:
/// `[CLS] <left serialization> [SEP] <right serialization>`.
pub fn serialize_pair(
    left_schema: &Schema,
    left: &Record,
    right_schema: &Schema,
    right: &Record,
) -> String {
    let l = serialize_record(left_schema, left);
    let r = serialize_record(right_schema, right);
    let mut out = String::with_capacity(l.len() + r.len() + CLS.len() + SEP.len() + 3);
    out.push_str(CLS);
    out.push(' ');
    out.push_str(&l);
    out.push(' ');
    out.push_str(SEP);
    out.push(' ');
    out.push_str(&r);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RecordId, Schema};

    fn product_schema() -> Schema {
        Schema::new(["title", "manufacturer", "price"]).unwrap()
    }

    /// Reproduces the paper's Example 3 verbatim.
    #[test]
    fn serialize_example3_matches_paper() {
        let schema = product_schema();
        let amazon = Record::new(
            RecordId(0),
            ["sims 2 glamour life stuff pack", "aspyr media", "24.99"],
        );
        let google = Record::new(
            RecordId(1),
            [
                "aspyr media inc sims 2 glamour life stuff pack",
                "",
                "23.44",
            ],
        );
        let got = serialize_pair(&schema, &amazon, &schema, &google);
        let expected = "[CLS] [COL] title [VAL] sims 2 glamour life stuff pack \
                        [COL] manufacturer [VAL] aspyr media [COL] price [VAL] 24.99 \
                        [SEP] [COL] title [VAL] aspyr media inc sims 2 glamour life stuff pack \
                        [COL] manufacturer [VAL] [COL] price [VAL] 23.44";
        assert_eq!(got, expected);
    }

    #[test]
    fn serialize_record_single_attr() {
        let schema = Schema::new(["title"]).unwrap();
        let rec = Record::new(RecordId(0), ["nikon d750"]);
        assert_eq!(
            serialize_record(&schema, &rec),
            "[COL] title [VAL] nikon d750"
        );
    }

    #[test]
    fn serialize_record_all_missing() {
        let schema = product_schema();
        let rec = Record::new(RecordId(0), ["", "", ""]);
        assert_eq!(
            serialize_record(&schema, &rec),
            "[COL] title [VAL] [COL] manufacturer [VAL] [COL] price [VAL]"
        );
    }

    #[test]
    fn pair_serialization_contains_both_sides_and_structure() {
        let schema = Schema::new(["a"]).unwrap();
        let l = Record::new(RecordId(0), ["x"]);
        let r = Record::new(RecordId(0), ["y"]);
        let s = serialize_pair(&schema, &l, &schema, &r);
        assert!(s.starts_with("[CLS] "));
        assert_eq!(s.matches(SEP).count(), 1);
        assert_eq!(s.matches(COL).count(), 2);
        let sep_pos = s.find(SEP).unwrap();
        assert!(s[..sep_pos].contains('x'));
        assert!(s[sep_pos..].contains('y'));
    }
}
