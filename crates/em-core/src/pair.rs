//! Candidate pairs, labels and predictions.
//!
//! The unit the whole system operates on is a *candidate tuple pair*
//! `(r1, r2) ∈ D1 × D2` (paper §2.1), assumed to come out of a blocking
//! phase. Labels are binary: `Match` / `NonMatch`.

use serde::{Deserialize, Serialize};

use crate::record::RecordId;

/// Index of a candidate pair inside a [`crate::Dataset`]'s pair list.
///
/// All pool/train bookkeeping in the active-learning loop is done in terms
/// of `PairIdx` values, never by re-hashing record ids.
pub type PairIdx = usize;

/// A candidate tuple pair produced by blocking.
///
/// Ordered lexicographically by `(left, right)` so blocking outputs can
/// be sorted and deduplicated deterministically regardless of the bucket
/// or thread order that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CandidatePair {
    /// Record in the left table (`D1`).
    pub left: RecordId,
    /// Record in the right table (`D2`).
    pub right: RecordId,
}

impl CandidatePair {
    /// Construct a candidate pair.
    #[inline]
    pub fn new(left: RecordId, right: RecordId) -> Self {
        CandidatePair { left, right }
    }

    /// The pair as a `(left, right)` id tuple — the key used by recall
    /// and dedup bookkeeping in the blocking tier.
    #[inline]
    pub fn key(self) -> (u32, u32) {
        (self.left.0, self.right.0)
    }
}

/// Ground-truth (or oracle-provided) binary label of a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// The two records refer to the same real-world entity.
    Match,
    /// The two records refer to different entities.
    NonMatch,
}

impl Label {
    /// `Label::Match` for `true`.
    #[inline]
    pub fn from_bool(is_match: bool) -> Self {
        if is_match {
            Label::Match
        } else {
            Label::NonMatch
        }
    }

    /// `true` iff this is a match.
    #[inline]
    pub fn is_match(self) -> bool {
        matches!(self, Label::Match)
    }

    /// The 0/1 encoding used in loss computation.
    #[inline]
    pub fn as_f32(self) -> f32 {
        if self.is_match() {
            1.0
        } else {
            0.0
        }
    }

    /// The opposite label.
    #[inline]
    pub fn flipped(self) -> Self {
        match self {
            Label::Match => Label::NonMatch,
            Label::NonMatch => Label::Match,
        }
    }
}

/// A matcher's output for a single pair: the match probability and the
/// thresholded decision.
///
/// The paper extracts both the prediction `ŷ` and the confidence `ϕ(v)`
/// from the matcher each iteration (§3.2); this struct is that pair of
/// values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Model confidence that the pair is a match, in `[0, 1]`.
    pub prob: f32,
    /// Decision at the 0.5 threshold.
    pub label: Label,
}

impl Prediction {
    /// Build a prediction from a probability, thresholding at 0.5.
    #[inline]
    pub fn from_prob(prob: f32) -> Self {
        Prediction {
            prob,
            label: Label::from_bool(prob >= 0.5),
        }
    }

    /// Confidence in the *assigned* label: `prob` for match predictions,
    /// `1 − prob` for non-match predictions.
    ///
    /// This is the `ϕ(v)` the certainty computation (paper Eq. 3) consumes
    /// for unlabeled nodes.
    #[inline]
    pub fn confidence_in_label(&self) -> f32 {
        match self.label {
            Label::Match => self.prob,
            Label::NonMatch => 1.0 - self.prob,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_roundtrips() {
        assert_eq!(Label::from_bool(true), Label::Match);
        assert_eq!(Label::from_bool(false), Label::NonMatch);
        assert!(Label::Match.is_match());
        assert!(!Label::NonMatch.is_match());
        assert_eq!(Label::Match.as_f32(), 1.0);
        assert_eq!(Label::NonMatch.as_f32(), 0.0);
        assert_eq!(Label::Match.flipped(), Label::NonMatch);
        assert_eq!(Label::NonMatch.flipped(), Label::Match);
    }

    #[test]
    fn prediction_threshold() {
        assert_eq!(Prediction::from_prob(0.72).label, Label::Match);
        assert_eq!(Prediction::from_prob(0.5).label, Label::Match);
        assert_eq!(Prediction::from_prob(0.49).label, Label::NonMatch);
    }

    #[test]
    fn confidence_in_label_is_symmetric() {
        let m = Prediction::from_prob(0.9);
        let n = Prediction::from_prob(0.1);
        assert!((m.confidence_in_label() - 0.9).abs() < 1e-6);
        assert!((n.confidence_in_label() - 0.9).abs() < 1e-6);
    }

    #[test]
    fn pair_ordering_is_left_major() {
        let mut pairs = [
            CandidatePair::new(RecordId(2), RecordId(0)),
            CandidatePair::new(RecordId(0), RecordId(5)),
            CandidatePair::new(RecordId(0), RecordId(1)),
            CandidatePair::new(RecordId(1), RecordId(9)),
        ];
        pairs.sort();
        let keys: Vec<_> = pairs.iter().map(|p| p.key()).collect();
        assert_eq!(keys, vec![(0, 1), (0, 5), (1, 9), (2, 0)]);
    }

    #[test]
    fn pair_equality_and_hash() {
        use std::collections::HashSet;
        let a = CandidatePair::new(RecordId(1), RecordId(2));
        let b = CandidatePair::new(RecordId(1), RecordId(2));
        let c = CandidatePair::new(RecordId(2), RecordId(1));
        assert_eq!(a, b);
        assert_ne!(a, c, "pairs are ordered (left table, right table)");
        let set: HashSet<_> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
