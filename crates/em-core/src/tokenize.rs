//! Tokenization and token-level similarity measures.
//!
//! The featurizer (`em-matcher`) and the synthetic blocker (`em-synth`)
//! both view text as lower-cased word tokens; the typo-robust similarity
//! features additionally use character n-grams. Special tokens of the
//! DITTO serialization (`[COL]`, `[VAL]`, …) survive tokenization as
//! single tokens.

use std::collections::BTreeMap;

/// Lower-cased word tokens of `text`.
///
/// Splitting rule: alphanumeric runs are tokens; everything else is a
/// separator, except that bracketed special tokens (`[COL]` etc.) are kept
/// whole. Punctuation inside words (e.g. `d-750`) splits them, mirroring
/// the aggressive normalization common in EM preprocessing pipelines.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '[' {
            // Possible special token: consume until ']' or separator.
            let mut special = String::from('[');
            let mut ok = false;
            for d in chars.by_ref() {
                special.push(d.to_ascii_uppercase());
                if d == ']' {
                    ok = true;
                    break;
                }
                if d.is_whitespace() {
                    break;
                }
            }
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
            if ok {
                tokens.push(special);
            } else {
                // Not a special token: re-tokenize its alphanumeric runs.
                for part in special.split(|ch: char| !ch.is_alphanumeric()) {
                    if !part.is_empty() {
                        tokens.push(part.to_lowercase());
                    }
                }
            }
        } else if c.is_alphanumeric() {
            current.extend(c.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Character n-grams of a token string (over the concatenation with `#`
/// boundary markers), used for typo-robust similarity.
pub fn char_ngrams(text: &str, n: usize) -> Vec<String> {
    assert!(n > 0, "n-gram size must be positive");
    let padded: Vec<char> = std::iter::once('#')
        .chain(text.to_lowercase().chars().filter(|c| !c.is_whitespace()))
        .chain(std::iter::once('#'))
        .collect();
    if padded.len() < n {
        return vec![padded.into_iter().collect()];
    }
    padded.windows(n).map(|w| w.iter().collect()).collect()
}

/// A multiset of tokens with counted occurrences.
///
/// Backed by a `BTreeMap` so iteration order — and therefore every
/// downstream hash/feature computation — is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TokenSet {
    counts: BTreeMap<String, u32>,
    total: u32,
}

impl TokenSet {
    /// Build from any token iterator.
    pub fn from_tokens<S: Into<String>>(tokens: impl IntoIterator<Item = S>) -> Self {
        let mut set = TokenSet::default();
        for t in tokens {
            set.insert(t.into());
        }
        set
    }

    /// Tokenize `text` and collect the tokens.
    pub fn from_text(text: &str) -> Self {
        Self::from_tokens(tokenize(text))
    }

    /// Add one occurrence of `token`.
    pub fn insert(&mut self, token: String) {
        *self.counts.entry(token).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of distinct tokens.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total occurrences.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// `true` iff the multiset is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Occurrences of `token`.
    pub fn count(&self, token: &str) -> u32 {
        self.counts.get(token).copied().unwrap_or(0)
    }

    /// Iterate `(token, count)` in sorted token order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> {
        self.counts.iter().map(|(t, &c)| (t.as_str(), c))
    }

    /// Size of the multiset intersection (min of counts per token).
    pub fn intersection_size(&self, other: &TokenSet) -> u32 {
        // Iterate the smaller map for speed.
        let (small, large) = if self.counts.len() <= other.counts.len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .counts
            .iter()
            .map(|(t, &c)| c.min(large.count(t)))
            .sum()
    }

    /// Size of the multiset union (max of counts per token).
    pub fn union_size(&self, other: &TokenSet) -> u32 {
        self.total + other.total - self.intersection_size(other)
    }
}

/// Multiset Jaccard similarity `|A ∩ B| / |A ∪ B|` in `[0, 1]`.
///
/// Both-empty inputs are defined to be identical (similarity 1).
pub fn jaccard(a: &TokenSet, b: &TokenSet) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection_size(b) as f64;
    let union = a.union_size(b) as f64;
    if union == 0.0 {
        1.0
    } else {
        inter / union
    }
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)` in `[0, 1]`.
///
/// More forgiving than Jaccard when one side is much longer (e.g. the
/// ABT-Buy long-text attribute vs a short title).
pub fn overlap_coefficient(a: &TokenSet, b: &TokenSet) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection_size(b) as f64;
    inter / (a.total().min(b.total()) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits() {
        assert_eq!(
            tokenize("Nikon D-750, 24.3MP!"),
            vec!["nikon", "d", "750", "24", "3mp"]
        );
    }

    #[test]
    fn tokenize_preserves_special_tokens() {
        assert_eq!(
            tokenize("[CLS] [COL] title [VAL] sims 2"),
            vec!["[CLS]", "[COL]", "title", "[VAL]", "sims", "2"]
        );
    }

    #[test]
    fn tokenize_unclosed_bracket_degrades_gracefully() {
        assert_eq!(tokenize("[oops next"), vec!["oops", "next"]);
    }

    #[test]
    fn tokenize_empty() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  ,.;  ").is_empty());
    }

    #[test]
    fn char_ngrams_basic() {
        let grams = char_ngrams("abc", 3);
        assert_eq!(grams, vec!["#ab", "abc", "bc#"]);
    }

    #[test]
    fn char_ngrams_short_string() {
        let grams = char_ngrams("a", 3);
        assert_eq!(grams, vec!["#a#"]);
    }

    #[test]
    fn token_set_counts_multiplicity() {
        let s = TokenSet::from_text("the cat and the hat");
        assert_eq!(s.count("the"), 2);
        assert_eq!(s.count("cat"), 1);
        assert_eq!(s.distinct(), 4);
        assert_eq!(s.total(), 5);
    }

    #[test]
    fn jaccard_identity_and_disjoint() {
        let a = TokenSet::from_text("red fox");
        let b = TokenSet::from_text("red fox");
        let c = TokenSet::from_text("blue bird");
        assert!((jaccard(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(jaccard(&a, &c), 0.0);
    }

    #[test]
    fn jaccard_partial_overlap() {
        let a = TokenSet::from_text("red fox jumps");
        let b = TokenSet::from_text("red fox sleeps");
        // |∩| = 2, |∪| = 4.
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_is_symmetric_and_empty_convention() {
        let a = TokenSet::from_text("x y");
        let e = TokenSet::default();
        assert_eq!(jaccard(&a, &e), 0.0);
        assert_eq!(jaccard(&e, &a), 0.0);
        assert_eq!(jaccard(&e, &e), 1.0);
    }

    #[test]
    fn overlap_coefficient_forgives_length() {
        let short = TokenSet::from_text("nikon d750");
        let long = TokenSet::from_text("nikon d750 full frame dslr camera body only");
        assert!((overlap_coefficient(&short, &long) - 1.0).abs() < 1e-12);
        assert!(jaccard(&short, &long) < 0.5);
    }

    #[test]
    fn multiset_intersection_uses_min_counts() {
        let a = TokenSet::from_tokens(["x", "x", "x", "y"]);
        let b = TokenSet::from_tokens(["x", "y", "y"]);
        assert_eq!(a.intersection_size(&b), 2); // min(3,1) + min(1,2)
        assert_eq!(a.union_size(&b), 5); // max(3,1) + max(1,2)
    }
}
