//! Loading real benchmark data in the Magellan/DeepMatcher layout.
//!
//! The paper's datasets ship as `tableA.csv` / `tableB.csv` plus
//! `train.csv` / `valid.csv` / `test.csv` files of
//! `(ltable_id, rtable_id, label)` rows. This module parses that layout
//! so the library runs on the real corpora when a user has them — the
//! synthetic generator (`em-synth`) is the substitute, not the only
//! path.
//!
//! The CSV parser is self-contained (RFC-4180 quoting: quoted fields,
//! doubled quotes, embedded commas and newlines) — no third-party
//! dependency.

use std::collections::HashMap;
use std::path::Path;

use crate::dataset::{Dataset, Split};
use crate::error::{EmError, Result};
use crate::pair::{CandidatePair, Label};
use crate::record::{RecordId, Schema, Table};

/// Parse one CSV document into rows of fields (RFC-4180).
pub fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => row.push(std::mem::take(&mut field)),
                '\r' => {} // swallow; \n terminates the row
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                _ => field.push(c),
            }
        }
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    rows
}

/// Load a Magellan-format record table: first column `id`, remaining
/// columns are attributes. Returns the table plus the mapping from the
/// file's id column to our positional [`RecordId`]s.
pub fn load_table(path: &Path, name: &str) -> Result<(Table, HashMap<String, RecordId>)> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| EmError::InvalidConfig(format!("cannot read {}: {e}", path.display())))?;
    let rows = parse_csv(&text);
    let header = rows
        .first()
        .ok_or_else(|| EmError::EmptyInput(format!("{} is empty", path.display())))?;
    if header.is_empty() || header[0].to_lowercase() != "id" {
        return Err(EmError::InvalidConfig(format!(
            "{}: first column must be `id`, got {:?}",
            path.display(),
            header.first()
        )));
    }
    let schema = Schema::new(header[1..].iter().cloned())?;
    let n_attrs = schema.len();
    let mut table = Table::new(name, schema);
    let mut id_map = HashMap::with_capacity(rows.len());
    for (line, row) in rows.iter().enumerate().skip(1) {
        if row.iter().all(String::is_empty) {
            continue; // trailing blank line
        }
        if row.len() != n_attrs + 1 {
            return Err(EmError::InvalidConfig(format!(
                "{} line {}: expected {} fields, got {}",
                path.display(),
                line + 1,
                n_attrs + 1,
                row.len()
            )));
        }
        let rid = table.push(row[1..].iter().cloned())?;
        if id_map.insert(row[0].clone(), rid).is_some() {
            return Err(EmError::InconsistentDataset(format!(
                "{}: duplicate id `{}`",
                path.display(),
                row[0]
            )));
        }
    }
    Ok((table, id_map))
}

/// One split file's pairs: `(ltable_id, rtable_id, label)` rows.
fn load_pairs_file(
    path: &Path,
    left_ids: &HashMap<String, RecordId>,
    right_ids: &HashMap<String, RecordId>,
) -> Result<Vec<(CandidatePair, Label)>> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| EmError::InvalidConfig(format!("cannot read {}: {e}", path.display())))?;
    let rows = parse_csv(&text);
    let header = rows
        .first()
        .ok_or_else(|| EmError::EmptyInput(format!("{} is empty", path.display())))?;
    let col = |name: &str| -> Result<usize> {
        header
            .iter()
            .position(|h| h.eq_ignore_ascii_case(name))
            .ok_or_else(|| {
                EmError::InvalidConfig(format!("{}: missing column `{name}`", path.display()))
            })
    };
    let l_col = col("ltable_id")?;
    let r_col = col("rtable_id")?;
    let y_col = col("label")?;
    let mut out = Vec::with_capacity(rows.len());
    for (line, row) in rows.iter().enumerate().skip(1) {
        if row.iter().all(String::is_empty) {
            continue;
        }
        let lookup = |ids: &HashMap<String, RecordId>, key: &str, side: &str| {
            ids.get(key).copied().ok_or_else(|| {
                EmError::InconsistentDataset(format!(
                    "{} line {}: unknown {side} id `{key}`",
                    path.display(),
                    line + 1
                ))
            })
        };
        let l = lookup(left_ids, &row[l_col], "left")?;
        let r = lookup(right_ids, &row[r_col], "right")?;
        let label = match row[y_col].trim() {
            "1" => Label::Match,
            "0" => Label::NonMatch,
            other => {
                return Err(EmError::InvalidConfig(format!(
                    "{} line {}: label `{other}` is not 0/1",
                    path.display(),
                    line + 1
                )))
            }
        };
        out.push((CandidatePair::new(l, r), label));
    }
    Ok(out)
}

/// Load a complete Magellan-layout dataset directory:
/// `tableA.csv`, `tableB.csv`, `train.csv`, `valid.csv`, `test.csv`.
pub fn load_magellan_dir(dir: &Path, name: &str) -> Result<Dataset> {
    let (left, left_ids) = load_table(&dir.join("tableA.csv"), &format!("{name}-left"))?;
    let (right, right_ids) = load_table(&dir.join("tableB.csv"), &format!("{name}-right"))?;
    let mut pairs = Vec::new();
    let mut truth = Vec::new();
    let mut split = Split {
        train: Vec::new(),
        valid: Vec::new(),
        test: Vec::new(),
    };
    for (file, part) in [("train.csv", 0usize), ("valid.csv", 1), ("test.csv", 2)] {
        let loaded = load_pairs_file(&dir.join(file), &left_ids, &right_ids)?;
        for (pair, label) in loaded {
            let idx = pairs.len();
            pairs.push(pair);
            truth.push(label);
            match part {
                0 => split.train.push(idx),
                1 => split.valid.push(idx),
                _ => split.test.push(idx),
            }
        }
    }
    Dataset::new(name, left, right, pairs, truth, split)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_csv_basics() {
        let rows = parse_csv("a,b,c\n1,2,3\n");
        assert_eq!(rows, vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]);
    }

    #[test]
    fn parse_csv_quoting() {
        let rows = parse_csv("id,title\n1,\"sims 2, deluxe\"\n2,\"say \"\"hi\"\"\"\n");
        assert_eq!(rows[1][1], "sims 2, deluxe");
        assert_eq!(rows[2][1], "say \"hi\"");
    }

    #[test]
    fn parse_csv_embedded_newline_and_crlf() {
        let rows = parse_csv("id,notes\r\n1,\"line one\nline two\"\r\n");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][1], "line one\nline two");
    }

    #[test]
    fn parse_csv_no_trailing_newline() {
        let rows = parse_csv("a,b\n1,2");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["1", "2"]);
    }

    fn write(dir: &Path, file: &str, content: &str) {
        std::fs::write(dir.join(file), content).unwrap();
    }

    fn magellan_fixture() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "em-core-csv-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        write(
            &dir,
            "tableA.csv",
            "id,title,price\na1,sims 2 glamour,24.99\na2,other game,9.99\n",
        );
        write(
            &dir,
            "tableB.csv",
            "id,title,price\nb1,\"sims 2, glamour\",23.44\nb2,unrelated,1.00\n",
        );
        write(
            &dir,
            "train.csv",
            "ltable_id,rtable_id,label\na1,b1,1\na2,b2,0\n",
        );
        write(&dir, "valid.csv", "ltable_id,rtable_id,label\na1,b2,0\n");
        write(&dir, "test.csv", "ltable_id,rtable_id,label\na2,b1,0\n");
        dir
    }

    #[test]
    fn load_magellan_roundtrip() {
        let dir = magellan_fixture();
        let d = load_magellan_dir(&dir, "toy").unwrap();
        assert_eq!(d.len(), 4);
        assert_eq!(d.split().train.len(), 2);
        assert_eq!(d.split().valid.len(), 1);
        assert_eq!(d.split().test.len(), 1);
        assert_eq!(d.left.schema.attrs(), &["title", "price"]);
        assert_eq!(d.ground_truth(0), Label::Match);
        let (l, r) = d.pair_records(0).unwrap();
        assert_eq!(l.value(0), Some("sims 2 glamour"));
        assert_eq!(r.value(0), Some("sims 2, glamour"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_unknown_ids_and_bad_labels() {
        let dir = magellan_fixture();
        write(&dir, "train.csv", "ltable_id,rtable_id,label\nzz,b1,1\n");
        assert!(load_magellan_dir(&dir, "toy").is_err());
        write(
            &dir,
            "train.csv",
            "ltable_id,rtable_id,label\na1,b1,maybe\n",
        );
        assert!(load_magellan_dir(&dir, "toy").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_table_validates_header_and_arity() {
        let dir = magellan_fixture();
        write(&dir, "tableA.csv", "name,title\nx,y\n");
        assert!(load_magellan_dir(&dir, "toy").is_err());
        write(&dir, "tableA.csv", "id,title,price\na1,only-two\n");
        assert!(load_magellan_dir(&dir, "toy").is_err());
        write(&dir, "tableA.csv", "id,title,price\na1,t,1\na1,t,2\n");
        assert!(load_magellan_dir(&dir, "toy").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
