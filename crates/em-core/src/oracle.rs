//! Labeling oracles.
//!
//! Active learning sends selected pairs to an oracle for labeling (§2.2).
//! "Similar to previous works, we assume the existence of a perfect
//! labeling oracle, recognizing that in real-world settings a labeler
//! might be exposed to biases" (§3.6) — [`PerfectOracle`] implements the
//! paper's assumption; [`NoisyOracle`] implements the acknowledged
//! real-world deviation so robustness to label noise can be studied.
//!
//! Oracles count their queries, which is how experiment budgets are
//! audited: a strategy cannot cheat its labeling budget without the count
//! exposing it.

use std::cell::Cell;

use crate::dataset::Dataset;
use crate::pair::{Label, PairIdx};
use crate::rng::Rng;

/// A source of labels for candidate pairs, with query accounting.
pub trait Oracle {
    /// Label pair `idx`, incrementing the query counter.
    fn label(&self, dataset: &Dataset, idx: PairIdx) -> Label;

    /// Number of labels served so far.
    fn queries(&self) -> usize;
}

/// The paper's perfect oracle: returns ground truth.
#[derive(Debug, Default)]
pub struct PerfectOracle {
    queries: Cell<usize>,
}

impl PerfectOracle {
    /// Fresh oracle with a zeroed query counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Oracle for PerfectOracle {
    fn label(&self, dataset: &Dataset, idx: PairIdx) -> Label {
        self.queries.set(self.queries.get() + 1);
        dataset.ground_truth(idx)
    }

    fn queries(&self) -> usize {
        self.queries.get()
    }
}

/// An oracle that flips each label independently with probability
/// `flip_prob` — a simple model of annotator error.
///
/// The flip decision is a deterministic function of the pair index and the
/// oracle's seed, so repeated queries for the same pair return the same
/// (possibly wrong) label, like a consistent but fallible annotator.
#[derive(Debug)]
pub struct NoisyOracle {
    flip_prob: f64,
    seed: u64,
    queries: Cell<usize>,
}

impl NoisyOracle {
    /// Create a noisy oracle; `flip_prob` must be in `[0, 1]`.
    pub fn new(flip_prob: f64, seed: u64) -> crate::Result<Self> {
        if !(0.0..=1.0).contains(&flip_prob) {
            return Err(crate::EmError::InvalidConfig(format!(
                "flip_prob must be in [0,1], got {flip_prob}"
            )));
        }
        Ok(NoisyOracle {
            flip_prob,
            seed,
            queries: Cell::new(0),
        })
    }
}

impl Oracle for NoisyOracle {
    fn label(&self, dataset: &Dataset, idx: PairIdx) -> Label {
        self.queries.set(self.queries.get() + 1);
        let truth = dataset.ground_truth(idx);
        // Per-pair deterministic coin: hash (seed, idx) into a fresh RNG.
        let mut rng = Rng::seed_from_u64(self.seed ^ (idx as u64).wrapping_mul(0x2545F4914F6CDD1D));
        if rng.bool(self.flip_prob) {
            truth.flipped()
        } else {
            truth
        }
    }

    fn queries(&self) -> usize {
        self.queries.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Split, SplitRatios};
    use crate::pair::CandidatePair;
    use crate::record::{RecordId, Schema, Table};

    fn dataset() -> Dataset {
        let schema = Schema::new(["t"]).unwrap();
        let mut l = Table::new("l", schema.clone());
        let mut r = Table::new("r", schema);
        for i in 0..10 {
            l.push([format!("a{i}")]).unwrap();
            r.push([format!("b{i}")]).unwrap();
        }
        let pairs: Vec<_> = (0..10u32)
            .map(|i| CandidatePair::new(RecordId(i), RecordId(i)))
            .collect();
        let truth: Vec<_> = (0..10).map(|i| Label::from_bool(i % 2 == 0)).collect();
        let mut rng = Rng::seed_from_u64(0);
        let split = Dataset::random_split(10, SplitRatios::MAGELLAN, &mut rng).unwrap();
        let _ = Split {
            train: vec![],
            valid: vec![],
            test: vec![],
        };
        Dataset::new("d", l, r, pairs, truth, split).unwrap()
    }

    #[test]
    fn perfect_oracle_returns_truth_and_counts() {
        let d = dataset();
        let o = PerfectOracle::new();
        for i in 0..10 {
            assert_eq!(o.label(&d, i), d.ground_truth(i));
        }
        assert_eq!(o.queries(), 10);
    }

    #[test]
    fn noisy_oracle_zero_noise_is_perfect() {
        let d = dataset();
        let o = NoisyOracle::new(0.0, 7).unwrap();
        for i in 0..10 {
            assert_eq!(o.label(&d, i), d.ground_truth(i));
        }
    }

    #[test]
    fn noisy_oracle_full_noise_always_flips() {
        let d = dataset();
        let o = NoisyOracle::new(1.0, 7).unwrap();
        for i in 0..10 {
            assert_eq!(o.label(&d, i), d.ground_truth(i).flipped());
        }
    }

    #[test]
    fn noisy_oracle_is_consistent_per_pair() {
        let d = dataset();
        let o = NoisyOracle::new(0.5, 99).unwrap();
        for i in 0..10 {
            let first = o.label(&d, i);
            for _ in 0..5 {
                assert_eq!(o.label(&d, i), first);
            }
        }
        assert_eq!(o.queries(), 60);
    }

    #[test]
    fn noisy_oracle_rejects_bad_prob() {
        assert!(NoisyOracle::new(-0.1, 0).is_err());
        assert!(NoisyOracle::new(1.1, 0).is_err());
    }
}
