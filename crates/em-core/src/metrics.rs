//! Evaluation metrics.
//!
//! The paper reports F1 on a held-out test set (Figure 5, Table 4) and the
//! area under the F1-vs-labeled-samples curve (Table 5, following Baram et
//! al.). This module implements both, plus the confusion-matrix plumbing
//! and small statistical helpers used in reports.

use serde::{Deserialize, Serialize};

use crate::error::{EmError, Result};
use crate::pair::Label;

/// Binary confusion counts with `Match` as the positive class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryConfusion {
    /// Predicted match, truly match.
    pub tp: usize,
    /// Predicted match, truly non-match.
    pub fp: usize,
    /// Predicted non-match, truly non-match.
    pub tn: usize,
    /// Predicted non-match, truly match.
    pub fn_: usize,
}

impl BinaryConfusion {
    /// Tally predictions against ground truth. Lengths must agree.
    pub fn from_labels(predicted: &[Label], truth: &[Label]) -> Result<Self> {
        if predicted.len() != truth.len() {
            return Err(EmError::DimensionMismatch {
                context: "confusion matrix inputs".into(),
                expected: truth.len(),
                actual: predicted.len(),
            });
        }
        let mut c = BinaryConfusion::default();
        for (&p, &t) in predicted.iter().zip(truth) {
            match (p.is_match(), t.is_match()) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        Ok(c)
    }

    /// Record one observation.
    pub fn observe(&mut self, predicted: Label, truth: Label) {
        match (predicted.is_match(), truth.is_match()) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Derived precision/recall/F1/accuracy.
    pub fn metrics(&self) -> Metrics {
        let precision = if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        };
        let recall = if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        let accuracy = if self.total() == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / self.total() as f64
        };
        Metrics {
            precision,
            recall,
            f1,
            accuracy,
        }
    }
}

/// Precision, recall, F1 and accuracy, all in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// `tp / (tp + fp)`; 0 when no positive predictions.
    pub precision: f64,
    /// `tp / (tp + fn)`; 0 when no true positives exist.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Fraction of correct decisions.
    pub accuracy: f64,
}

impl Metrics {
    /// F1 as the percentage the paper's tables print (e.g. `77.98`).
    pub fn f1_pct(&self) -> f64 {
        self.f1 * 100.0
    }
}

/// An F1 learning curve: (cumulative labeled samples, F1 %) points.
///
/// Table 5 summarizes each method by the area under this curve, "calculated
/// against the F1 plot" — i.e. trapezoidal integration over the
/// labeled-samples axis with F1 in percent.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct F1Curve {
    points: Vec<(f64, f64)>,
}

impl F1Curve {
    /// Empty curve.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from explicit points; x must be non-decreasing.
    pub fn from_points(points: Vec<(f64, f64)>) -> Result<Self> {
        for w in points.windows(2) {
            if w[1].0 < w[0].0 {
                return Err(EmError::InvalidConfig(
                    "F1 curve x-axis must be non-decreasing".into(),
                ));
            }
        }
        Ok(F1Curve { points })
    }

    /// Append a `(labeled samples, F1 %)` point.
    ///
    /// Errors if the x value moves backwards.
    pub fn push(&mut self, labeled: f64, f1_pct: f64) -> Result<()> {
        if let Some(&(last, _)) = self.points.last() {
            if labeled < last {
                return Err(EmError::InvalidConfig(format!(
                    "F1 curve x went backwards: {labeled} after {last}"
                )));
            }
        }
        self.points.push((labeled, f1_pct));
        Ok(())
    }

    /// The raw points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Trapezoidal area under the curve over the labeled-samples axis,
    /// normalized by 100 labeled samples per unit — this reproduces the
    /// magnitude of the paper's Table 5 values (hundreds, e.g. 491.15 for
    /// an 8-iteration run ending at 900 labels).
    pub fn auc(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| {
                let (x0, y0) = w[0];
                let (x1, y1) = w[1];
                (x1 - x0) * (y0 + y1) / 2.0
            })
            .sum::<f64>()
            / 100.0
    }

    /// F1 (%) at the largest x not exceeding `labeled`, if any point
    /// qualifies. Used to read "F1 @ 500 labels" off a curve (Table 4).
    pub fn f1_at(&self, labeled: f64) -> Option<f64> {
        self.points
            .iter()
            .take_while(|(x, _)| *x <= labeled)
            .last()
            .map(|&(_, y)| y)
    }

    /// Final F1 (%) of the curve.
    pub fn final_f1(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation (0 for fewer than two samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_tallies_all_cells() {
        let pred = vec![Label::Match, Label::Match, Label::NonMatch, Label::NonMatch];
        let truth = vec![Label::Match, Label::NonMatch, Label::Match, Label::NonMatch];
        let c = BinaryConfusion::from_labels(&pred, &truth).unwrap();
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (1, 1, 1, 1));
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn confusion_length_mismatch() {
        let e = BinaryConfusion::from_labels(&[Label::Match], &[]);
        assert!(e.is_err());
    }

    #[test]
    fn perfect_prediction_metrics() {
        let truth = vec![Label::Match, Label::NonMatch, Label::Match];
        let c = BinaryConfusion::from_labels(&truth, &truth).unwrap();
        let m = c.metrics();
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.accuracy, 1.0);
    }

    #[test]
    fn all_negative_predictions_give_zero_f1() {
        let pred = vec![Label::NonMatch; 4];
        let truth = vec![Label::Match, Label::Match, Label::NonMatch, Label::NonMatch];
        let m = BinaryConfusion::from_labels(&pred, &truth)
            .unwrap()
            .metrics();
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
        assert_eq!(m.accuracy, 0.5);
    }

    #[test]
    fn known_f1_value() {
        // tp=3, fp=1, fn=2 → P=0.75, R=0.6, F1=2*0.45/1.35 = 2/3.
        let c = BinaryConfusion {
            tp: 3,
            fp: 1,
            tn: 10,
            fn_: 2,
        };
        let m = c.metrics();
        assert!((m.precision - 0.75).abs() < 1e-12);
        assert!((m.recall - 0.6).abs() < 1e-12);
        assert!((m.f1 - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1_pct() - 100.0 * 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn observe_matches_batch() {
        let pred = vec![Label::Match, Label::NonMatch, Label::Match];
        let truth = vec![Label::NonMatch, Label::NonMatch, Label::Match];
        let batch = BinaryConfusion::from_labels(&pred, &truth).unwrap();
        let mut inc = BinaryConfusion::default();
        for (&p, &t) in pred.iter().zip(&truth) {
            inc.observe(p, t);
        }
        assert_eq!(batch, inc);
    }

    #[test]
    fn f1_curve_auc_rectangle() {
        // Constant 50% over 100..900 labels → area 50 * 800 / 100 = 400.
        let mut c = F1Curve::new();
        c.push(100.0, 50.0).unwrap();
        c.push(900.0, 50.0).unwrap();
        assert!((c.auc() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn f1_curve_auc_trapezoid() {
        let mut c = F1Curve::new();
        c.push(0.0, 0.0).unwrap();
        c.push(100.0, 100.0).unwrap();
        assert!((c.auc() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn f1_curve_rejects_backwards_x() {
        let mut c = F1Curve::new();
        c.push(100.0, 10.0).unwrap();
        assert!(c.push(50.0, 20.0).is_err());
        assert!(F1Curve::from_points(vec![(2.0, 1.0), (1.0, 1.0)]).is_err());
    }

    #[test]
    fn f1_at_reads_step_values() {
        let c = F1Curve::from_points(vec![(100.0, 30.0), (500.0, 60.0), (900.0, 70.0)]).unwrap();
        assert_eq!(c.f1_at(99.0), None);
        assert_eq!(c.f1_at(100.0), Some(30.0));
        assert_eq!(c.f1_at(500.0), Some(60.0));
        assert_eq!(c.f1_at(899.0), Some(60.0));
        assert_eq!(c.f1_at(2000.0), Some(70.0));
        assert_eq!(c.final_f1(), Some(70.0));
    }

    #[test]
    fn mean_and_std_dev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }
}
