//! Index-based membership test over dense id spaces.
//!
//! Several layers of the workspace repeatedly need "is id `i` in this
//! set?" for sets they just built (a drawn seed, the unlabeled pool, an
//! iteration's selections). Rebuilding a `HashSet` for each is a
//! hash-table construction per set over id spaces of up to hundreds of
//! thousands of entries. [`Membership`] is the classic stamped-set
//! alternative: one `u32` stamp per id for the lifetime of the
//! structure, [`Membership::begin`] opens a new (empty) set in O(1) by
//! bumping the generation counter, and [`Membership::insert`] /
//! [`Membership::contains`] are single array accesses.

use serde::{Deserialize, Serialize};

/// A reusable O(1)-reset membership set over ids `0..capacity`.
///
/// Out-of-range ids are handled gracefully: `insert` ignores them and
/// `contains` reports `false`, so callers iterating mixed id sources
/// never index out of bounds.
///
/// `Membership` is `serde`-serializable so loop state that embeds one
/// (e.g. a battleship `MatchSession` checkpoint) round-trips with its
/// current set intact — stamps and the generation counter are persisted
/// together, so membership answers are identical after restore.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Membership {
    stamp: Vec<u32>,
    generation: u32,
}

impl Membership {
    /// All-empty membership over ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        // Stamps start at 0 and the generation at 1, so a fresh set is
        // empty even before the first `begin`.
        Membership {
            stamp: vec![0; capacity],
            generation: 1,
        }
    }

    /// Number of ids the set can hold (`0..capacity`).
    pub fn capacity(&self) -> usize {
        self.stamp.len()
    }

    /// Start a fresh (empty) set, invalidating all previous inserts.
    ///
    /// O(1) except once every `u32::MAX − 1` generations, when the stamp
    /// vector is rewritten so stale stamps from the previous cycle can
    /// never alias the restarted generation counter.
    pub fn begin(&mut self) {
        if self.generation == u32::MAX {
            self.stamp.fill(0);
            self.generation = 1;
        } else {
            self.generation += 1;
        }
    }

    /// Add `i` to the current set; out-of-range ids are ignored.
    pub fn insert(&mut self, i: usize) {
        if let Some(s) = self.stamp.get_mut(i) {
            *s = self.generation;
        }
    }

    /// Whether `i` is in the current set (out-of-range ids are not).
    pub fn contains(&self, i: usize) -> bool {
        self.stamp.get(i).is_some_and(|&s| s == self.generation)
    }

    /// Encode the structure (stamps + generation) as a checksummed
    /// binary frame; [`Membership::from_bytes`] restores a set with
    /// identical membership answers. Stamps are varint-encoded: a
    /// session's generation counter stays small, so the common stamp is
    /// one byte on the wire.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = crate::codec::ByteWriter::with_capacity(self.stamp.len() + 16);
        w.put_varint(self.generation as u64);
        w.put_varint(self.stamp.len() as u64);
        for &s in &self.stamp {
            w.put_varint(s as u64);
        }
        crate::codec::write_frame(MEMBERSHIP_MAGIC, MEMBERSHIP_VERSION, w.as_slice())
    }

    /// Decode a frame written by [`Membership::to_bytes`]; corruption is
    /// a structured [`crate::EmError::Codec`], never a panic.
    pub fn from_bytes(bytes: &[u8]) -> crate::Result<Membership> {
        let payload =
            crate::codec::read_frame(bytes, MEMBERSHIP_MAGIC, MEMBERSHIP_VERSION, "Membership")?;
        let mut r = crate::codec::ByteReader::new(payload, "Membership");
        let stamp32 = |v: u64| {
            u32::try_from(v)
                .map_err(|_| crate::EmError::Codec(format!("Membership: stamp {v} exceeds u32")))
        };
        let generation = stamp32(r.get_varint()?)?;
        let n = r.get_varint_usize()?;
        if n > r.remaining() {
            return Err(crate::EmError::Codec(format!(
                "Membership: corrupt stamp count {n} with {} bytes remaining",
                r.remaining()
            )));
        }
        let stamp = (0..n)
            .map(|_| stamp32(r.get_varint()?))
            .collect::<crate::Result<Vec<u32>>>()?;
        r.finish()?;
        if generation == 0 {
            return Err(crate::EmError::Codec(
                "Membership: generation 0 is never live (fresh sets start at 1)".into(),
            ));
        }
        Ok(Membership { stamp, generation })
    }
}

/// Binary frame magic for [`Membership`].
const MEMBERSHIP_MAGIC: [u8; 4] = *b"EMMB";
/// Binary format version for [`Membership`].
const MEMBERSHIP_VERSION: u8 = 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_set_is_empty() {
        let m = Membership::new(4);
        assert_eq!(m.capacity(), 4);
        for i in 0..4 {
            assert!(!m.contains(i));
        }
    }

    #[test]
    fn insert_begin_insert_cycles() {
        let mut m = Membership::new(8);
        m.insert(3);
        m.insert(5);
        assert!(m.contains(3) && m.contains(5) && !m.contains(4));
        m.begin();
        assert!(!m.contains(3) && !m.contains(5));
        m.insert(4);
        assert!(m.contains(4) && !m.contains(3));
    }

    #[test]
    fn out_of_range_ids_are_inert() {
        let mut m = Membership::new(3);
        m.insert(3);
        m.insert(usize::MAX);
        assert!(!m.contains(3));
        assert!(!m.contains(usize::MAX));
        // In-range behavior is unaffected by the ignored inserts.
        m.insert(2);
        assert!(m.contains(2));
    }

    #[test]
    fn zero_capacity_set_never_contains() {
        let mut m = Membership::new(0);
        m.insert(0);
        assert!(!m.contains(0));
        m.begin();
        assert!(!m.contains(0));
    }

    #[test]
    fn generation_rollover_clears_stale_stamps() {
        let mut m = Membership::new(4);
        m.insert(1);
        // Force the counter to the wrap point: stamps written in earlier
        // generations must not reappear once the counter restarts.
        m.generation = u32::MAX;
        m.insert(2); // stamped u32::MAX
        assert!(m.contains(2) && !m.contains(1));
        m.begin(); // wraps: stamps cleared, generation restarts at 1
        assert!(!m.contains(1) && !m.contains(2));
        m.insert(0);
        assert!(m.contains(0));
        // A stamp surviving from before the wrap (value 0 after the
        // fill) can never equal the restarted generation.
        m.begin();
        assert!(!m.contains(0));
    }

    #[test]
    fn serde_roundtrip_preserves_current_set() {
        let mut m = Membership::new(6);
        m.insert(1);
        m.begin();
        m.insert(2);
        m.insert(4);
        let json = serde_json::to_string(&m).unwrap();
        let back: Membership = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.capacity(), 6);
        for i in 0..6 {
            assert_eq!(back.contains(i), m.contains(i), "id {i}");
        }
        // The restored generation counter keeps advancing correctly.
        let mut back = back;
        back.begin();
        assert!(!back.contains(2) && !back.contains(4));
    }

    #[test]
    fn binary_roundtrip_preserves_current_set() {
        let mut m = Membership::new(6);
        m.insert(1);
        m.begin();
        m.insert(2);
        m.insert(4);
        let bytes = m.to_bytes();
        let back = Membership::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
        for i in 0..6 {
            assert_eq!(back.contains(i), m.contains(i), "id {i}");
        }
        // Corruption and zero generations are structured errors.
        assert!(Membership::from_bytes(&bytes[..bytes.len() - 2]).is_err());
        let mut bad = bytes.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert!(Membership::from_bytes(&bad).is_err());
    }

    #[test]
    fn rollover_preserves_capacity() {
        let mut m = Membership::new(2);
        m.generation = u32::MAX;
        m.begin();
        assert_eq!(m.capacity(), 2);
        m.insert(1);
        assert!(m.contains(1));
    }
}
