//! Deterministic, splittable pseudo-random number generation.
//!
//! Every stochastic component in the workspace (dataset generation, network
//! initialisation, mini-batch shuffling, residual budget allocation, ...)
//! draws from this generator so that an entire experiment is reproducible
//! from a single `u64` seed, as the paper's evaluation protocol requires
//! ("we report the average F1 values, calculated over 3 different seeds",
//! §4.2).
//!
//! The implementation is `xoshiro256**` seeded through `SplitMix64`, the
//! combination recommended by the xoshiro authors. We implement it locally
//! rather than pulling in `rand` so the whole workspace has a single,
//! stable, versioned source of randomness: an upgrade of an external crate
//! can never silently change experiment outputs.

use serde::{Deserialize, Serialize};

/// SplitMix64 step — used for seeding and for cheap stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded `xoshiro256**` generator.
///
/// Not cryptographically secure; statistically excellent and extremely fast,
/// which is what simulation workloads need.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f64>,
}

/// The complete serializable state of an [`Rng`].
///
/// Checkpointing a long-running consumer (e.g. a
/// battleship `MatchSession`) requires persisting the generator
/// mid-stream and resuming it bit-identically: [`Rng::state`] captures
/// everything the next draw depends on (the four `xoshiro256**` words
/// and the cached Box–Muller spare) and [`Rng::from_state`] rebuilds a
/// generator that continues the exact same stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RngState {
    /// The `xoshiro256**` state words (always 4; a `Vec` for portable
    /// serialization).
    pub s: Vec<u64>,
    /// Cached second output of the Box–Muller transform, if any.
    pub gauss_spare: Option<f64>,
}

/// Binary frame magic for [`RngState`].
const RNG_MAGIC: [u8; 4] = *b"EMRG";
/// Binary format version for [`RngState`].
const RNG_VERSION: u8 = 1;

impl RngState {
    /// Encode the state as a checksummed binary frame
    /// (see [`crate::codec`]). [`RngState::from_bytes`] restores a state
    /// that continues the exact same stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = crate::codec::ByteWriter::with_capacity(48);
        w.put_u64s(&self.s);
        w.put_opt_f64(self.gauss_spare);
        crate::codec::write_frame(RNG_MAGIC, RNG_VERSION, w.as_slice())
    }

    /// Decode a frame written by [`RngState::to_bytes`]. Corruption of
    /// any kind (truncation, bit flips, bad magic/version) is a
    /// structured [`crate::EmError::Codec`], never a panic.
    pub fn from_bytes(bytes: &[u8]) -> crate::Result<RngState> {
        let payload = crate::codec::read_frame(bytes, RNG_MAGIC, RNG_VERSION, "RngState")?;
        let mut r = crate::codec::ByteReader::new(payload, "RngState");
        let s = r.get_u64s()?;
        let gauss_spare = r.get_opt_f64()?;
        r.finish()?;
        Ok(RngState { s, gauss_spare })
    }
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    ///
    /// Two generators created from the same seed produce identical streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            gauss_spare: None,
        }
    }

    /// Capture the generator's complete state for checkpointing.
    pub fn state(&self) -> RngState {
        RngState {
            s: self.s.to_vec(),
            gauss_spare: self.gauss_spare,
        }
    }

    /// Rebuild a generator from a captured state.
    ///
    /// The result continues the exact output stream of the generator
    /// [`Rng::state`] was called on. Errors if the state words are
    /// malformed (wrong arity or all-zero, which `xoshiro256**` cannot
    /// escape from).
    pub fn from_state(state: &RngState) -> crate::Result<Rng> {
        let s: [u64; 4] = state.s.as_slice().try_into().map_err(|_| {
            crate::EmError::InvalidConfig(format!(
                "RngState needs exactly 4 state words, got {}",
                state.s.len()
            ))
        })?;
        if s == [0; 4] {
            return Err(crate::EmError::InvalidConfig(
                "RngState of all zeros is not a valid xoshiro256** state".into(),
            ));
        }
        Ok(Rng {
            s,
            gauss_spare: state.gauss_spare,
        })
    }

    /// Derive an independent child generator.
    ///
    /// `fork` lets one seed drive many logically-independent consumers
    /// (e.g. per-dataset, per-iteration, per-strategy) without their draw
    /// counts interfering with each other.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let base = self.next_u64();
        Rng::seed_from_u64(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 top bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method (unbiased).
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "Rng::below called with bound 0");
        let bound = bound as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as usize;
            }
            // Rejected a biased sample; retry (rare unless bound ~ 2^64).
        }
    }

    /// Uniform integer in `[lo, hi)`. Requires `lo < hi`.
    #[inline]
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi, "Rng::range requires lo < hi");
        lo + self.below(hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal draw (Box–Muller, caches the second output).
    pub fn normal(&mut self) -> f64 {
        if let Some(spare) = self.gauss_spare.take() {
            return spare;
        }
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.gauss_spare = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Normal draw with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Uniformly choose a reference from a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "Rng::choose on empty slice");
        &xs[self.below(xs.len())]
    }

    /// Sample `k` distinct indices from `[0, n)` without replacement.
    ///
    /// Returns all of `0..n` (shuffled) when `k >= n`. Uses a partial
    /// Fisher–Yates so the cost is `O(n)` memory but `O(k)` swaps.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.range(i, n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Weighted index draw proportional to the non-negative `weights`.
    ///
    /// Returns `None` when all weights are zero (or the slice is empty).
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            target -= w;
            if target <= 0.0 {
                return Some(i);
            }
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|&w| w > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(
            same < 4,
            "seeds 1 and 2 produced {same} collisions in 64 draws"
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_respects_bound_and_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.below(10)] += 1;
        }
        for &c in &counts {
            assert!((8_500..11_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(5);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(9);
        let mut xs: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "shuffle was identity");
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = Rng::seed_from_u64(13);
        let sample = rng.sample_indices(50, 20);
        assert_eq!(sample.len(), 20);
        let mut uniq = sample.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 20);
        assert!(sample.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_indices_k_ge_n_returns_all() {
        let mut rng = Rng::seed_from_u64(17);
        let mut sample = rng.sample_indices(5, 99);
        sample.sort_unstable();
        assert_eq!(sample, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut rng = Rng::seed_from_u64(19);
        let weights = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > 8 * counts[0] / 2, "{counts:?}");
    }

    #[test]
    fn weighted_index_all_zero_is_none() {
        let mut rng = Rng::seed_from_u64(23);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
        assert_eq!(rng.weighted_index(&[]), None);
    }

    #[test]
    fn fork_creates_independent_streams() {
        let mut parent = Rng::seed_from_u64(29);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let collisions = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(collisions < 4);
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut rng = Rng::seed_from_u64(37);
        // Burn some draws, including a normal() so the Box–Muller spare
        // is populated when the state is captured.
        for _ in 0..17 {
            rng.next_u64();
        }
        let _ = rng.normal();
        let state = rng.state();
        let mut resumed = Rng::from_state(&state).unwrap();
        for _ in 0..64 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
        // The cached spare must survive too: both generators return it
        // on the next normal() without consuming uniforms.
        assert_eq!(rng.normal().to_bits(), resumed.normal().to_bits());
        for _ in 0..8 {
            assert_eq!(rng.normal().to_bits(), resumed.normal().to_bits());
        }
    }

    #[test]
    fn state_binary_roundtrip_continues_stream() {
        let mut rng = Rng::seed_from_u64(41);
        for _ in 0..9 {
            rng.next_u64();
        }
        let _ = rng.normal(); // populate the Box–Muller spare
        let state = rng.state();
        let bytes = state.to_bytes();
        let back = RngState::from_bytes(&bytes).unwrap();
        assert_eq!(back, state);
        let mut resumed = Rng::from_state(&back).unwrap();
        assert_eq!(rng.normal().to_bits(), resumed.normal().to_bits());
        for _ in 0..32 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
        // Corruption is a structured error.
        assert!(RngState::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut bad = bytes.clone();
        bad[10] ^= 0x40;
        assert!(RngState::from_bytes(&bad).is_err());
    }

    #[test]
    fn state_rejects_malformed_words() {
        assert!(Rng::from_state(&RngState {
            s: vec![1, 2, 3],
            gauss_spare: None,
        })
        .is_err());
        assert!(Rng::from_state(&RngState {
            s: vec![0; 4],
            gauss_spare: None,
        })
        .is_err());
    }

    #[test]
    fn fork_is_deterministic() {
        let mut p1 = Rng::seed_from_u64(31);
        let mut p2 = Rng::seed_from_u64(31);
        let mut a = p1.fork(7);
        let mut b = p2.fork(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
