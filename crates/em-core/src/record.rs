//! Records, schemas and tables.
//!
//! The paper follows the clean–clean entity matching formulation (§2.1):
//! two datasets `D1`, `D2` of entities, each tuple structured as a set of
//! attribute–value pairs `{(Attr_i, Val_i)}`. This module provides that
//! relational layer. Missing values are represented as empty strings, which
//! matches how the Magellan/WDC benchmarks serialize absent attributes
//! (see Example 3 in the paper, where `manufacturer` is empty).

use serde::{Deserialize, Serialize};

use crate::error::{EmError, Result};

/// Identifies a record within one side (table) of a dataset.
///
/// Stored as `u32`: the candidate sets in the paper's benchmarks are in the
/// thousands-to-tens-of-thousands range, and halving the footprint of ids
/// keeps pair lists cache-friendly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RecordId(pub u32);

impl RecordId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An ordered list of attribute names shared by all records of a table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attrs: Vec<String>,
}

impl Schema {
    /// Build a schema from attribute names. Names must be unique.
    pub fn new<S: Into<String>>(attrs: impl IntoIterator<Item = S>) -> Result<Self> {
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        if attrs.is_empty() {
            return Err(EmError::EmptyInput("schema attributes".into()));
        }
        let mut seen = std::collections::HashSet::new();
        for a in &attrs {
            if !seen.insert(a.as_str()) {
                return Err(EmError::InvalidConfig(format!(
                    "duplicate attribute name `{a}` in schema"
                )));
            }
        }
        Ok(Schema { attrs })
    }

    /// Number of attributes.
    #[inline]
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// `true` iff the schema has no attributes (unreachable via `new`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Attribute names in declaration order.
    #[inline]
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Position of an attribute by name.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a == name)
    }
}

/// A tuple: one value per schema attribute (empty string = missing).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Identifier unique within the owning table.
    pub id: RecordId,
    /// Attribute values, aligned with the table schema.
    pub values: Vec<String>,
}

impl Record {
    /// Build a record; values must align with the intended schema length.
    pub fn new<S: Into<String>>(id: RecordId, values: impl IntoIterator<Item = S>) -> Self {
        Record {
            id,
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Value at attribute position `i`, if present.
    #[inline]
    pub fn value(&self, i: usize) -> Option<&str> {
        self.values.get(i).map(String::as_str)
    }

    /// Concatenation of all values separated by single spaces.
    ///
    /// Used for whole-record similarity features and blocking keys.
    pub fn full_text(&self) -> String {
        let mut out = String::with_capacity(self.values.iter().map(|v| v.len() + 1).sum());
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 && !v.is_empty() && !out.is_empty() {
                out.push(' ');
            }
            out.push_str(v);
        }
        out
    }
}

/// One side of a clean–clean matching task: a named, schema-ful collection
/// of records indexed by position (`RecordId(i)` is the record at index
/// `i`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Human-readable table name (e.g. `"amazon"`).
    pub name: String,
    /// Shared attribute schema.
    pub schema: Schema,
    records: Vec<Record>,
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            records: Vec::new(),
        }
    }

    /// Append a record built from values; returns the assigned id.
    ///
    /// Errors if the number of values does not match the schema.
    pub fn push<S: Into<String>>(
        &mut self,
        values: impl IntoIterator<Item = S>,
    ) -> Result<RecordId> {
        let id = RecordId(self.records.len() as u32);
        let rec = Record::new(id, values);
        if rec.values.len() != self.schema.len() {
            return Err(EmError::DimensionMismatch {
                context: format!("record values for table `{}`", self.name),
                expected: self.schema.len(),
                actual: rec.values.len(),
            });
        }
        self.records.push(rec);
        Ok(id)
    }

    /// Number of records.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` iff the table holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Record lookup by id.
    pub fn get(&self, id: RecordId) -> Result<&Record> {
        self.records
            .get(id.index())
            .ok_or_else(|| EmError::IndexOutOfBounds {
                context: format!("table `{}`", self.name),
                index: id.index(),
                len: self.records.len(),
            })
    }

    /// All records in id order.
    #[inline]
    pub fn records(&self) -> &[Record] {
        &self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn product_schema() -> Schema {
        Schema::new(["title", "manufacturer", "price"]).unwrap()
    }

    #[test]
    fn schema_rejects_duplicates_and_empty() {
        assert!(Schema::new(["a", "a"]).is_err());
        assert!(Schema::new(Vec::<String>::new()).is_err());
    }

    #[test]
    fn schema_position() {
        let s = product_schema();
        assert_eq!(s.position("price"), Some(2));
        assert_eq!(s.position("nope"), None);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn table_push_and_get_roundtrip() {
        let mut t = Table::new("amazon", product_schema());
        let id = t
            .push(["sims 2 glamour life stuff pack", "aspyr media", "24.99"])
            .unwrap();
        assert_eq!(id, RecordId(0));
        let r = t.get(id).unwrap();
        assert_eq!(r.value(1), Some("aspyr media"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn table_push_arity_checked() {
        let mut t = Table::new("amazon", product_schema());
        assert!(t.push(["only-title"]).is_err());
        assert!(t.is_empty());
    }

    #[test]
    fn table_get_out_of_bounds() {
        let t = Table::new("x", product_schema());
        assert!(matches!(
            t.get(RecordId(3)),
            Err(EmError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn full_text_skips_missing_values() {
        let r = Record::new(RecordId(0), ["alpha", "", "beta"]);
        assert_eq!(r.full_text(), "alpha beta");
    }

    #[test]
    fn full_text_all_missing_is_empty() {
        let r = Record::new(RecordId(0), ["", "", ""]);
        assert_eq!(r.full_text(), "");
    }

    #[test]
    fn ids_are_sequential() {
        let mut t = Table::new("t", Schema::new(["a"]).unwrap());
        for i in 0..5u32 {
            assert_eq!(t.push([format!("v{i}")]).unwrap(), RecordId(i));
        }
    }
}
