#![forbid(unsafe_code)]
//! # em-graph
//!
//! Pair graphs: the spatial data structure at the heart of the battleship
//! approach (paper §3.3).
//!
//! Tuple-pair representations become nodes of a weighted graph whose edges
//! encode latent-space proximity. The graph is built per cluster — each
//! node joins its `q` nearest in-cluster neighbours, plus a top fraction
//! of the remaining in-cluster pairs, never connecting two labeled nodes
//! (§3.3.2, reproduced exactly from the paper's Example 4 in this crate's
//! tests). On top of the graph this crate computes:
//!
//! * **connected components** ([`components`]) — the budget-distribution
//!   and selection granularity (§3.4),
//! * **weighted PageRank** ([`pagerank()`](pagerank::pagerank)) — the centrality criterion
//!   (Eq. 5),
//! * **spatial certainty** ([`certainty`]) — neighbourhood-agreement
//!   confidence (Eq. 3), binary entropy (Eq. 1) and their blend (Eq. 4),
//!   which overcomes the dichotomous confidence problem of pre-trained
//!   language models.

pub mod betweenness;
pub mod build;
pub mod certainty;
pub mod components;
pub mod graph;
pub mod pagerank;

pub use betweenness::{betweenness, betweenness_with_scratch, BetweennessScratch};
pub use build::{
    build_graph, build_graph_blocked, BlockedConfig, DotSim, EdgeConfig, EmbeddingSim, MatrixSim,
    Similarity,
};
pub use certainty::{binary_entropy, certainty_score, spatial_confidence};
pub use components::connected_components;
pub use graph::{NodeKind, PairGraph};
pub use pagerank::{pagerank, PageRankConfig};
