//! Connected components of pair graphs.
//!
//! The battleship approach treats every connected component as a
//! sampling region: budgets are distributed across components
//! proportionally to size (§3.4) and the top-ranked pairs are taken
//! per component (§3.6).

use crate::graph::PairGraph;

/// Connected components of the graph, as sorted node-index lists.
///
/// Components are returned in ascending order of their smallest member,
/// so the output is deterministic. Isolated nodes form singleton
/// components.
pub fn connected_components(graph: &PairGraph) -> Vec<Vec<usize>> {
    let n = graph.len();
    let mut visited = vec![false; n];
    let mut components = Vec::new();
    let mut stack = Vec::new();
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let mut comp = Vec::new();
        visited[start] = true;
        stack.push(start);
        while let Some(v) = stack.pop() {
            comp.push(v);
            for &(u, _) in graph.neighbors(v) {
                let u = u as usize;
                if !visited[u] {
                    visited[u] = true;
                    stack.push(u);
                }
            }
        }
        comp.sort_unstable();
        components.push(comp);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    fn pool_graph(n: usize) -> PairGraph {
        PairGraph::new(vec![NodeKind::PredictedMatch; n], vec![0.9; n]).unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = pool_graph(0);
        assert!(connected_components(&g).is_empty());
    }

    #[test]
    fn all_isolated() {
        let g = pool_graph(3);
        let cc = connected_components(&g);
        assert_eq!(cc, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn two_components() {
        let mut g = pool_graph(6);
        g.add_edge(0, 1, 0.5).unwrap();
        g.add_edge(1, 2, 0.5).unwrap();
        g.add_edge(4, 5, 0.5).unwrap();
        let cc = connected_components(&g);
        assert_eq!(cc, vec![vec![0, 1, 2], vec![3], vec![4, 5]]);
    }

    #[test]
    fn single_component_chain() {
        let mut g = pool_graph(5);
        for i in 0..4 {
            g.add_edge(i, i + 1, 0.5).unwrap();
        }
        let cc = connected_components(&g);
        assert_eq!(cc.len(), 1);
        assert_eq!(cc[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn components_partition_nodes() {
        let mut g = pool_graph(10);
        g.add_edge(0, 9, 0.5).unwrap();
        g.add_edge(2, 5, 0.5).unwrap();
        g.add_edge(5, 7, 0.5).unwrap();
        let cc = connected_components(&g);
        let mut all: Vec<usize> = cc.concat();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }
}
