//! Betweenness centrality (Brandes 2001), parallel over source nodes.
//!
//! The paper's background section names betweenness (Freeman 1977) as the
//! classic alternative centrality measure before settling on PageRank
//! (§2.2: "Centrality can \[be\] computed in multiple ways (e.g.,
//! betweenness centrality)"). This module provides it so the choice can
//! be ablated: `battleship::BattleshipParams::centrality` switches the
//! selection criterion between the two (see the `ablation_centrality`
//! bench).
//!
//! Implementation: Brandes' accumulation algorithm on the unweighted
//! graph topology, O(V·E) per component. Edge weights are deliberately
//! ignored — betweenness over similarity-weighted shortest paths would
//! invert the semantics (high similarity = short edge needs a weight
//! transform), and the paper's reference is to the classic unweighted
//! measure.
//!
//! **Parallelism and determinism.** Brandes decomposes into one
//! independent BFS + accumulation per source node; sources are processed
//! in fixed chunks of [`SOURCE_CHUNK`], each chunk accumulating into its
//! own buffer, and the per-chunk partials are reduced in chunk order.
//! The chunk structure is a function of the component size alone — never
//! of the thread count — so the floating-point reduction order is
//! identical whether the chunks run on one thread or many, and
//! `rayon::serial_scope(|| betweenness(..))` is bit-identical to the
//! parallel run (asserted by this module's golden test).

use rayon::prelude::*;

use em_core::{EmError, Result};

use crate::graph::PairGraph;

/// Sources per Brandes work unit. Also the reduction granularity: chunk
/// partials are summed in chunk order, so this constant (not the thread
/// count) fixes the floating-point association.
pub const SOURCE_CHUNK: usize = 64;

/// Reusable scratch for [`betweenness_with_scratch`]: a dense
/// node-id → local-index map that replaces the per-call `HashMap` the
/// seed implementation allocated for every component.
///
/// Grows once to the graph size and is wiped back to the sentinel after
/// every call, so a selection pass over many components performs no
/// per-component map allocations.
#[derive(Debug, Default)]
pub struct BetweennessScratch {
    /// `local[v]` = position of node `v` in the current component, or
    /// `u32::MAX`.
    local: Vec<u32>,
}

impl BetweennessScratch {
    /// Empty scratch; grows on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Betweenness centrality for the nodes of one connected component.
///
/// `component` lists node ids; the returned vector is aligned with it.
/// Scores are normalized to `[0, 1]` by the pair count
/// `(n−1)(n−2)/2` (undirected convention); singleton and two-node
/// components yield zeros.
pub fn betweenness(graph: &PairGraph, component: &[usize]) -> Result<Vec<f64>> {
    betweenness_with_scratch(graph, component, &mut BetweennessScratch::new())
}

/// [`betweenness`] with caller-owned scratch, for loops over many
/// components (e.g. per-side selection) that want allocation reuse.
pub fn betweenness_with_scratch(
    graph: &PairGraph,
    component: &[usize],
    scratch: &mut BetweennessScratch,
) -> Result<Vec<f64>> {
    let m = component.len();
    if m == 0 {
        return Err(EmError::EmptyInput("betweenness component".into()));
    }
    if scratch.local.len() < graph.len() {
        scratch.local.resize(graph.len(), u32::MAX);
    }
    for (li, &v) in component.iter().enumerate() {
        scratch.local[v] = li as u32;
    }
    // Validate closure while building the local adjacency; always wipe
    // the scratch entries before returning.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut closure_error = None;
    'outer: for (li, &v) in component.iter().enumerate() {
        for &(u, _) in graph.neighbors(v) {
            match scratch.local[u as usize] {
                u32::MAX => {
                    closure_error = Some(EmError::InvalidConfig(format!(
                        "node {v} has neighbour {u} outside its component"
                    )));
                    break 'outer;
                }
                lu => adj[li].push(lu as usize),
            }
        }
    }
    for &v in component {
        scratch.local[v] = u32::MAX;
    }
    if let Some(e) = closure_error {
        return Err(e);
    }
    if m < 3 {
        return Ok(vec![0.0; m]);
    }

    // One work unit per fixed-size source chunk; partials merged in
    // chunk order (deterministic for any thread count).
    let n_chunks = m.div_ceil(SOURCE_CHUNK);
    let partials: Vec<Vec<f64>> = (0..n_chunks)
        .into_par_iter()
        .map(|c| {
            let lo = c * SOURCE_CHUNK;
            let hi = (lo + SOURCE_CHUNK).min(m);
            brandes_chunk(&adj, lo..hi)
        })
        .collect();
    let mut centrality = vec![0.0f64; m];
    for partial in partials {
        for (acc, x) in centrality.iter_mut().zip(&partial) {
            *acc += x;
        }
    }

    // Undirected normalization: each pair counted twice; scale to [0,1].
    let norm = ((m - 1) * (m - 2)) as f64;
    for c in &mut centrality {
        *c /= norm;
    }
    Ok(centrality)
}

/// Brandes accumulation for the sources in `sources`, over the local
/// adjacency `adj`; returns this chunk's (unnormalized) centrality
/// contribution.
fn brandes_chunk(adj: &[Vec<usize>], sources: std::ops::Range<usize>) -> Vec<f64> {
    let m = adj.len();
    let mut centrality = vec![0.0f64; m];
    // Reusable per-source buffers.
    let mut sigma = vec![0.0f64; m];
    let mut dist = vec![-1i64; m];
    let mut delta = vec![0.0f64; m];
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut stack: Vec<usize> = Vec::with_capacity(m);
    let mut queue = std::collections::VecDeque::with_capacity(m);

    for s in sources {
        sigma.iter_mut().for_each(|x| *x = 0.0);
        dist.iter_mut().for_each(|x| *x = -1);
        delta.iter_mut().for_each(|x| *x = 0.0);
        preds.iter_mut().for_each(Vec::clear);
        stack.clear();
        queue.clear();

        sigma[s] = 1.0;
        dist[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &w in &adj[v] {
                if dist[w] < 0 {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
                if dist[w] == dist[v] + 1 {
                    sigma[w] += sigma[v];
                    preds[w].push(v);
                }
            }
        }
        // Accumulation in reverse BFS order.
        while let Some(w) = stack.pop() {
            for &v in &preds[w] {
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
            }
            if w != s {
                centrality[w] += delta[w];
            }
        }
    }
    centrality
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    fn pool_graph(n: usize) -> PairGraph {
        PairGraph::new(vec![NodeKind::PredictedMatch; n], vec![0.9; n]).unwrap()
    }

    #[test]
    fn path_graph_middle_is_most_central() {
        // 0 — 1 — 2 — 3 — 4: node 2 lies on the most shortest paths.
        let mut g = pool_graph(5);
        for i in 0..4 {
            g.add_edge(i, i + 1, 0.5).unwrap();
        }
        let comp: Vec<usize> = (0..5).collect();
        let bc = betweenness(&g, &comp).unwrap();
        assert!(bc[2] > bc[1] && bc[2] > bc[3], "{bc:?}");
        assert!(bc[1] > bc[0] && bc[3] > bc[4], "{bc:?}");
        assert_eq!(bc[0], 0.0);
        assert_eq!(bc[4], 0.0);
        // Known value: middle of a 5-path has betweenness 4/((4)(3)) per
        // undirected normalization with both directions counted:
        // pairs through node 2: (0,3),(0,4),(1,3),(1,4) = 4 of 6 pairs,
        // counted in both directions → 8/12 = 2/3.
        assert!((bc[2] - 2.0 / 3.0).abs() < 1e-9, "{}", bc[2]);
    }

    #[test]
    fn star_center_takes_everything() {
        let mut g = pool_graph(6);
        for leaf in 1..6 {
            g.add_edge(0, leaf, 0.9).unwrap();
        }
        let comp: Vec<usize> = (0..6).collect();
        let bc = betweenness(&g, &comp).unwrap();
        assert!((bc[0] - 1.0).abs() < 1e-9, "center {}", bc[0]);
        for b in bc.iter().skip(1) {
            assert_eq!(*b, 0.0);
        }
    }

    #[test]
    fn complete_graph_is_all_zero() {
        let mut g = pool_graph(4);
        for a in 0..4 {
            for b in a + 1..4 {
                g.add_edge(a, b, 0.5).unwrap();
            }
        }
        let comp: Vec<usize> = (0..4).collect();
        let bc = betweenness(&g, &comp).unwrap();
        assert!(bc.iter().all(|&x| x.abs() < 1e-12), "{bc:?}");
    }

    #[test]
    fn tiny_components_are_zero() {
        let mut g = pool_graph(3);
        g.add_edge(0, 1, 0.5).unwrap();
        assert_eq!(betweenness(&g, &[2]).unwrap(), vec![0.0]);
        assert_eq!(betweenness(&g, &[0, 1]).unwrap(), vec![0.0, 0.0]);
        assert!(betweenness(&g, &[]).is_err());
    }

    #[test]
    fn rejects_cross_component_neighbours() {
        let mut g = pool_graph(3);
        g.add_edge(0, 1, 0.5).unwrap();
        assert!(betweenness(&g, &[0]).is_err());
    }

    #[test]
    fn bridge_node_dominates_two_cliques() {
        // Two triangles joined through node 3.
        let mut g = pool_graph(7);
        g.add_edge(0, 1, 0.5).unwrap();
        g.add_edge(1, 2, 0.5).unwrap();
        g.add_edge(0, 2, 0.5).unwrap();
        g.add_edge(2, 3, 0.5).unwrap();
        g.add_edge(3, 4, 0.5).unwrap();
        g.add_edge(4, 5, 0.5).unwrap();
        g.add_edge(5, 6, 0.5).unwrap();
        g.add_edge(4, 6, 0.5).unwrap();
        let comp: Vec<usize> = (0..7).collect();
        let bc = betweenness(&g, &comp).unwrap();
        let max = bc.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(bc[3], max, "{bc:?}");
    }

    #[test]
    fn scratch_reuse_across_components_matches_fresh_calls() {
        // Two disjoint paths in one graph; reusing scratch must not leak
        // state between components.
        let mut g = pool_graph(9);
        for i in 0..3 {
            g.add_edge(i, i + 1, 0.5).unwrap();
        }
        for i in 5..8 {
            g.add_edge(i, i + 1, 0.5).unwrap();
        }
        let comp_a: Vec<usize> = (0..4).collect();
        let comp_b: Vec<usize> = (5..9).collect();
        let mut scratch = BetweennessScratch::new();
        let a1 = betweenness_with_scratch(&g, &comp_a, &mut scratch).unwrap();
        let b1 = betweenness_with_scratch(&g, &comp_b, &mut scratch).unwrap();
        assert_eq!(a1, betweenness(&g, &comp_a).unwrap());
        assert_eq!(b1, betweenness(&g, &comp_b).unwrap());
        // An error call (bad closure) must still wipe its entries.
        assert!(betweenness_with_scratch(&g, &[0], &mut scratch).is_err());
        let a2 = betweenness_with_scratch(&g, &comp_a, &mut scratch).unwrap();
        assert_eq!(a1, a2);
    }

    /// Golden test: the parallel run is bit-identical to the serial run
    /// on a component large enough to span many source chunks.
    #[test]
    fn parallel_is_bit_identical_to_serial() {
        use em_core::Rng;
        let n = 3 * SOURCE_CHUNK + 17;
        let mut g = pool_graph(n);
        let mut rng = Rng::seed_from_u64(99);
        // Random connected graph: a ring plus random chords.
        for i in 0..n {
            g.add_edge(i, (i + 1) % n, 0.5).unwrap();
        }
        for _ in 0..4 * n {
            let a = rng.below(n);
            let b = rng.below(n);
            if a != b && !g.has_edge(a, b) {
                g.add_edge(a, b, 0.5).unwrap();
            }
        }
        let comp: Vec<usize> = (0..n).collect();
        let par = betweenness(&g, &comp).unwrap();
        let ser = rayon::serial_scope(|| betweenness(&g, &comp).unwrap());
        let par_bits: Vec<u64> = par.iter().map(|x| x.to_bits()).collect();
        let ser_bits: Vec<u64> = ser.iter().map(|x| x.to_bits()).collect();
        assert_eq!(par_bits, ser_bits);
    }
}
