//! Betweenness centrality (Brandes 2001).
//!
//! The paper's background section names betweenness (Freeman 1977) as the
//! classic alternative centrality measure before settling on PageRank
//! (§2.2: "Centrality can \[be\] computed in multiple ways (e.g.,
//! betweenness centrality)"). This module provides it so the choice can
//! be ablated: `battleship::BattleshipParams::centrality` switches the
//! selection criterion between the two (see the `ablation_centrality`
//! bench).
//!
//! Implementation: Brandes' accumulation algorithm on the unweighted
//! graph topology, O(V·E) per component. Edge weights are deliberately
//! ignored — betweenness over similarity-weighted shortest paths would
//! invert the semantics (high similarity = short edge needs a weight
//! transform), and the paper's reference is to the classic unweighted
//! measure.

use em_core::{EmError, Result};

use crate::graph::PairGraph;

/// Betweenness centrality for the nodes of one connected component.
///
/// `component` lists node ids; the returned vector is aligned with it.
/// Scores are normalized to `[0, 1]` by the pair count
/// `(n−1)(n−2)/2` (undirected convention); singleton and two-node
/// components yield zeros.
pub fn betweenness(graph: &PairGraph, component: &[usize]) -> Result<Vec<f64>> {
    let m = component.len();
    if m == 0 {
        return Err(EmError::EmptyInput("betweenness component".into()));
    }
    let mut local = std::collections::HashMap::with_capacity(m);
    for (li, &v) in component.iter().enumerate() {
        local.insert(v, li);
    }
    // Validate closure while building the local adjacency.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (li, &v) in component.iter().enumerate() {
        for &(u, _) in graph.neighbors(v) {
            match local.get(&(u as usize)) {
                Some(&lu) => adj[li].push(lu),
                None => {
                    return Err(EmError::InvalidConfig(format!(
                        "node {v} has neighbour {u} outside its component"
                    )))
                }
            }
        }
    }
    if m < 3 {
        return Ok(vec![0.0; m]);
    }

    let mut centrality = vec![0.0f64; m];
    // Reusable per-source buffers.
    let mut sigma = vec![0.0f64; m];
    let mut dist = vec![-1i64; m];
    let mut delta = vec![0.0f64; m];
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); m];

    for s in 0..m {
        sigma.iter_mut().for_each(|x| *x = 0.0);
        dist.iter_mut().for_each(|x| *x = -1);
        delta.iter_mut().for_each(|x| *x = 0.0);
        preds.iter_mut().for_each(Vec::clear);

        sigma[s] = 1.0;
        dist[s] = 0;
        let mut stack: Vec<usize> = Vec::with_capacity(m);
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &w in &adj[v] {
                if dist[w] < 0 {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
                if dist[w] == dist[v] + 1 {
                    sigma[w] += sigma[v];
                    preds[w].push(v);
                }
            }
        }
        // Accumulation in reverse BFS order.
        while let Some(w) = stack.pop() {
            for &v in &preds[w] {
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
            }
            if w != s {
                centrality[w] += delta[w];
            }
        }
    }

    // Undirected normalization: each pair counted twice; scale to [0,1].
    let norm = ((m - 1) * (m - 2)) as f64;
    for c in &mut centrality {
        *c /= norm;
    }
    Ok(centrality)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    fn pool_graph(n: usize) -> PairGraph {
        PairGraph::new(vec![NodeKind::PredictedMatch; n], vec![0.9; n]).unwrap()
    }

    #[test]
    fn path_graph_middle_is_most_central() {
        // 0 — 1 — 2 — 3 — 4: node 2 lies on the most shortest paths.
        let mut g = pool_graph(5);
        for i in 0..4 {
            g.add_edge(i, i + 1, 0.5).unwrap();
        }
        let comp: Vec<usize> = (0..5).collect();
        let bc = betweenness(&g, &comp).unwrap();
        assert!(bc[2] > bc[1] && bc[2] > bc[3], "{bc:?}");
        assert!(bc[1] > bc[0] && bc[3] > bc[4], "{bc:?}");
        assert_eq!(bc[0], 0.0);
        assert_eq!(bc[4], 0.0);
        // Known value: middle of a 5-path has betweenness 4/((4)(3)) per
        // undirected normalization with both directions counted:
        // pairs through node 2: (0,3),(0,4),(1,3),(1,4) = 4 of 6 pairs,
        // counted in both directions → 8/12 = 2/3.
        assert!((bc[2] - 2.0 / 3.0).abs() < 1e-9, "{}", bc[2]);
    }

    #[test]
    fn star_center_takes_everything() {
        let mut g = pool_graph(6);
        for leaf in 1..6 {
            g.add_edge(0, leaf, 0.9).unwrap();
        }
        let comp: Vec<usize> = (0..6).collect();
        let bc = betweenness(&g, &comp).unwrap();
        assert!((bc[0] - 1.0).abs() < 1e-9, "center {}", bc[0]);
        for leaf in 1..6 {
            assert_eq!(bc[leaf], 0.0);
        }
    }

    #[test]
    fn complete_graph_is_all_zero() {
        let mut g = pool_graph(4);
        for a in 0..4 {
            for b in a + 1..4 {
                g.add_edge(a, b, 0.5).unwrap();
            }
        }
        let comp: Vec<usize> = (0..4).collect();
        let bc = betweenness(&g, &comp).unwrap();
        assert!(bc.iter().all(|&x| x.abs() < 1e-12), "{bc:?}");
    }

    #[test]
    fn tiny_components_are_zero() {
        let mut g = pool_graph(3);
        g.add_edge(0, 1, 0.5).unwrap();
        assert_eq!(betweenness(&g, &[2]).unwrap(), vec![0.0]);
        assert_eq!(betweenness(&g, &[0, 1]).unwrap(), vec![0.0, 0.0]);
        assert!(betweenness(&g, &[]).is_err());
    }

    #[test]
    fn rejects_cross_component_neighbours() {
        let mut g = pool_graph(3);
        g.add_edge(0, 1, 0.5).unwrap();
        assert!(betweenness(&g, &[0]).is_err());
    }

    #[test]
    fn bridge_node_dominates_two_cliques() {
        // Two triangles joined through node 3.
        let mut g = pool_graph(7);
        g.add_edge(0, 1, 0.5).unwrap();
        g.add_edge(1, 2, 0.5).unwrap();
        g.add_edge(0, 2, 0.5).unwrap();
        g.add_edge(2, 3, 0.5).unwrap();
        g.add_edge(3, 4, 0.5).unwrap();
        g.add_edge(4, 5, 0.5).unwrap();
        g.add_edge(5, 6, 0.5).unwrap();
        g.add_edge(4, 6, 0.5).unwrap();
        let comp: Vec<usize> = (0..7).collect();
        let bc = betweenness(&g, &comp).unwrap();
        let max = bc.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(bc[3], max, "{bc:?}");
    }
}
