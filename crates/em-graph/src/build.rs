//! Edge creation (paper §3.3.2).
//!
//! Per cluster, two stages:
//!
//! 1. **q-NN stage** — every node is connected to its `q` most similar
//!    in-cluster peers ("each node shall be connected to a minimal number
//!    of neighbors"); the union over directed selections is undirected
//!    and deduplicated, so central nodes end up with more than `q` edges.
//! 2. **top-ratio stage** — the remaining allowed in-cluster pairs are
//!    sorted by descending similarity and the top
//!    `⌊extra_ratio · remaining⌋` become edges ("the total number of
//!    additional edges is proportional to the cluster size ... a more
//!    central node is more likely to be connected to a larger number of
//!    nodes").
//!
//! Labeled–labeled pairs are excluded in both stages ("we do not directly
//! connect two labeled pairs, as they are not a target for the certainty
//! calculations"). The worked Example 4 (Figure 4 + Table 2) is
//! reproduced verbatim in this module's tests.

use rayon::prelude::*;

use em_core::{EmError, Result};
use em_vector::Embeddings;

use crate::graph::{NodeKind, PairGraph};

/// A symmetric similarity provider over node indices.
///
/// Production code uses [`EmbeddingSim`] (cosine over pair
/// representations); tests use [`MatrixSim`] to encode the paper's
/// Table 2 directly.
pub trait Similarity {
    /// Similarity between nodes `i` and `j` (symmetric).
    fn sim(&self, i: usize, j: usize) -> f32;
}

/// Cosine similarity over embedding rows.
pub struct EmbeddingSim<'a> {
    embeddings: &'a Embeddings,
}

impl<'a> EmbeddingSim<'a> {
    /// Wrap an embedding matrix.
    pub fn new(embeddings: &'a Embeddings) -> Self {
        EmbeddingSim { embeddings }
    }
}

impl Similarity for EmbeddingSim<'_> {
    #[inline]
    fn sim(&self, i: usize, j: usize) -> f32 {
        self.embeddings.cosine(i, j)
    }
}

/// Dot-product similarity over rows that the caller has already
/// L2-normalized (see [`Embeddings::normalize_rows`]).
///
/// Equivalent to [`EmbeddingSim`] on normalized data but ~3× cheaper in
/// the edge-creation hot loop, which evaluates `O(m²)` similarities per
/// cluster.
pub struct DotSim<'a> {
    embeddings: &'a Embeddings,
}

impl<'a> DotSim<'a> {
    /// Wrap a matrix of unit-norm rows.
    pub fn new(normalized: &'a Embeddings) -> Self {
        DotSim {
            embeddings: normalized,
        }
    }
}

impl Similarity for DotSim<'_> {
    #[inline]
    fn sim(&self, i: usize, j: usize) -> f32 {
        em_vector::dot(self.embeddings.row(i), self.embeddings.row(j))
    }
}

/// A dense symmetric similarity matrix (for tests and small inputs).
pub struct MatrixSim {
    n: usize,
    values: Vec<f32>,
}

impl MatrixSim {
    /// Build from an upper-triangular list `(i, j, sim)` with `i < j`.
    pub fn from_entries(n: usize, entries: &[(usize, usize, f32)]) -> Result<Self> {
        let mut values = vec![0.0f32; n * n];
        for &(i, j, s) in entries {
            if i >= n || j >= n || i == j {
                return Err(EmError::InvalidConfig(format!(
                    "bad similarity entry ({i},{j}) for n={n}"
                )));
            }
            values[i * n + j] = s;
            values[j * n + i] = s;
        }
        Ok(MatrixSim { n, values })
    }
}

impl Similarity for MatrixSim {
    #[inline]
    fn sim(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.n && j < self.n);
        self.values[i * self.n + j]
    }
}

/// Edge-creation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeConfig {
    /// Nearest neighbours per node (the paper uses 15, §4.2; its worked
    /// example uses 2).
    pub q: usize,
    /// Fraction of the remaining allowed pairs to connect (the paper uses
    /// 0.03, §4.2; its worked example uses 0.15).
    pub extra_ratio: f64,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        EdgeConfig {
            q: 15,
            extra_ratio: 0.03,
        }
    }
}

impl EdgeConfig {
    fn validate(&self) -> Result<()> {
        if self.q == 0 {
            return Err(EmError::InvalidConfig("edge config q must be > 0".into()));
        }
        if !(0.0..=1.0).contains(&self.extra_ratio) {
            return Err(EmError::InvalidConfig(format!(
                "extra_ratio {} outside [0,1]",
                self.extra_ratio
            )));
        }
        Ok(())
    }
}

/// Whether an edge between `a` and `b` is permitted.
#[inline]
fn allowed(kinds: &[NodeKind], a: usize, b: usize) -> bool {
    !(kinds[a].is_labeled() && kinds[b].is_labeled())
}

/// Build the pair graph over `kinds.len()` nodes partitioned into
/// `clusters` (disjoint lists of node indices), using `sim` for edge
/// weights.
///
/// Every cluster contributes its own edges; nodes of different clusters
/// are never connected, so each cluster yields one or more connected
/// components (§3.3.2: "each cluster yields one (or more) connected
/// components").
pub fn build_graph<S: Similarity>(
    sim: &S,
    kinds: &[NodeKind],
    confidences: &[f32],
    clusters: &[Vec<usize>],
    config: EdgeConfig,
) -> Result<PairGraph> {
    config.validate()?;
    validate_clusters(kinds.len(), clusters)?;

    let mut graph = PairGraph::new(kinds.to_vec(), confidences.to_vec())?;

    for cluster in clusters {
        let m = cluster.len();
        if m < 2 {
            continue;
        }

        // Stage 1: q nearest allowed neighbours per node.
        for (pos, &v) in cluster.iter().enumerate() {
            // Collect allowed candidates with similarity; partial sort.
            let mut cands: Vec<(usize, f32)> = Vec::with_capacity(m - 1);
            for (other_pos, &u) in cluster.iter().enumerate() {
                if other_pos == pos || !allowed(kinds, v, u) {
                    continue;
                }
                cands.push((u, sim.sim(v, u)));
            }
            cands.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            });
            for &(u, w) in cands.iter().take(config.q) {
                if !graph.has_edge(v, u) {
                    graph.add_edge(v, u, sanitize_weight(w))?;
                }
            }
        }

        // Stage 2: top fraction of the remaining allowed pairs.
        let mut remaining: Vec<(usize, usize, f32)> = Vec::new();
        for a_pos in 0..m {
            for b_pos in a_pos + 1..m {
                let (a, b) = (cluster[a_pos], cluster[b_pos]);
                if !allowed(kinds, a, b) || graph.has_edge(a, b) {
                    continue;
                }
                remaining.push((a, b, sim.sim(a, b)));
            }
        }
        let extra = (config.extra_ratio * remaining.len() as f64).floor() as usize;
        if extra > 0 {
            remaining.sort_by(|x, y| {
                y.2.partial_cmp(&x.2)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then((x.0, x.1).cmp(&(y.0, y.1)))
            });
            for &(a, b, w) in remaining.iter().take(extra) {
                graph.add_edge(a, b, sanitize_weight(w))?;
            }
        }
    }

    Ok(graph)
}

/// Edge weights must be positive for PageRank; cosine similarities of
/// near-antipodal representations can be ≤ 0, so clamp to a small floor.
#[inline]
fn sanitize_weight(w: f32) -> f32 {
    if w.is_finite() {
        w.max(1e-6)
    } else {
        1e-6
    }
}

/// Clusters must be a family of disjoint in-range node lists.
fn validate_clusters(n: usize, clusters: &[Vec<usize>]) -> Result<()> {
    let mut seen = vec![false; n];
    for cluster in clusters {
        for &v in cluster {
            if v >= n {
                return Err(EmError::IndexOutOfBounds {
                    context: "cluster member".into(),
                    index: v,
                    len: n,
                });
            }
            if seen[v] {
                return Err(EmError::InvalidConfig(format!(
                    "node {v} appears in more than one cluster"
                )));
            }
            seen[v] = true;
        }
    }
    Ok(())
}

/// Configuration of the blocked graph builder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockedConfig {
    /// Edge-creation parameters (shared with the scalar builder).
    pub edge: EdgeConfig,
    /// Clusters **larger** than this route their neighbour search
    /// through the HNSW ANN index instead of the exact Gram kernel
    /// (approximate; see [`build_graph_blocked`]). Also caps the dense
    /// per-cluster Gram at `ann_threshold²` floats — note that clusters
    /// are processed in parallel, so peak transient memory is up to
    /// `worker_threads × ann_threshold²` floats; lower the threshold on
    /// memory-tight many-core hosts. `usize::MAX` disables ANN routing
    /// entirely.
    pub ann_threshold: usize,
    /// Seed for HNSW level draws on ANN-routed clusters (combined with
    /// the cluster index, so runs are reproducible).
    pub ann_seed: u64,
}

impl Default for BlockedConfig {
    fn default() -> Self {
        BlockedConfig {
            edge: EdgeConfig::default(),
            // Measured exact→ANN crossover (BENCH_blocking.json's
            // single-cluster sweep): the dense kernel still beats HNSW
            // at 8192 and first loses at 16384. The 16384² Gram is
            // 1 GiB f32 per worker — lower the threshold on
            // memory-tight many-core hosts.
            ann_threshold: 16384,
            ann_seed: 0xA22_0E55,
        }
    }
}

impl BlockedConfig {
    /// Derive the blocked builder's routing from a shared
    /// [`em_vector::AnnPolicy`] — the crossover threshold comes from the
    /// policy so every ANN-capable stage of a pipeline flips together.
    pub fn from_policy(edge: EdgeConfig, policy: &em_vector::AnnPolicy, ann_seed: u64) -> Self {
        BlockedConfig {
            edge,
            ann_threshold: policy.threshold,
            ann_seed,
        }
    }
}

/// Blocked, parallel edge creation over pre-normalized rows.
///
/// Semantics are identical to [`build_graph`] with
/// [`DotSim`]`::new(normalized)`: for every cluster at or under
/// `config.ann_threshold`, the per-cluster Gram matrix is computed once
/// by the blocked kernel (each entry the same `dot` call the scalar
/// path makes, so the resulting graph — edge set, weights *and*
/// adjacency order — is **bit-identical**; the golden tests assert
/// this). Clusters are processed in parallel and their edge lists
/// applied in cluster order, which reproduces the serial builder's
/// insertion order exactly.
///
/// Clusters larger than the threshold use the HNSW index for the q-NN
/// stage and a widened beam for the top-ratio stage (§5.2 names
/// approximate search as the scale-out for exactly this step); those
/// clusters are approximate but still deterministic under
/// `config.ann_seed`.
pub fn build_graph_blocked(
    normalized: &Embeddings,
    kinds: &[NodeKind],
    confidences: &[f32],
    clusters: &[Vec<usize>],
    config: &BlockedConfig,
) -> Result<PairGraph> {
    config.edge.validate()?;
    let n = kinds.len();
    if normalized.len() != n {
        return Err(EmError::DimensionMismatch {
            context: "build_graph_blocked rows vs kinds".into(),
            expected: n,
            actual: normalized.len(),
        });
    }
    validate_clusters(n, clusters)?;

    let edge_lists: Vec<Result<Vec<(usize, usize, f32)>>> = (0..clusters.len())
        .into_par_iter()
        .map(|c| {
            let cluster = &clusters[c];
            if cluster.len() > config.ann_threshold {
                cluster_edges_ann(
                    normalized,
                    kinds,
                    cluster,
                    config.edge,
                    config.ann_seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                )
            } else {
                Ok(cluster_edges_exact(normalized, kinds, cluster, config.edge))
            }
        })
        .collect();

    let mut graph = PairGraph::new(kinds.to_vec(), confidences.to_vec())?;
    for list in edge_lists {
        for (a, b, w) in list? {
            graph.add_edge(a, b, w)?;
        }
    }
    Ok(graph)
}

/// Top-`q` allowed neighbours of the node at `pos` from its Gram row,
/// under the scalar builder's exact total order (similarity descending,
/// ties toward the smaller *global* index). Returns `(position, sim)`
/// pairs best-first.
fn top_q_allowed(
    row: &[f32],
    cluster: &[usize],
    kinds: &[NodeKind],
    pos: usize,
    q: usize,
) -> Vec<(usize, f32)> {
    let v = cluster[pos];
    let better = |a: (usize, f32), b: (usize, f32)| -> bool {
        match a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => cluster[a.0] < cluster[b.0],
        }
    };
    let mut items: Vec<(usize, f32)> = Vec::with_capacity(q + 1);
    for (u_pos, &w) in row.iter().enumerate() {
        if u_pos == pos || !allowed(kinds, v, cluster[u_pos]) {
            continue;
        }
        let cand = (u_pos, w);
        if items.len() == q {
            if !better(cand, *items.last().expect("non-empty buffer")) {
                continue;
            }
            items.pop();
        }
        let ins = items
            .iter()
            .position(|&x| better(cand, x))
            .unwrap_or(items.len());
        items.insert(ins, cand);
    }
    items
}

/// Exact per-cluster edges from one blocked Gram pass. Reproduces the
/// scalar builder's edge sequence bit-for-bit.
fn cluster_edges_exact(
    normalized: &Embeddings,
    kinds: &[NodeKind],
    cluster: &[usize],
    edge: EdgeConfig,
) -> Vec<(usize, usize, f32)> {
    let m = cluster.len();
    if m < 2 {
        return Vec::new();
    }
    let dim = normalized.dim();
    let packed = em_vector::kernel::pack_rows(normalized, cluster);
    let gram = em_vector::kernel::gram_packed(&packed, m, dim);

    let mut present = vec![false; m * m];
    let mut edges: Vec<(usize, usize, f32)> = Vec::new();

    // Stage 1: q nearest allowed neighbours per node, from the Gram row.
    for pos in 0..m {
        let row = &gram[pos * m..(pos + 1) * m];
        for &(u_pos, w) in &top_q_allowed(row, cluster, kinds, pos, edge.q) {
            let (lo, hi) = (pos.min(u_pos), pos.max(u_pos));
            if !present[lo * m + hi] {
                present[lo * m + hi] = true;
                edges.push((cluster[pos], cluster[u_pos], sanitize_weight(w)));
            }
        }
    }

    // Stage 2: top fraction of the remaining allowed pairs, reusing the
    // Gram entries instead of recomputing every similarity.
    let mut remaining: Vec<(usize, usize, f32)> = Vec::new();
    for a_pos in 0..m {
        let a = cluster[a_pos];
        for b_pos in a_pos + 1..m {
            let b = cluster[b_pos];
            if !allowed(kinds, a, b) || present[a_pos * m + b_pos] {
                continue;
            }
            remaining.push((a, b, gram[a_pos * m + b_pos]));
        }
    }
    let extra = (edge.extra_ratio * remaining.len() as f64).floor() as usize;
    if extra > 0 {
        let cmp = |x: &(usize, usize, f32), y: &(usize, usize, f32)| {
            y.2.partial_cmp(&x.2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then((x.0, x.1).cmp(&(y.0, y.1)))
        };
        // The scalar path fully sorts; the prefix under a total order is
        // the same either way, so select the top block first and only
        // sort that.
        if extra < remaining.len() {
            remaining.select_nth_unstable_by(extra, cmp);
            remaining.truncate(extra);
        }
        remaining.sort_by(cmp);
        for &(a, b, w) in remaining.iter().take(extra) {
            edges.push((a, b, sanitize_weight(w)));
        }
    }
    edges
}

/// Approximate per-cluster edges through the HNSW index, for clusters
/// too large for the dense Gram. The q-NN stage queries the index; the
/// top-ratio stage ranks a widened candidate beam (4·q neighbours per
/// node) instead of all O(m²) remaining pairs. The extra-edge *count*
/// keeps the scalar formula (⌊ratio · remaining-allowed-pairs⌋) so edge
/// density matches the exact path.
fn cluster_edges_ann(
    normalized: &Embeddings,
    kinds: &[NodeKind],
    cluster: &[usize],
    edge: EdgeConfig,
    seed: u64,
) -> Result<Vec<(usize, usize, f32)>> {
    let m = cluster.len();
    if m < 2 {
        return Ok(Vec::new());
    }
    let dim = normalized.dim();
    let packed = em_vector::kernel::pack_rows(normalized, cluster);
    let mut index = em_vector::Hnsw::new(
        dim,
        em_vector::HnswConfig {
            m: 16,
            ef_construction: 100,
            ef_search: (4 * edge.q).max(64),
            seed,
        },
    )?;
    for pos in 0..m {
        index.insert(&packed[pos * dim..(pos + 1) * dim])?;
    }
    let row = |pos: usize| &packed[pos * dim..(pos + 1) * dim];

    let mut present: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    let mut edges: Vec<(usize, usize, f32)> = Vec::new();
    let mark = |present: &mut std::collections::HashSet<(u32, u32)>, a: usize, b: usize| {
        let (lo, hi) = (a.min(b) as u32, a.max(b) as u32);
        present.insert((lo, hi))
    };

    // Stage 1: approximate q-NN per node (over-fetch to survive the
    // allowed-pair filter).
    let want = (edge.q + 8).min(m - 1);
    for pos in 0..m {
        let v = cluster[pos];
        let mut taken = 0usize;
        for hit in index.search(row(pos), want, Some(pos))? {
            if taken >= edge.q {
                break;
            }
            let u = cluster[hit.index];
            if !allowed(kinds, v, u) {
                continue;
            }
            taken += 1;
            if mark(&mut present, pos, hit.index) {
                let w = em_vector::dot(row(pos), row(hit.index));
                edges.push((v, u, sanitize_weight(w)));
            }
        }
    }

    // Stage 2: rank a widened beam of candidate pairs.
    let labeled = cluster.iter().filter(|&&v| kinds[v].is_labeled()).count();
    let allowed_pairs = m * (m - 1) / 2 - labeled.saturating_sub(1) * labeled / 2;
    let remaining_count = allowed_pairs.saturating_sub(edges.len());
    let extra = (edge.extra_ratio * remaining_count as f64).floor() as usize;
    if extra > 0 {
        let beam = (4 * edge.q).min(m - 1);
        let mut candidates: Vec<(usize, usize, f32)> = Vec::new();
        let mut seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        for pos in 0..m {
            let v = cluster[pos];
            for hit in index.search(row(pos), beam, Some(pos))? {
                let u = cluster[hit.index];
                if !allowed(kinds, v, u) {
                    continue;
                }
                let (lo, hi) = (pos.min(hit.index) as u32, pos.max(hit.index) as u32);
                if present.contains(&(lo, hi)) || !seen.insert((lo, hi)) {
                    continue;
                }
                let (a, b) = (cluster[lo as usize], cluster[hi as usize]);
                let w = em_vector::dot(row(lo as usize), row(hi as usize));
                candidates.push((a, b, w));
            }
        }
        candidates.sort_by(|x, y| {
            y.2.partial_cmp(&x.2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then((x.0, x.1).cmp(&(y.0, y.1)))
        });
        for &(a, b, w) in candidates.iter().take(extra) {
            edges.push((a, b, sanitize_weight(w)));
        }
    }
    Ok(edges)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// The similarity matrix of the paper's Table 2 (off-diagonal values;
    /// the diagonal of the table holds model confidences, which live in
    /// `confidences` instead).
    pub(crate) fn paper_example_sim() -> MatrixSim {
        // s1..s8 are nodes 0..7.
        MatrixSim::from_entries(
            8,
            &[
                (0, 1, 0.9),
                (0, 2, 0.5),
                (0, 3, 0.6),
                (0, 4, 0.85),
                (0, 5, 0.5),
                (0, 6, 0.9),
                (0, 7, 0.82),
                (1, 2, 0.55),
                (1, 3, 0.58),
                (1, 4, 0.92),
                (1, 5, 0.45),
                (1, 6, 0.83),
                (1, 7, 0.6),
                (2, 3, 0.75),
                (2, 4, 0.67),
                (2, 5, 0.56),
                (2, 6, 0.4),
                (2, 7, 0.38),
                (3, 4, 0.88),
                (3, 5, 0.84),
                (3, 6, 0.5),
                (3, 7, 0.55),
                (4, 5, 0.57),
                (4, 6, 0.63),
                (4, 7, 0.65),
                (5, 6, 0.41),
                (5, 7, 0.54),
                (6, 7, 0.64),
            ],
        )
        .unwrap()
    }

    pub(crate) fn paper_example_kinds() -> Vec<NodeKind> {
        vec![
            NodeKind::PredictedMatch,    // s1
            NodeKind::PredictedMatch,    // s2
            NodeKind::PredictedMatch,    // s3
            NodeKind::PredictedMatch,    // s4
            NodeKind::PredictedNonMatch, // s5
            NodeKind::PredictedNonMatch, // s6
            NodeKind::LabeledMatch,      // s7
            NodeKind::LabeledNonMatch,   // s8
        ]
    }

    pub(crate) fn paper_example_confidences() -> Vec<f32> {
        // Diagonal of Table 2: model confidence in the assigned label;
        // labeled samples get 1.
        vec![0.95, 0.92, 0.96, 0.94, 0.98, 0.88, 1.0, 1.0]
    }

    /// Reproduces the paper's Example 4 (Figure 4 + Table 2) exactly:
    /// q = 2, extra ratio 0.15, one cluster of 8 samples.
    #[test]
    fn example4_edge_creation_matches_paper() {
        let sim = paper_example_sim();
        let kinds = paper_example_kinds();
        let conf = paper_example_confidences();
        let clusters = vec![(0..8).collect::<Vec<_>>()];
        let g = build_graph(
            &sim,
            &kinds,
            &conf,
            &clusters,
            EdgeConfig {
                q: 2,
                extra_ratio: 0.15,
            },
        )
        .unwrap();

        // Stage-1 edges derived in the paper's prose: each sample joins
        // its two nearest neighbours (labeled–labeled excluded). The union
        // is 11 undirected edges; the paper's "12 created" counts the
        // forbidden s7–s8 slot, but its remaining-candidate count (16) and
        // the two extra edges it derives agree with this edge set.
        let expected_stage1 = [
            (0, 1), // s1–s2 (0.9)
            (0, 6), // s1–s7 (0.9)
            (1, 4), // s2–s5 (0.92)
            (2, 3), // s3–s4 (0.75)
            (2, 4), // s3–s5 (0.67)
            (3, 4), // s4–s5 (0.88)
            (3, 5), // s4–s6 (0.84)
            (4, 5), // s5–s6 from s6's 2-NN (0.57)
            (1, 6), // s2–s7 from s7's 2-NN (0.83)
            (0, 7), // s1–s8 from s8's 2-NN (0.82)
            (4, 7), // s5–s8 from s8's 2-NN (0.65)
        ];
        // Stage-2: 16 remaining allowed pairs, ⌊0.15·16⌋ = 2 extra edges —
        // the two highest-similarity remaining pairs s1–s5 (0.85) and
        // s5–s7 (0.63), as the paper derives.
        let expected_stage2 = [(0, 4), (4, 6)];

        for &(u, v) in expected_stage1.iter().chain(&expected_stage2) {
            assert!(
                g.has_edge(u, v),
                "expected edge s{}–s{} missing",
                u + 1,
                v + 1
            );
        }
        assert_eq!(
            g.n_edges(),
            expected_stage1.len() + expected_stage2.len(),
            "edge set: {:?}",
            g.edges()
        );
        // The labeled–labeled pair s7–s8 must not be connected even though
        // its similarity (0.64) exceeds that of s5–s7 (0.63).
        assert!(!g.has_edge(6, 7));
    }

    #[test]
    fn edge_weights_are_similarities() {
        let sim = paper_example_sim();
        let g = build_graph(
            &sim,
            &paper_example_kinds(),
            &paper_example_confidences(),
            &[(0..8).collect()],
            EdgeConfig {
                q: 2,
                extra_ratio: 0.15,
            },
        )
        .unwrap();
        assert!((g.edge_weight(0, 1).unwrap() - 0.9).abs() < 1e-6);
        assert!((g.edge_weight(0, 4).unwrap() - 0.85).abs() < 1e-6);
        assert!((g.edge_weight(4, 6).unwrap() - 0.63).abs() < 1e-6);
    }

    #[test]
    fn clusters_are_never_bridged() {
        let sim = MatrixSim::from_entries(
            4,
            &[
                (0, 1, 0.9),
                (0, 2, 0.95), // cross-cluster, must be ignored
                (1, 3, 0.99), // cross-cluster, must be ignored
                (2, 3, 0.8),
            ],
        )
        .unwrap();
        let kinds = vec![NodeKind::PredictedMatch; 4];
        let conf = vec![0.9; 4];
        let g = build_graph(
            &sim,
            &kinds,
            &conf,
            &[vec![0, 1], vec![2, 3]],
            EdgeConfig {
                q: 2,
                extra_ratio: 1.0,
            },
        )
        .unwrap();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 3));
        assert_eq!(g.n_edges(), 2);
    }

    #[test]
    fn singleton_and_empty_clusters_are_fine() {
        let sim = MatrixSim::from_entries(3, &[(0, 1, 0.5)]).unwrap();
        let kinds = vec![NodeKind::PredictedNonMatch; 3];
        let conf = vec![0.8; 3];
        let g = build_graph(
            &sim,
            &kinds,
            &conf,
            &[vec![0, 1], vec![2], vec![]],
            EdgeConfig::default(),
        )
        .unwrap();
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn overlapping_clusters_rejected() {
        let sim = MatrixSim::from_entries(3, &[]).unwrap();
        let kinds = vec![NodeKind::PredictedMatch; 3];
        let conf = vec![0.9; 3];
        let err = build_graph(
            &sim,
            &kinds,
            &conf,
            &[vec![0, 1], vec![1, 2]],
            EdgeConfig::default(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn q_larger_than_cluster_connects_everything_allowed() {
        let sim = paper_example_sim();
        let g = build_graph(
            &sim,
            &paper_example_kinds(),
            &paper_example_confidences(),
            &[(0..8).collect()],
            EdgeConfig {
                q: 50,
                extra_ratio: 0.0,
            },
        )
        .unwrap();
        // Complete graph minus the one labeled–labeled pair: C(8,2) − 1.
        assert_eq!(g.n_edges(), 27);
    }

    #[test]
    fn extra_ratio_one_connects_all_allowed() {
        let sim = paper_example_sim();
        let g = build_graph(
            &sim,
            &paper_example_kinds(),
            &paper_example_confidences(),
            &[(0..8).collect()],
            EdgeConfig {
                q: 1,
                extra_ratio: 1.0,
            },
        )
        .unwrap();
        assert_eq!(g.n_edges(), 27);
        assert!(!g.has_edge(6, 7));
    }

    #[test]
    fn validates_config() {
        let sim = MatrixSim::from_entries(2, &[]).unwrap();
        let kinds = vec![NodeKind::PredictedMatch; 2];
        let conf = vec![0.5; 2];
        assert!(build_graph(
            &sim,
            &kinds,
            &conf,
            &[vec![0, 1]],
            EdgeConfig {
                q: 0,
                extra_ratio: 0.1
            }
        )
        .is_err());
        assert!(build_graph(
            &sim,
            &kinds,
            &conf,
            &[vec![0, 1]],
            EdgeConfig {
                q: 2,
                extra_ratio: 1.5
            }
        )
        .is_err());
    }

    #[test]
    fn matrix_sim_validates_entries() {
        assert!(MatrixSim::from_entries(2, &[(0, 0, 1.0)]).is_err());
        assert!(MatrixSim::from_entries(2, &[(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn embedding_sim_wraps_cosine() {
        let e = Embeddings::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let s = EmbeddingSim::new(&e);
        assert!(s.sim(0, 1).abs() < 1e-6);
        assert!((s.sim(0, 2) - (0.5f32).sqrt()).abs() < 1e-5);
    }

    fn random_pool(n: usize, dim: usize, seed: u64) -> (Embeddings, Vec<NodeKind>, Vec<f32>) {
        use em_core::Rng;
        let mut rng = Rng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.normal() as f32).collect())
            .collect();
        let mut e = Embeddings::from_rows(&rows).unwrap();
        e.normalize_rows();
        let kinds: Vec<NodeKind> = (0..n)
            .map(|i| match i % 5 {
                0 => NodeKind::LabeledMatch,
                1 => NodeKind::PredictedNonMatch,
                4 => NodeKind::LabeledNonMatch,
                _ => NodeKind::PredictedMatch,
            })
            .collect();
        let confs: Vec<f32> = kinds
            .iter()
            .map(|k| if k.is_labeled() { 1.0 } else { 0.9 })
            .collect();
        (e, kinds, confs)
    }

    fn ragged_clusters(n: usize) -> Vec<Vec<usize>> {
        // Uneven sizes, non-contiguous membership, one singleton and one
        // empty cluster to hit all edge cases.
        let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); 5];
        for v in 0..n.saturating_sub(1) {
            clusters[v % 4].push(v);
        }
        if n > 0 {
            clusters.push(vec![n - 1]); // singleton
        }
        clusters
    }

    /// Golden test: the blocked parallel builder is bit-identical to the
    /// scalar generic builder over `DotSim` — same edge set, same
    /// weights, same adjacency order (which downstream certainty /
    /// PageRank sums depend on).
    ///
    /// Pinned to the AVX2 tier family (in a serial scope, since the
    /// override is thread-local and the blocked builder fans out):
    /// Portable and AVX2 share the bit contract with the scalar
    /// `em_vector::dot` path, while the AVX-512 tier is
    /// tolerance-bounded and may differ by ULPs — its agreement is
    /// gated by the workspace `simd_tolerance` suite instead.
    #[test]
    fn blocked_builder_is_bit_identical_to_scalar() {
        let (e, kinds, confs) = random_pool(173, 23, 42);
        let clusters = ragged_clusters(173);
        let config = EdgeConfig {
            q: 4,
            extra_ratio: 0.05,
        };
        let scalar = build_graph(&DotSim::new(&e), &kinds, &confs, &clusters, config).unwrap();
        let blocked = rayon::serial_scope(|| {
            em_vector::with_simd_tier(em_vector::SimdTier::Avx2, || {
                build_graph_blocked(
                    &e,
                    &kinds,
                    &confs,
                    &clusters,
                    &BlockedConfig {
                        edge: config,
                        ann_threshold: usize::MAX,
                        ..Default::default()
                    },
                )
            })
        })
        .unwrap();
        assert_eq!(scalar.n_edges(), blocked.n_edges());
        for v in 0..scalar.len() {
            let a = scalar.neighbors(v);
            let b = blocked.neighbors(v);
            assert_eq!(a.len(), b.len(), "degree of {v}");
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.0, y.0, "neighbour order of {v}");
                assert_eq!(x.1.to_bits(), y.1.to_bits(), "weight bits of {v}–{}", x.0);
            }
        }
    }

    /// Golden test: parallel and serial runs of the blocked builder
    /// agree bit-for-bit.
    #[test]
    fn blocked_builder_parallel_equals_serial() {
        let (e, kinds, confs) = random_pool(140, 17, 7);
        let clusters = ragged_clusters(140);
        let config = BlockedConfig::default();
        let par = build_graph_blocked(&e, &kinds, &confs, &clusters, &config).unwrap();
        let ser = rayon::serial_scope(|| {
            build_graph_blocked(&e, &kinds, &confs, &clusters, &config).unwrap()
        });
        assert_eq!(par.edges(), ser.edges());
        for v in 0..par.len() {
            assert_eq!(par.neighbors(v), ser.neighbors(v));
        }
    }

    #[test]
    fn blocked_builder_validates_like_scalar() {
        let (e, kinds, confs) = random_pool(10, 4, 1);
        // Overlapping clusters rejected.
        assert!(build_graph_blocked(
            &e,
            &kinds,
            &confs,
            &[vec![0, 1], vec![1, 2]],
            &BlockedConfig::default(),
        )
        .is_err());
        // Row-count mismatch rejected.
        let small = e.gather(&[0, 1, 2]).unwrap();
        assert!(build_graph_blocked(
            &small,
            &kinds,
            &confs,
            &[vec![0, 1]],
            &BlockedConfig::default(),
        )
        .is_err());
        // Bad edge config rejected.
        assert!(build_graph_blocked(
            &e,
            &kinds,
            &confs,
            &[vec![0, 1]],
            &BlockedConfig {
                edge: EdgeConfig {
                    q: 0,
                    extra_ratio: 0.1,
                },
                ..Default::default()
            },
        )
        .is_err());
    }

    /// ANN routing: clusters above the threshold still produce a valid,
    /// deterministic graph with the expected connectivity (approximate,
    /// so compared structurally rather than bit-wise).
    #[test]
    fn ann_routed_cluster_is_deterministic_and_connected() {
        let (e, kinds, confs) = random_pool(220, 16, 9);
        let clusters = vec![(0..220).collect::<Vec<_>>()];
        let config = BlockedConfig {
            edge: EdgeConfig {
                q: 5,
                extra_ratio: 0.01,
            },
            ann_threshold: 100, // force the ANN path
            ann_seed: 77,
        };
        let a = build_graph_blocked(&e, &kinds, &confs, &clusters, &config).unwrap();
        let b = build_graph_blocked(&e, &kinds, &confs, &clusters, &config).unwrap();
        assert_eq!(a.edges(), b.edges(), "ANN path must be deterministic");
        // Every unlabeled node found at least one allowed neighbour.
        for v in 0..a.len() {
            assert!(a.degree(v) >= 1, "isolated node {v}");
        }
        // No labeled–labeled edges.
        for (u, v, _) in a.edges() {
            assert!(!(kinds[u].is_labeled() && kinds[v].is_labeled()));
        }
        // Edge density in the same ballpark as the exact path.
        let exact = build_graph_blocked(
            &e,
            &kinds,
            &confs,
            &clusters,
            &BlockedConfig {
                ann_threshold: usize::MAX,
                ..config
            },
        )
        .unwrap();
        let lo = exact.n_edges() / 2;
        let hi = exact.n_edges() * 2;
        assert!(
            (lo..=hi).contains(&a.n_edges()),
            "ANN edges {} vs exact {}",
            a.n_edges(),
            exact.n_edges()
        );
    }
}
