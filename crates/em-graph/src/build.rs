//! Edge creation (paper §3.3.2).
//!
//! Per cluster, two stages:
//!
//! 1. **q-NN stage** — every node is connected to its `q` most similar
//!    in-cluster peers ("each node shall be connected to a minimal number
//!    of neighbors"); the union over directed selections is undirected
//!    and deduplicated, so central nodes end up with more than `q` edges.
//! 2. **top-ratio stage** — the remaining allowed in-cluster pairs are
//!    sorted by descending similarity and the top
//!    `⌊extra_ratio · remaining⌋` become edges ("the total number of
//!    additional edges is proportional to the cluster size ... a more
//!    central node is more likely to be connected to a larger number of
//!    nodes").
//!
//! Labeled–labeled pairs are excluded in both stages ("we do not directly
//! connect two labeled pairs, as they are not a target for the certainty
//! calculations"). The worked Example 4 (Figure 4 + Table 2) is
//! reproduced verbatim in this module's tests.

use em_core::{EmError, Result};
use em_vector::Embeddings;

use crate::graph::{NodeKind, PairGraph};

/// A symmetric similarity provider over node indices.
///
/// Production code uses [`EmbeddingSim`] (cosine over pair
/// representations); tests use [`MatrixSim`] to encode the paper's
/// Table 2 directly.
pub trait Similarity {
    /// Similarity between nodes `i` and `j` (symmetric).
    fn sim(&self, i: usize, j: usize) -> f32;
}

/// Cosine similarity over embedding rows.
pub struct EmbeddingSim<'a> {
    embeddings: &'a Embeddings,
}

impl<'a> EmbeddingSim<'a> {
    /// Wrap an embedding matrix.
    pub fn new(embeddings: &'a Embeddings) -> Self {
        EmbeddingSim { embeddings }
    }
}

impl Similarity for EmbeddingSim<'_> {
    #[inline]
    fn sim(&self, i: usize, j: usize) -> f32 {
        self.embeddings.cosine(i, j)
    }
}

/// Dot-product similarity over rows that the caller has already
/// L2-normalized (see [`Embeddings::normalize_rows`]).
///
/// Equivalent to [`EmbeddingSim`] on normalized data but ~3× cheaper in
/// the edge-creation hot loop, which evaluates `O(m²)` similarities per
/// cluster.
pub struct DotSim<'a> {
    embeddings: &'a Embeddings,
}

impl<'a> DotSim<'a> {
    /// Wrap a matrix of unit-norm rows.
    pub fn new(normalized: &'a Embeddings) -> Self {
        DotSim {
            embeddings: normalized,
        }
    }
}

impl Similarity for DotSim<'_> {
    #[inline]
    fn sim(&self, i: usize, j: usize) -> f32 {
        em_vector::dot(self.embeddings.row(i), self.embeddings.row(j))
    }
}

/// A dense symmetric similarity matrix (for tests and small inputs).
pub struct MatrixSim {
    n: usize,
    values: Vec<f32>,
}

impl MatrixSim {
    /// Build from an upper-triangular list `(i, j, sim)` with `i < j`.
    pub fn from_entries(n: usize, entries: &[(usize, usize, f32)]) -> Result<Self> {
        let mut values = vec![0.0f32; n * n];
        for &(i, j, s) in entries {
            if i >= n || j >= n || i == j {
                return Err(EmError::InvalidConfig(format!(
                    "bad similarity entry ({i},{j}) for n={n}"
                )));
            }
            values[i * n + j] = s;
            values[j * n + i] = s;
        }
        Ok(MatrixSim { n, values })
    }
}

impl Similarity for MatrixSim {
    #[inline]
    fn sim(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.n && j < self.n);
        self.values[i * self.n + j]
    }
}

/// Edge-creation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeConfig {
    /// Nearest neighbours per node (the paper uses 15, §4.2; its worked
    /// example uses 2).
    pub q: usize,
    /// Fraction of the remaining allowed pairs to connect (the paper uses
    /// 0.03, §4.2; its worked example uses 0.15).
    pub extra_ratio: f64,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        EdgeConfig {
            q: 15,
            extra_ratio: 0.03,
        }
    }
}

impl EdgeConfig {
    fn validate(&self) -> Result<()> {
        if self.q == 0 {
            return Err(EmError::InvalidConfig("edge config q must be > 0".into()));
        }
        if !(0.0..=1.0).contains(&self.extra_ratio) {
            return Err(EmError::InvalidConfig(format!(
                "extra_ratio {} outside [0,1]",
                self.extra_ratio
            )));
        }
        Ok(())
    }
}

/// Whether an edge between `a` and `b` is permitted.
#[inline]
fn allowed(kinds: &[NodeKind], a: usize, b: usize) -> bool {
    !(kinds[a].is_labeled() && kinds[b].is_labeled())
}

/// Build the pair graph over `kinds.len()` nodes partitioned into
/// `clusters` (disjoint lists of node indices), using `sim` for edge
/// weights.
///
/// Every cluster contributes its own edges; nodes of different clusters
/// are never connected, so each cluster yields one or more connected
/// components (§3.3.2: "each cluster yields one (or more) connected
/// components").
pub fn build_graph<S: Similarity>(
    sim: &S,
    kinds: &[NodeKind],
    confidences: &[f32],
    clusters: &[Vec<usize>],
    config: EdgeConfig,
) -> Result<PairGraph> {
    config.validate()?;
    let n = kinds.len();
    let mut seen = vec![false; n];
    for cluster in clusters {
        for &v in cluster {
            if v >= n {
                return Err(EmError::IndexOutOfBounds {
                    context: "cluster member".into(),
                    index: v,
                    len: n,
                });
            }
            if seen[v] {
                return Err(EmError::InvalidConfig(format!(
                    "node {v} appears in more than one cluster"
                )));
            }
            seen[v] = true;
        }
    }

    let mut graph = PairGraph::new(kinds.to_vec(), confidences.to_vec())?;

    for cluster in clusters {
        let m = cluster.len();
        if m < 2 {
            continue;
        }

        // Stage 1: q nearest allowed neighbours per node.
        for (pos, &v) in cluster.iter().enumerate() {
            // Collect allowed candidates with similarity; partial sort.
            let mut cands: Vec<(usize, f32)> = Vec::with_capacity(m - 1);
            for (other_pos, &u) in cluster.iter().enumerate() {
                if other_pos == pos || !allowed(kinds, v, u) {
                    continue;
                }
                cands.push((u, sim.sim(v, u)));
            }
            cands.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            });
            for &(u, w) in cands.iter().take(config.q) {
                if !graph.has_edge(v, u) {
                    graph.add_edge(v, u, sanitize_weight(w))?;
                }
            }
        }

        // Stage 2: top fraction of the remaining allowed pairs.
        let mut remaining: Vec<(usize, usize, f32)> = Vec::new();
        for a_pos in 0..m {
            for b_pos in a_pos + 1..m {
                let (a, b) = (cluster[a_pos], cluster[b_pos]);
                if !allowed(kinds, a, b) || graph.has_edge(a, b) {
                    continue;
                }
                remaining.push((a, b, sim.sim(a, b)));
            }
        }
        let extra = (config.extra_ratio * remaining.len() as f64).floor() as usize;
        if extra > 0 {
            remaining.sort_by(|x, y| {
                y.2.partial_cmp(&x.2)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then((x.0, x.1).cmp(&(y.0, y.1)))
            });
            for &(a, b, w) in remaining.iter().take(extra) {
                graph.add_edge(a, b, sanitize_weight(w))?;
            }
        }
    }

    Ok(graph)
}

/// Edge weights must be positive for PageRank; cosine similarities of
/// near-antipodal representations can be ≤ 0, so clamp to a small floor.
#[inline]
fn sanitize_weight(w: f32) -> f32 {
    if w.is_finite() {
        w.max(1e-6)
    } else {
        1e-6
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// The similarity matrix of the paper's Table 2 (off-diagonal values;
    /// the diagonal of the table holds model confidences, which live in
    /// `confidences` instead).
    pub(crate) fn paper_example_sim() -> MatrixSim {
        // s1..s8 are nodes 0..7.
        MatrixSim::from_entries(
            8,
            &[
                (0, 1, 0.9),
                (0, 2, 0.5),
                (0, 3, 0.6),
                (0, 4, 0.85),
                (0, 5, 0.5),
                (0, 6, 0.9),
                (0, 7, 0.82),
                (1, 2, 0.55),
                (1, 3, 0.58),
                (1, 4, 0.92),
                (1, 5, 0.45),
                (1, 6, 0.83),
                (1, 7, 0.6),
                (2, 3, 0.75),
                (2, 4, 0.67),
                (2, 5, 0.56),
                (2, 6, 0.4),
                (2, 7, 0.38),
                (3, 4, 0.88),
                (3, 5, 0.84),
                (3, 6, 0.5),
                (3, 7, 0.55),
                (4, 5, 0.57),
                (4, 6, 0.63),
                (4, 7, 0.65),
                (5, 6, 0.41),
                (5, 7, 0.54),
                (6, 7, 0.64),
            ],
        )
        .unwrap()
    }

    pub(crate) fn paper_example_kinds() -> Vec<NodeKind> {
        vec![
            NodeKind::PredictedMatch,    // s1
            NodeKind::PredictedMatch,    // s2
            NodeKind::PredictedMatch,    // s3
            NodeKind::PredictedMatch,    // s4
            NodeKind::PredictedNonMatch, // s5
            NodeKind::PredictedNonMatch, // s6
            NodeKind::LabeledMatch,      // s7
            NodeKind::LabeledNonMatch,   // s8
        ]
    }

    pub(crate) fn paper_example_confidences() -> Vec<f32> {
        // Diagonal of Table 2: model confidence in the assigned label;
        // labeled samples get 1.
        vec![0.95, 0.92, 0.96, 0.94, 0.98, 0.88, 1.0, 1.0]
    }

    /// Reproduces the paper's Example 4 (Figure 4 + Table 2) exactly:
    /// q = 2, extra ratio 0.15, one cluster of 8 samples.
    #[test]
    fn example4_edge_creation_matches_paper() {
        let sim = paper_example_sim();
        let kinds = paper_example_kinds();
        let conf = paper_example_confidences();
        let clusters = vec![(0..8).collect::<Vec<_>>()];
        let g = build_graph(
            &sim,
            &kinds,
            &conf,
            &clusters,
            EdgeConfig {
                q: 2,
                extra_ratio: 0.15,
            },
        )
        .unwrap();

        // Stage-1 edges derived in the paper's prose: each sample joins
        // its two nearest neighbours (labeled–labeled excluded). The union
        // is 11 undirected edges; the paper's "12 created" counts the
        // forbidden s7–s8 slot, but its remaining-candidate count (16) and
        // the two extra edges it derives agree with this edge set.
        let expected_stage1 = [
            (0, 1), // s1–s2 (0.9)
            (0, 6), // s1–s7 (0.9)
            (1, 4), // s2–s5 (0.92)
            (2, 3), // s3–s4 (0.75)
            (2, 4), // s3–s5 (0.67)
            (3, 4), // s4–s5 (0.88)
            (3, 5), // s4–s6 (0.84)
            (4, 5), // s5–s6 from s6's 2-NN (0.57)
            (1, 6), // s2–s7 from s7's 2-NN (0.83)
            (0, 7), // s1–s8 from s8's 2-NN (0.82)
            (4, 7), // s5–s8 from s8's 2-NN (0.65)
        ];
        // Stage-2: 16 remaining allowed pairs, ⌊0.15·16⌋ = 2 extra edges —
        // the two highest-similarity remaining pairs s1–s5 (0.85) and
        // s5–s7 (0.63), as the paper derives.
        let expected_stage2 = [(0, 4), (4, 6)];

        for &(u, v) in expected_stage1.iter().chain(&expected_stage2) {
            assert!(
                g.has_edge(u, v),
                "expected edge s{}–s{} missing",
                u + 1,
                v + 1
            );
        }
        assert_eq!(
            g.n_edges(),
            expected_stage1.len() + expected_stage2.len(),
            "edge set: {:?}",
            g.edges()
        );
        // The labeled–labeled pair s7–s8 must not be connected even though
        // its similarity (0.64) exceeds that of s5–s7 (0.63).
        assert!(!g.has_edge(6, 7));
    }

    #[test]
    fn edge_weights_are_similarities() {
        let sim = paper_example_sim();
        let g = build_graph(
            &sim,
            &paper_example_kinds(),
            &paper_example_confidences(),
            &[(0..8).collect()],
            EdgeConfig {
                q: 2,
                extra_ratio: 0.15,
            },
        )
        .unwrap();
        assert!((g.edge_weight(0, 1).unwrap() - 0.9).abs() < 1e-6);
        assert!((g.edge_weight(0, 4).unwrap() - 0.85).abs() < 1e-6);
        assert!((g.edge_weight(4, 6).unwrap() - 0.63).abs() < 1e-6);
    }

    #[test]
    fn clusters_are_never_bridged() {
        let sim = MatrixSim::from_entries(
            4,
            &[
                (0, 1, 0.9),
                (0, 2, 0.95), // cross-cluster, must be ignored
                (1, 3, 0.99), // cross-cluster, must be ignored
                (2, 3, 0.8),
            ],
        )
        .unwrap();
        let kinds = vec![NodeKind::PredictedMatch; 4];
        let conf = vec![0.9; 4];
        let g = build_graph(
            &sim,
            &kinds,
            &conf,
            &[vec![0, 1], vec![2, 3]],
            EdgeConfig {
                q: 2,
                extra_ratio: 1.0,
            },
        )
        .unwrap();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 3));
        assert_eq!(g.n_edges(), 2);
    }

    #[test]
    fn singleton_and_empty_clusters_are_fine() {
        let sim = MatrixSim::from_entries(3, &[(0, 1, 0.5)]).unwrap();
        let kinds = vec![NodeKind::PredictedNonMatch; 3];
        let conf = vec![0.8; 3];
        let g = build_graph(
            &sim,
            &kinds,
            &conf,
            &[vec![0, 1], vec![2], vec![]],
            EdgeConfig::default(),
        )
        .unwrap();
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn overlapping_clusters_rejected() {
        let sim = MatrixSim::from_entries(3, &[]).unwrap();
        let kinds = vec![NodeKind::PredictedMatch; 3];
        let conf = vec![0.9; 3];
        let err = build_graph(
            &sim,
            &kinds,
            &conf,
            &[vec![0, 1], vec![1, 2]],
            EdgeConfig::default(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn q_larger_than_cluster_connects_everything_allowed() {
        let sim = paper_example_sim();
        let g = build_graph(
            &sim,
            &paper_example_kinds(),
            &paper_example_confidences(),
            &[(0..8).collect()],
            EdgeConfig {
                q: 50,
                extra_ratio: 0.0,
            },
        )
        .unwrap();
        // Complete graph minus the one labeled–labeled pair: C(8,2) − 1.
        assert_eq!(g.n_edges(), 27);
    }

    #[test]
    fn extra_ratio_one_connects_all_allowed() {
        let sim = paper_example_sim();
        let g = build_graph(
            &sim,
            &paper_example_kinds(),
            &paper_example_confidences(),
            &[(0..8).collect()],
            EdgeConfig {
                q: 1,
                extra_ratio: 1.0,
            },
        )
        .unwrap();
        assert_eq!(g.n_edges(), 27);
        assert!(!g.has_edge(6, 7));
    }

    #[test]
    fn validates_config() {
        let sim = MatrixSim::from_entries(2, &[]).unwrap();
        let kinds = vec![NodeKind::PredictedMatch; 2];
        let conf = vec![0.5; 2];
        assert!(build_graph(
            &sim,
            &kinds,
            &conf,
            &[vec![0, 1]],
            EdgeConfig {
                q: 0,
                extra_ratio: 0.1
            }
        )
        .is_err());
        assert!(build_graph(
            &sim,
            &kinds,
            &conf,
            &[vec![0, 1]],
            EdgeConfig {
                q: 2,
                extra_ratio: 1.5
            }
        )
        .is_err());
    }

    #[test]
    fn matrix_sim_validates_entries() {
        assert!(MatrixSim::from_entries(2, &[(0, 0, 1.0)]).is_err());
        assert!(MatrixSim::from_entries(2, &[(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn embedding_sim_wraps_cosine() {
        let e = Embeddings::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let s = EmbeddingSim::new(&e);
        assert!(s.sim(0, 1).abs() < 1e-6);
        assert!((s.sim(0, 2) - (0.5f32).sqrt()).abs() < 1e-5);
    }
}
