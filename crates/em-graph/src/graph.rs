//! The pair-graph data structure.
//!
//! `G = (V, E)` where each node represents a candidate tuple pair, carries
//! the model confidence `ϕ(v)` in its assigned label, and each weighted
//! edge `π(e)` holds the cosine similarity of the two pair representations
//! (§3.3). Node identity is positional: node `i` of the graph corresponds
//! to element `i` of whatever slice of pairs the caller built the graph
//! over (the battleship runner keeps the mapping to global pair indices).

use em_core::{EmError, Result};

/// The role of a node in the heterogeneous graph of §3.3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Unlabeled, model-predicted match (pool).
    PredictedMatch,
    /// Unlabeled, model-predicted non-match (pool).
    PredictedNonMatch,
    /// Labeled match (train set).
    LabeledMatch,
    /// Labeled non-match (train set).
    LabeledNonMatch,
}

impl NodeKind {
    /// `true` for nodes already labeled by the oracle.
    #[inline]
    pub fn is_labeled(self) -> bool {
        matches!(self, NodeKind::LabeledMatch | NodeKind::LabeledNonMatch)
    }

    /// `true` for nodes on the match side (predicted or labeled).
    #[inline]
    pub fn is_match_side(self) -> bool {
        matches!(self, NodeKind::PredictedMatch | NodeKind::LabeledMatch)
    }
}

/// An undirected weighted pair graph.
///
/// Adjacency is stored per node; every undirected edge appears in both
/// endpoint lists (which is also how PageRank consumes it, the paper
/// producing "two inversely directed edges for each edge", §3.5.2).
#[derive(Debug, Clone)]
pub struct PairGraph {
    kinds: Vec<NodeKind>,
    /// `ϕ(v)`: confidence in the node's assigned label; 1.0 for labeled
    /// nodes (§3.5.1).
    confidence: Vec<f32>,
    adj: Vec<Vec<(u32, f32)>>,
    n_edges: usize,
}

impl PairGraph {
    /// Create an edgeless graph over nodes with the given kinds and
    /// confidences.
    ///
    /// Labeled nodes must carry confidence 1.0 (enforced here rather than
    /// silently rewritten, so construction bugs surface early);
    /// confidences must lie in `[0, 1]`.
    pub fn new(kinds: Vec<NodeKind>, confidence: Vec<f32>) -> Result<Self> {
        if kinds.len() != confidence.len() {
            return Err(EmError::DimensionMismatch {
                context: "PairGraph kinds vs confidences".into(),
                expected: kinds.len(),
                actual: confidence.len(),
            });
        }
        for (i, (&k, &c)) in kinds.iter().zip(&confidence).enumerate() {
            if !(0.0..=1.0).contains(&c) {
                return Err(EmError::InvalidConfig(format!(
                    "node {i} confidence {c} outside [0,1]"
                )));
            }
            if k.is_labeled() && (c - 1.0).abs() > 1e-6 {
                return Err(EmError::InvalidConfig(format!(
                    "labeled node {i} must have confidence 1.0, got {c}"
                )));
            }
        }
        let n = kinds.len();
        Ok(PairGraph {
            kinds,
            confidence,
            adj: vec![Vec::new(); n],
            n_edges: 0,
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// `true` iff the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Kind of node `v`.
    #[inline]
    pub fn kind(&self, v: usize) -> NodeKind {
        self.kinds[v]
    }

    /// `ϕ(v)` — confidence in the node's assigned label.
    #[inline]
    pub fn confidence(&self, v: usize) -> f32 {
        self.confidence[v]
    }

    /// Neighbours of `v` with edge weights.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[(u32, f32)] {
        &self.adj[v]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Add an undirected edge with weight `w`.
    ///
    /// Rejects self-loops, duplicate edges, labeled–labeled edges (the
    /// §3.3.2 exclusion: "we do not directly connect two labeled pairs")
    /// and non-positive weights (similarities of connected pairs are
    /// positive by construction; PageRank requires positive weights).
    pub fn add_edge(&mut self, u: usize, v: usize, w: f32) -> Result<()> {
        let n = self.len();
        if u >= n || v >= n {
            return Err(EmError::IndexOutOfBounds {
                context: "PairGraph edge endpoint".into(),
                index: u.max(v),
                len: n,
            });
        }
        if u == v {
            return Err(EmError::InvalidConfig(format!("self-loop on node {u}")));
        }
        if self.kinds[u].is_labeled() && self.kinds[v].is_labeled() {
            return Err(EmError::InvalidConfig(format!(
                "edge ({u},{v}) would connect two labeled nodes"
            )));
        }
        if w <= 0.0 || !w.is_finite() {
            return Err(EmError::InvalidConfig(format!(
                "edge ({u},{v}) weight {w} must be positive and finite"
            )));
        }
        if self.has_edge(u, v) {
            return Err(EmError::InvalidConfig(format!("duplicate edge ({u},{v})")));
        }
        self.adj[u].push((v as u32, w));
        self.adj[v].push((u as u32, w));
        self.n_edges += 1;
        Ok(())
    }

    /// `true` iff an edge `{u, v}` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        let (probe, other) = if self.adj[u].len() <= self.adj[v].len() {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[probe].iter().any(|&(x, _)| x as usize == other)
    }

    /// Weight of edge `{u, v}`, if present.
    pub fn edge_weight(&self, u: usize, v: usize) -> Option<f32> {
        self.adj[u]
            .iter()
            .find(|&&(x, _)| x as usize == v)
            .map(|&(_, w)| w)
    }

    /// All undirected edges as `(u, v, w)` with `u < v`, sorted.
    pub fn edges(&self) -> Vec<(usize, usize, f32)> {
        let mut out = Vec::with_capacity(self.n_edges);
        for u in 0..self.len() {
            for &(v, w) in &self.adj[u] {
                let v = v as usize;
                if u < v {
                    out.push((u, v, w));
                }
            }
        }
        out.sort_by_key(|a| (a.0, a.1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_graph(n: usize) -> PairGraph {
        PairGraph::new(vec![NodeKind::PredictedMatch; n], vec![0.9; n]).unwrap()
    }

    #[test]
    fn kinds_and_flags() {
        assert!(NodeKind::LabeledMatch.is_labeled());
        assert!(NodeKind::LabeledNonMatch.is_labeled());
        assert!(!NodeKind::PredictedMatch.is_labeled());
        assert!(NodeKind::PredictedMatch.is_match_side());
        assert!(NodeKind::LabeledMatch.is_match_side());
        assert!(!NodeKind::PredictedNonMatch.is_match_side());
    }

    #[test]
    fn construction_validates_confidences() {
        assert!(PairGraph::new(vec![NodeKind::PredictedMatch], vec![1.5]).is_err());
        assert!(PairGraph::new(vec![NodeKind::LabeledMatch], vec![0.7]).is_err());
        assert!(PairGraph::new(vec![NodeKind::PredictedMatch], vec![0.7, 0.8]).is_err());
        assert!(PairGraph::new(vec![NodeKind::LabeledMatch], vec![1.0]).is_ok());
    }

    #[test]
    fn add_edge_symmetric() {
        let mut g = pool_graph(3);
        g.add_edge(0, 1, 0.8).unwrap();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.edge_weight(0, 1), Some(0.8));
        assert_eq!(g.edge_weight(1, 0), Some(0.8));
        assert_eq!(g.edge_weight(0, 2), None);
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn rejects_bad_edges() {
        let mut g = pool_graph(3);
        assert!(g.add_edge(0, 0, 0.5).is_err()); // self-loop
        assert!(g.add_edge(0, 9, 0.5).is_err()); // out of bounds
        assert!(g.add_edge(0, 1, 0.0).is_err()); // non-positive weight
        assert!(g.add_edge(0, 1, f32::NAN).is_err());
        g.add_edge(0, 1, 0.5).unwrap();
        assert!(g.add_edge(1, 0, 0.6).is_err()); // duplicate
    }

    #[test]
    fn rejects_labeled_labeled_edges() {
        let mut g = PairGraph::new(
            vec![
                NodeKind::LabeledMatch,
                NodeKind::LabeledNonMatch,
                NodeKind::PredictedMatch,
            ],
            vec![1.0, 1.0, 0.6],
        )
        .unwrap();
        assert!(g.add_edge(0, 1, 0.9).is_err());
        assert!(g.add_edge(0, 2, 0.9).is_ok());
        assert!(g.add_edge(1, 2, 0.9).is_ok());
    }

    #[test]
    fn edges_lists_canonical_order() {
        let mut g = pool_graph(4);
        g.add_edge(2, 0, 0.3).unwrap();
        g.add_edge(3, 1, 0.4).unwrap();
        g.add_edge(0, 1, 0.5).unwrap();
        assert_eq!(g.edges(), vec![(0, 1, 0.5), (0, 2, 0.3), (1, 3, 0.4)]);
    }
}
