//! Weighted PageRank centrality (paper Eq. 5).
//!
//! "We use PageRank, a well-known centrality measure for node's
//! importance in a graph ... Since edge directionality is important for
//! PageRank, we produce two inversely directed edges for each edge in a
//! connected component with the same edge weight" (§3.5.2). Our
//! [`crate::PairGraph`] adjacency is already symmetric, which is exactly
//! that construction. The update implemented here is Eq. 5:
//!
//! ```text
//! S_cen(v) = ρ · Σ_{v'∈N(v)} A(v,v') · S_cen(v') / Σ_{v''} A(v',v'')
//!            + (1 − ρ) / |V_cc|
//! ```
//!
//! computed per connected component by power iteration.

use em_core::{EmError, Result};

use crate::graph::PairGraph;

/// PageRank parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor ρ (the paper's "sampling parameter ... to avoid
    /// dead-end situations"). 0.85 is the classic value.
    pub rho: f64,
    /// Maximum power iterations.
    pub max_iters: usize,
    /// L1 convergence threshold.
    pub tol: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            rho: 0.85,
            max_iters: 100,
            tol: 1e-9,
        }
    }
}

impl PageRankConfig {
    fn validate(&self) -> Result<()> {
        if !(0.0..1.0).contains(&self.rho) {
            return Err(EmError::InvalidConfig(format!(
                "PageRank rho {} must be in [0,1)",
                self.rho
            )));
        }
        if self.max_iters == 0 {
            return Err(EmError::InvalidConfig(
                "PageRank needs at least one iteration".into(),
            ));
        }
        Ok(())
    }
}

/// PageRank scores for the nodes of one connected component.
///
/// `component` lists the node ids of the component; the returned vector is
/// aligned with it and sums to 1. Nodes with no neighbours inside the
/// component (possible only for singleton components) get score 1.
pub fn pagerank(
    graph: &PairGraph,
    component: &[usize],
    config: PageRankConfig,
) -> Result<Vec<f64>> {
    config.validate()?;
    let m = component.len();
    if m == 0 {
        return Err(EmError::EmptyInput("pagerank component".into()));
    }

    // Local index lookup.
    let mut local = std::collections::HashMap::with_capacity(m);
    for (li, &v) in component.iter().enumerate() {
        local.insert(v, li);
    }

    // Out-weight totals (= in-weight totals, the graph is symmetric).
    let mut out_weight = vec![0.0f64; m];
    for (li, &v) in component.iter().enumerate() {
        for &(u, w) in graph.neighbors(v) {
            if local.contains_key(&(u as usize)) {
                out_weight[li] += w as f64;
            } else {
                return Err(EmError::InvalidConfig(format!(
                    "node {v} has neighbour {u} outside its component"
                )));
            }
        }
    }
    if m == 1 {
        return Ok(vec![1.0]);
    }

    let teleport = (1.0 - config.rho) / m as f64;
    let mut rank = vec![1.0 / m as f64; m];
    let mut next = vec![0.0f64; m];

    for _ in 0..config.max_iters {
        next.iter_mut().for_each(|x| *x = teleport);
        let mut dangling_mass = 0.0f64;
        for (li, &v) in component.iter().enumerate() {
            if out_weight[li] <= 0.0 {
                dangling_mass += rank[li];
                continue;
            }
            let share = config.rho * rank[li] / out_weight[li];
            for &(u, w) in graph.neighbors(v) {
                let lu = local[&(u as usize)];
                next[lu] += share * w as f64;
            }
        }
        // Dangling nodes spread their mass uniformly (standard fix; only
        // relevant for degenerate components).
        if dangling_mass > 0.0 {
            let spread = config.rho * dangling_mass / m as f64;
            for x in next.iter_mut() {
                *x += spread;
            }
        }
        let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < config.tol {
            break;
        }
    }
    Ok(rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    fn pool_graph(n: usize) -> PairGraph {
        PairGraph::new(vec![NodeKind::PredictedMatch; n], vec![0.9; n]).unwrap()
    }

    #[test]
    fn scores_sum_to_one() {
        let mut g = pool_graph(5);
        g.add_edge(0, 1, 0.9).unwrap();
        g.add_edge(1, 2, 0.8).unwrap();
        g.add_edge(2, 3, 0.7).unwrap();
        g.add_edge(3, 4, 0.6).unwrap();
        g.add_edge(4, 0, 0.5).unwrap();
        let pr = pagerank(&g, &[0, 1, 2, 3, 4], PageRankConfig::default()).unwrap();
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(pr.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn star_center_is_most_central() {
        let mut g = pool_graph(6);
        for leaf in 1..6 {
            g.add_edge(0, leaf, 0.8).unwrap();
        }
        let pr = pagerank(&g, &[0, 1, 2, 3, 4, 5], PageRankConfig::default()).unwrap();
        for leaf in 1..6 {
            assert!(pr[0] > pr[leaf], "center {} leaf {}", pr[0], pr[leaf]);
        }
        // Leaves are symmetric.
        for leaf in 2..6 {
            assert!((pr[1] - pr[leaf]).abs() < 1e-9);
        }
    }

    #[test]
    fn symmetric_ring_is_uniform() {
        let mut g = pool_graph(4);
        g.add_edge(0, 1, 0.5).unwrap();
        g.add_edge(1, 2, 0.5).unwrap();
        g.add_edge(2, 3, 0.5).unwrap();
        g.add_edge(3, 0, 0.5).unwrap();
        let pr = pagerank(&g, &[0, 1, 2, 3], PageRankConfig::default()).unwrap();
        for &x in &pr {
            assert!((x - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn heavier_edges_attract_rank() {
        // Triangle where node 2's incident edges are heavier.
        let mut g = pool_graph(3);
        g.add_edge(0, 1, 0.1).unwrap();
        g.add_edge(1, 2, 0.9).unwrap();
        g.add_edge(0, 2, 0.9).unwrap();
        let pr = pagerank(&g, &[0, 1, 2], PageRankConfig::default()).unwrap();
        assert!(pr[2] > pr[0]);
        assert!(pr[2] > pr[1]);
    }

    #[test]
    fn singleton_component_scores_one() {
        let g = pool_graph(3);
        let pr = pagerank(&g, &[1], PageRankConfig::default()).unwrap();
        assert_eq!(pr, vec![1.0]);
    }

    #[test]
    fn rejects_cross_component_neighbours() {
        let mut g = pool_graph(3);
        g.add_edge(0, 1, 0.5).unwrap();
        // Component listing only node 0 is wrong — 1 is its neighbour.
        assert!(pagerank(&g, &[0], PageRankConfig::default()).is_err());
    }

    #[test]
    fn validates_config() {
        let g = pool_graph(2);
        assert!(pagerank(
            &g,
            &[0, 1],
            PageRankConfig {
                rho: 1.0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(pagerank(
            &g,
            &[0, 1],
            PageRankConfig {
                max_iters: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(pagerank(&g, &[], PageRankConfig::default()).is_err());
    }

    #[test]
    fn paper_example_component_ranks_s5_central() {
        // On the Example 4 graph, s5 (node 4) has the highest degree (6
        // incident edges) and should out-rank the periphery.
        use crate::build::{build_graph, EdgeConfig};
        let sim = crate::build::tests::paper_example_sim();
        let g = build_graph(
            &sim,
            &crate::build::tests::paper_example_kinds(),
            &crate::build::tests::paper_example_confidences(),
            &[(0..8).collect()],
            EdgeConfig {
                q: 2,
                extra_ratio: 0.15,
            },
        )
        .unwrap();
        let comp: Vec<usize> = (0..8).collect();
        let pr = pagerank(&g, &comp, PageRankConfig::default()).unwrap();
        let max_node = (0..8)
            .max_by(|&a, &b| pr[a].partial_cmp(&pr[b]).unwrap())
            .unwrap();
        assert_eq!(max_node, 4, "ranks: {pr:?}");
    }
}
