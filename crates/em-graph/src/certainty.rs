//! Certainty: binary entropy, spatial confidence and their blend
//! (paper Eqs. 1, 3, 4).
//!
//! Transformer matchers "tend to produce an uncalibrated confidence
//! value, assigning mostly dichotomous values close to either 0 or 1"
//! (§3.5.1), which starves conditional entropy of signal. The battleship
//! fix is *spatial* confidence: agreement of a node's prediction with its
//! graph neighbourhood (Eq. 3), blended with the model's own entropy via
//! the `β` parameter (Eq. 4). Figure 7 of the paper ablates `β`; the
//! worked Example 7 (ϕ̃(s₁) ≈ 0.51) is a test in this module.

use em_core::{EmError, Result};

use crate::graph::PairGraph;

/// Binary (Shannon) entropy `H(p) = −p·log₂ p − (1−p)·log₂(1−p)` (Eq. 1).
///
/// Defined to be 0 at `p ∈ {0, 1}`; maximal (1.0) at `p = 0.5`.
pub fn binary_entropy(p: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) {
        // Clamp minor float drift instead of poisoning scores with NaN.
        return binary_entropy(p.clamp(0.0, 1.0));
    }
    if p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
}

/// Spatial confidence `ϕ̃(v)` (Eq. 3): the weight-and-confidence mass of
/// the neighbours that agree with `v`'s side, over the mass of all
/// neighbours.
///
/// ```text
/// ϕ̃(v) = Σ_{v'∈N*(v)} π(v,v')·ϕ(v')  /  Σ_{v'∈N(v)} π(v,v')·ϕ(v')
/// ```
///
/// where `N*(v)` keeps the neighbours whose prediction/label side matches
/// `v`'s. A node with no neighbours falls back to its own model
/// confidence `ϕ(v)` (the graph carries no spatial evidence about it).
pub fn spatial_confidence(graph: &PairGraph, v: usize) -> Result<f64> {
    if v >= graph.len() {
        return Err(EmError::IndexOutOfBounds {
            context: "spatial_confidence node".into(),
            index: v,
            len: graph.len(),
        });
    }
    let v_side = graph.kind(v).is_match_side();
    let mut agree = 0.0f64;
    let mut total = 0.0f64;
    for &(u, w) in graph.neighbors(v) {
        let u = u as usize;
        let mass = w as f64 * graph.confidence(u) as f64;
        total += mass;
        if graph.kind(u).is_match_side() == v_side {
            agree += mass;
        }
    }
    if total <= 0.0 {
        return Ok(graph.confidence(v) as f64);
    }
    Ok(agree / total)
}

/// The certainty (uncertainty) score `S_unc(v)` (Eq. 4):
///
/// ```text
/// S_unc(v) = β·H(ϕ(v)) + (1−β)·H(ϕ̃(v))
/// ```
///
/// Higher values mean *more uncertain* — the active-learning selection
/// ranks descending by this score, while the weak-supervision component
/// picks its pseudo-labels by *minimizing* it (§3.7).
pub fn certainty_score(graph: &PairGraph, v: usize, beta: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&beta) {
        return Err(EmError::InvalidConfig(format!("beta {beta} outside [0,1]")));
    }
    let local = binary_entropy(graph.confidence(v) as f64);
    let spatial = binary_entropy(spatial_confidence(graph, v)?);
    Ok(beta * local + (1.0 - beta) * spatial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_graph, EdgeConfig};
    use crate::graph::NodeKind;

    #[test]
    fn entropy_shape() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        // Symmetric.
        assert!((binary_entropy(0.2) - binary_entropy(0.8)).abs() < 1e-12);
        // Monotone toward 0.5.
        assert!(binary_entropy(0.3) < binary_entropy(0.4));
        // Out-of-range inputs are clamped, not NaN.
        assert_eq!(binary_entropy(-0.1), 0.0);
        assert_eq!(binary_entropy(1.1), 0.0);
    }

    /// The paper's Example 7: ϕ̃(s₁) = (0.9·0.92 + 0.9·1) /
    /// (0.9·0.92 + 0.9·1 + 0.85·0.98 + 0.82·1) ≈ 0.51.
    #[test]
    fn example7_spatial_confidence_matches_paper() {
        let sim = crate::build::tests::paper_example_sim();
        let g = build_graph(
            &sim,
            &crate::build::tests::paper_example_kinds(),
            &crate::build::tests::paper_example_confidences(),
            &[(0..8).collect()],
            EdgeConfig {
                q: 2,
                extra_ratio: 0.15,
            },
        )
        .unwrap();
        let phi = spatial_confidence(&g, 0).unwrap();
        let expected =
            (0.9 * 0.92 + 0.9 * 1.0) / (0.9 * 0.92 + 0.9 * 1.0 + 0.85 * 0.98 + 0.82 * 1.0);
        // Graph weights/confidences are f32, so compare at f32 precision.
        assert!((phi - expected).abs() < 1e-6, "got {phi}, want {expected}");
        assert!(
            (phi - 0.51).abs() < 0.005,
            "paper rounds to 0.51, got {phi}"
        );
    }

    #[test]
    fn unanimous_neighbourhood_gives_full_confidence() {
        let mut g =
            PairGraph::new(vec![NodeKind::PredictedMatch; 4], vec![0.9, 0.8, 0.7, 0.6]).unwrap();
        g.add_edge(0, 1, 0.5).unwrap();
        g.add_edge(0, 2, 0.5).unwrap();
        g.add_edge(0, 3, 0.5).unwrap();
        assert!((spatial_confidence(&g, 0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hostile_neighbourhood_gives_zero_confidence() {
        let mut g = PairGraph::new(
            vec![
                NodeKind::PredictedMatch,
                NodeKind::PredictedNonMatch,
                NodeKind::LabeledNonMatch,
            ],
            vec![0.9, 0.8, 1.0],
        )
        .unwrap();
        g.add_edge(0, 1, 0.5).unwrap();
        g.add_edge(0, 2, 0.5).unwrap();
        assert_eq!(spatial_confidence(&g, 0).unwrap(), 0.0);
    }

    #[test]
    fn isolated_node_falls_back_to_model_confidence() {
        let g = PairGraph::new(vec![NodeKind::PredictedMatch], vec![0.73]).unwrap();
        assert!((spatial_confidence(&g, 0).unwrap() - 0.73).abs() < 1e-6);
        assert!(spatial_confidence(&g, 5).is_err());
    }

    #[test]
    fn certainty_score_blends_with_beta() {
        let sim = crate::build::tests::paper_example_sim();
        let g = build_graph(
            &sim,
            &crate::build::tests::paper_example_kinds(),
            &crate::build::tests::paper_example_confidences(),
            &[(0..8).collect()],
            EdgeConfig {
                q: 2,
                extra_ratio: 0.15,
            },
        )
        .unwrap();
        let local = binary_entropy(g.confidence(0) as f64);
        let spatial = binary_entropy(spatial_confidence(&g, 0).unwrap());
        let s_half = certainty_score(&g, 0, 0.5).unwrap();
        assert!((s_half - 0.5 * (local + spatial)).abs() < 1e-12);
        // β = 1 is pure model entropy; β = 0 is pure spatial entropy.
        assert!((certainty_score(&g, 0, 1.0).unwrap() - local).abs() < 1e-12);
        assert!((certainty_score(&g, 0, 0.0).unwrap() - spatial).abs() < 1e-12);
        assert!(certainty_score(&g, 0, 1.5).is_err());
    }

    #[test]
    fn disagreeing_node_is_more_uncertain_than_agreeing_node() {
        // s1 (node 0) sits between camps (ϕ̃ ≈ 0.51 → high spatial
        // entropy); s3 (node 2) has match-predicted neighbours only.
        let sim = crate::build::tests::paper_example_sim();
        let g = build_graph(
            &sim,
            &crate::build::tests::paper_example_kinds(),
            &crate::build::tests::paper_example_confidences(),
            &[(0..8).collect()],
            EdgeConfig {
                q: 2,
                extra_ratio: 0.15,
            },
        )
        .unwrap();
        let s1 = certainty_score(&g, 0, 0.0).unwrap();
        let s4 = certainty_score(&g, 3, 0.0).unwrap();
        assert!(
            s1 > s4,
            "boundary node s1 ({s1}) should be more uncertain than interior s4 ({s4})"
        );
    }
}
