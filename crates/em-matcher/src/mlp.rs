//! A multi-layer perceptron with manual backpropagation, computed as
//! layer-level GEMMs.
//!
//! Architecture: `input → [hidden ReLU]* → 1 logit`, sigmoid head,
//! binary cross-entropy loss. The activation of the **last hidden layer**
//! is exposed as the pair representation — the structural analogue of
//! DITTO's `[CLS]` embedding that the battleship algorithm clusters,
//! graphs and searches (§3.2).
//!
//! Parameters are stored flat (one contiguous `Vec<f32>`) so the AdamW
//! optimizer treats the whole network uniformly and snapshots for
//! best-epoch selection are a single memcpy.
//!
//! # Compute engine
//!
//! Both passes run as one layer-level batched product per layer over a
//! reusable [`MlpWorkspace`], in the GEMM order that fits each
//! contraction. The forward pass contracts over the (wide) feature
//! dimension, so it is one dispatched [`em_vector::gemm_bias_relu`] per
//! layer — every inner product one dispatched `dot` (16 fixed lanes,
//! fixed reduction order), making the batched forward **bit-identical**
//! to the per-row [`Mlp::forward`] path on every SIMD tier (the golden
//! tests in this module and in [`crate::matcher`] assert it). The
//! backward pass contracts over the batch / output-unit dimensions,
//! which are far too short for a dot-reduction kernel to amortize, so
//! its two products (`∂W = Δᵀ·A`, `Δ' = Δ·W`) run in outer-product
//! (rank-1 update) order: data-parallel axpy rows with no loop-borne
//! dependency, vectorizing at full width on any tier, with dead ReLU
//! units skipping their rows. The seed's per-sample scalar
//! implementation is preserved verbatim in [`crate::reference`] as the
//! measured baseline.

// Numeric kernels here walk several parallel arrays by index; the
// indexed form keeps the lockstep structure visible.
#![allow(clippy::needless_range_loop)]
use em_core::{EmError, Result, Rng};
use em_vector::gemm_bias_relu;

/// Layer shape metadata over the flat parameter buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LayerSpec {
    pub(crate) in_dim: usize,
    pub(crate) out_dim: usize,
    /// Offset of the weight block (`out_dim × in_dim`, row-major).
    pub(crate) w_off: usize,
    /// Offset of the bias block (`out_dim`).
    pub(crate) b_off: usize,
}

/// Reusable buffers for the batched passes.
///
/// One workspace serves any number of [`Mlp::forward_batch`] /
/// [`Mlp::backward_batch`] calls (of any batch size); buffers grow to
/// the largest batch seen and are reused, so a training run performs no
/// steady-state allocation. Create one per thread — the matcher's
/// parallel predict fans out over row chunks, each with its own
/// workspace.
#[derive(Debug, Default)]
pub struct MlpWorkspace {
    /// `acts[0]` is the packed input batch; `acts[l + 1]` the
    /// post-activation output of layer `l` (`batch × out_dim`).
    acts: Vec<Vec<f32>>,
    /// Delta of the current layer (`batch × out_dim`).
    delta: Vec<f32>,
    /// Delta being back-propagated to the previous layer.
    delta_prev: Vec<f32>,
}

impl MlpWorkspace {
    /// Empty workspace; buffers are sized lazily by the first pass.
    pub fn new() -> Self {
        MlpWorkspace::default()
    }
}

/// The MLP: flat parameters plus layer specs.
#[derive(Debug, Clone)]
pub struct Mlp {
    params: Vec<f32>,
    layers: Vec<LayerSpec>,
    /// `true` for weights (decayed), `false` for biases.
    decay_mask: Vec<bool>,
}

impl Mlp {
    /// Build an MLP `input_dim → hidden[0] → … → hidden[n-1] → 1` with
    /// He-initialized weights.
    pub fn new(input_dim: usize, hidden: &[usize], rng: &mut Rng) -> Result<Self> {
        if input_dim == 0 {
            return Err(EmError::InvalidConfig("MLP input_dim must be > 0".into()));
        }
        if hidden.is_empty() {
            return Err(EmError::InvalidConfig(
                "MLP needs at least one hidden layer (it provides the pair representation)".into(),
            ));
        }
        if hidden.contains(&0) {
            return Err(EmError::InvalidConfig("hidden layer of width 0".into()));
        }
        let mut layers = Vec::with_capacity(hidden.len() + 1);
        let mut offset = 0usize;
        let mut prev = input_dim;
        for &h in hidden.iter().chain(std::iter::once(&1)) {
            layers.push(LayerSpec {
                in_dim: prev,
                out_dim: h,
                w_off: offset,
                b_off: offset + h * prev,
            });
            offset += h * prev + h;
            prev = h;
        }
        let mut params = vec![0.0f32; offset];
        let mut decay_mask = vec![false; offset];
        for spec in &layers {
            // He init: N(0, 2/in_dim) for ReLU layers.
            let std = (2.0 / spec.in_dim as f64).sqrt();
            for i in 0..spec.out_dim * spec.in_dim {
                params[spec.w_off + i] = (rng.normal() * std) as f32;
                decay_mask[spec.w_off + i] = true;
            }
            // Biases stay zero and undecayed.
        }
        Ok(Mlp {
            params,
            layers,
            decay_mask,
        })
    }

    /// Rebuild an MLP from its architecture and a flat parameter buffer
    /// (the inverse of [`Mlp::snapshot`] plus the shape accessors) —
    /// how a persisted matcher checkpoint becomes a live network again.
    ///
    /// `params` must have exactly the length a fresh
    /// `Mlp::new(input_dim, hidden, …)` would allocate.
    pub fn from_params(input_dim: usize, hidden: &[usize], params: Vec<f32>) -> Result<Self> {
        // Mirror `new`'s validation so a malformed checkpoint cannot
        // build a network `new` would have rejected.
        if input_dim == 0 {
            return Err(EmError::InvalidConfig("MLP input_dim must be > 0".into()));
        }
        if hidden.is_empty() {
            return Err(EmError::InvalidConfig(
                "MLP needs at least one hidden layer (it provides the pair representation)".into(),
            ));
        }
        if hidden.contains(&0) {
            return Err(EmError::InvalidConfig("hidden layer of width 0".into()));
        }
        let mut layers = Vec::with_capacity(hidden.len() + 1);
        let mut offset = 0usize;
        let mut prev = input_dim;
        for &h in hidden.iter().chain(std::iter::once(&1)) {
            layers.push(LayerSpec {
                in_dim: prev,
                out_dim: h,
                w_off: offset,
                b_off: offset + h * prev,
            });
            offset += h * prev + h;
            prev = h;
        }
        if params.len() != offset {
            return Err(EmError::DimensionMismatch {
                context: "MLP from_params".into(),
                expected: offset,
                actual: params.len(),
            });
        }
        let mut decay_mask = vec![false; offset];
        for spec in &layers {
            for i in 0..spec.out_dim * spec.in_dim {
                decay_mask[spec.w_off + i] = true;
            }
        }
        Ok(Mlp {
            params,
            layers,
            decay_mask,
        })
    }

    /// Number of parameters.
    pub fn n_params(&self) -> usize {
        self.params.len()
    }

    /// The hidden-layer widths, in order (the `hidden` argument the
    /// network was built with).
    pub fn hidden_dims(&self) -> Vec<usize> {
        self.layers[..self.layers.len() - 1]
            .iter()
            .map(|l| l.out_dim)
            .collect()
    }

    /// Width of the representation (last hidden layer).
    pub fn repr_dim(&self) -> usize {
        self.layers[self.layers.len() - 2].out_dim
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Flat parameter access for the optimizer.
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    /// Flat parameter view (the seed-verbatim reference path reads it).
    pub(crate) fn params(&self) -> &[f32] {
        &self.params
    }

    /// Layer metadata view (the seed-verbatim reference path reads it).
    pub(crate) fn layer_specs(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Weight-decay mask aligned with [`Mlp::params_mut`].
    pub fn decay_mask(&self) -> &[bool] {
        &self.decay_mask
    }

    /// Snapshot the parameters (for best-epoch selection).
    pub fn snapshot(&self) -> Vec<f32> {
        self.params.clone()
    }

    /// Restore a snapshot taken from this network.
    pub fn restore(&mut self, snapshot: &[f32]) -> Result<()> {
        if snapshot.len() != self.params.len() {
            return Err(EmError::DimensionMismatch {
                context: "MLP restore".into(),
                expected: self.params.len(),
                actual: snapshot.len(),
            });
        }
        self.params.copy_from_slice(snapshot);
        Ok(())
    }

    /// Forward pass for one input; returns `(logit, representation)`.
    ///
    /// The representation is the post-ReLU activation of the last hidden
    /// layer. This is the per-row scalar path: each layer output is one
    /// dispatched [`em_vector::dot`] plus the bias — the same arithmetic,
    /// in the same order, as one row of [`Mlp::forward_batch`], so the
    /// two are bit-identical.
    pub fn forward(&self, x: &[f32]) -> Result<(f32, Vec<f32>)> {
        if x.len() != self.input_dim() {
            return Err(EmError::DimensionMismatch {
                context: "MLP forward".into(),
                expected: self.input_dim(),
                actual: x.len(),
            });
        }
        let mut activation = x.to_vec();
        let mut repr = Vec::new();
        for (li, spec) in self.layers.iter().enumerate() {
            let mut next = vec![0.0f32; spec.out_dim];
            for o in 0..spec.out_dim {
                let row = &self.params[spec.w_off + o * spec.in_dim..][..spec.in_dim];
                next[o] = em_vector::kernel::dot(&activation, row) + self.params[spec.b_off + o];
            }
            let is_output = li == self.layers.len() - 1;
            if !is_output {
                for v in &mut next {
                    *v = v.max(0.0);
                }
                if li == self.layers.len() - 2 {
                    repr = next.clone();
                }
            }
            activation = next;
        }
        Ok((activation[0], repr))
    }

    /// Batched forward over `batch` rows packed row-major in `xs`
    /// (`batch × input_dim`). Returns `(logits, representations)` views
    /// into the workspace: `logits` has `batch` entries, the
    /// representations are `batch × repr_dim` row-major.
    ///
    /// One [`em_vector::gemm_bias_relu`] per layer; bit-identical to
    /// calling [`Mlp::forward`] row by row.
    pub fn forward_batch<'w>(
        &self,
        xs: &[f32],
        batch: usize,
        ws: &'w mut MlpWorkspace,
    ) -> Result<(&'w [f32], &'w [f32])> {
        if xs.len() != batch * self.input_dim() {
            return Err(EmError::DimensionMismatch {
                context: "MLP forward_batch".into(),
                expected: batch * self.input_dim(),
                actual: xs.len(),
            });
        }
        if batch == 0 {
            return Err(EmError::EmptyInput("MLP batch".into()));
        }
        ws.acts.resize_with(self.layers.len() + 1, Vec::new);
        ws.acts[0].clear();
        ws.acts[0].extend_from_slice(xs);
        self.forward_batch_packed(batch, ws);
        let n_layers = self.layers.len();
        Ok((&ws.acts[n_layers], &ws.acts[n_layers - 1]))
    }

    /// Forward over the batch already packed in `ws.acts[0]`.
    fn forward_batch_packed(&self, batch: usize, ws: &mut MlpWorkspace) {
        let n_layers = self.layers.len();
        for (li, spec) in self.layers.iter().enumerate() {
            let (prev, rest) = ws.acts.split_at_mut(li + 1);
            let input = &prev[li];
            let out = &mut rest[0];
            out.clear();
            out.resize(batch * spec.out_dim, 0.0);
            gemm_bias_relu(
                input,
                batch,
                &self.params[spec.w_off..spec.w_off + spec.out_dim * spec.in_dim],
                spec.out_dim,
                spec.in_dim,
                &self.params[spec.b_off..spec.b_off + spec.out_dim],
                li != n_layers - 1,
                out,
            );
        }
    }

    /// Forward + backward over a mini-batch; accumulates the mean BCE
    /// gradient into `grads` (zeroed here) and returns the mean loss.
    ///
    /// `targets[i] ∈ {0.0, 1.0}`; `sample_weights` rescales individual
    /// samples (all-ones for the standard loss).
    ///
    /// The whole pass is layer-level: one batched forward
    /// ([`Mlp::forward_batch`] internals, activations cached in `ws`),
    /// then per layer one weight-gradient product (`∂W = Δᵀ·A / batch`)
    /// and one delta propagation (`Δ' = Δ·W`, ReLU-gated), both in
    /// vectorized rank-1-update order (see the module docs) — the
    /// seed's per-sample index loops are preserved in
    /// [`crate::reference::backward_batch_reference`].
    pub fn backward_batch(
        &self,
        xs: &[&[f32]],
        targets: &[f32],
        sample_weights: &[f32],
        ws: &mut MlpWorkspace,
        grads: &mut Vec<f32>,
    ) -> Result<f32> {
        if xs.len() != targets.len() || xs.len() != sample_weights.len() {
            return Err(EmError::DimensionMismatch {
                context: "MLP backward_batch".into(),
                expected: xs.len(),
                actual: targets.len().min(sample_weights.len()),
            });
        }
        if xs.is_empty() {
            return Err(EmError::EmptyInput("MLP batch".into()));
        }
        let batch = xs.len();
        ws.acts.resize_with(self.layers.len() + 1, Vec::new);
        ws.acts[0].clear();
        ws.acts[0].reserve(batch * self.input_dim());
        for &x in xs {
            if x.len() != self.input_dim() {
                return Err(EmError::DimensionMismatch {
                    context: "MLP backward_batch input".into(),
                    expected: self.input_dim(),
                    actual: x.len(),
                });
            }
            ws.acts[0].extend_from_slice(x);
        }
        self.forward_batch_packed(batch, ws);

        grads.clear();
        grads.resize(self.params.len(), 0.0);
        let n_layers = self.layers.len();
        let batch_inv = 1.0 / batch as f32;

        // Borrow the workspace fields disjointly for the backward loop.
        let MlpWorkspace {
            acts,
            delta,
            delta_prev,
        } = ws;

        // Loss and delta at the logit (output layer has width 1).
        let logits = &acts[n_layers];
        let mut total_loss = 0.0f32;
        delta.clear();
        delta.resize(batch, 0.0);
        for s in 0..batch {
            let logit = logits[s];
            let y = targets[s];
            let w = sample_weights[s];
            // Numerically stable BCE-with-logits.
            total_loss += w * (logit.max(0.0) - logit * y + (1.0 + (-logit.abs()).exp()).ln());
            delta[s] = w * (sigmoid(logit) - y);
        }

        for li in (0..n_layers).rev() {
            let spec = self.layers[li];
            let prev_act = &acts[li];
            // Weight + bias gradients: ∂W = Δᵀ·A / batch, ∂b = Δᵀ·1 /
            // batch. The contraction dimension is the batch — far too
            // short for a dot-reduction GEMM to amortize — so this runs
            // the product in outer-product (rank-1 update) order: one
            // data-parallel axpy row per (sample, live output unit).
            // Those rows carry no loop-borne dependency, so they
            // vectorize at full width on any tier, the per-entry
            // reduction is in sample order (the seed's), and dead ReLU
            // units (`d == 0`) skip their whole row.
            let gw_end = spec.w_off + spec.out_dim * spec.in_dim;
            for s in 0..batch {
                let drow = &delta[s * spec.out_dim..(s + 1) * spec.out_dim];
                let arow = &prev_act[s * spec.in_dim..(s + 1) * spec.in_dim];
                for (o, &d) in drow.iter().enumerate() {
                    if d == 0.0 {
                        continue;
                    }
                    let wrow = spec.w_off + o * spec.in_dim;
                    for (g, &a) in grads[wrow..wrow + spec.in_dim].iter_mut().zip(arow) {
                        *g += d * a;
                    }
                    grads[spec.b_off + o] += d;
                }
            }
            for g in &mut grads[spec.w_off..gw_end] {
                *g *= batch_inv;
            }
            for g in &mut grads[spec.b_off..spec.b_off + spec.out_dim] {
                *g *= batch_inv;
            }
            if li == 0 {
                break;
            }
            // Delta propagation: Δ'[s, i] = Σ_o Δ[s, o] · W[o, i], gated
            // by the ReLU derivative (prev activation > 0). Same
            // rank-1-update order (the contraction is over output units,
            // accumulated ascending — the seed's order), axpy rows over
            // the contiguous weight rows.
            delta_prev.clear();
            delta_prev.resize(batch * spec.in_dim, 0.0);
            for s in 0..batch {
                let drow = &delta[s * spec.out_dim..(s + 1) * spec.out_dim];
                let out_row = &mut delta_prev[s * spec.in_dim..(s + 1) * spec.in_dim];
                for (o, &d) in drow.iter().enumerate() {
                    if d == 0.0 {
                        continue;
                    }
                    let wrow = spec.w_off + o * spec.in_dim;
                    for (pd, &w) in out_row
                        .iter_mut()
                        .zip(&self.params[wrow..wrow + spec.in_dim])
                    {
                        *pd += d * w;
                    }
                }
                let arow = &prev_act[s * spec.in_dim..(s + 1) * spec.in_dim];
                for (pd, &a) in out_row.iter_mut().zip(arow) {
                    if a <= 0.0 {
                        *pd = 0.0;
                    }
                }
            }
            std::mem::swap(delta, delta_prev);
        }
        Ok(total_loss * batch_inv)
    }
}

/// Numerically stable logistic function.
#[inline]
pub fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adamw::AdamW;

    #[test]
    fn construction_validates() {
        let mut rng = Rng::seed_from_u64(1);
        assert!(Mlp::new(0, &[4], &mut rng).is_err());
        assert!(Mlp::new(4, &[], &mut rng).is_err());
        assert!(Mlp::new(4, &[4, 0], &mut rng).is_err());
        let mlp = Mlp::new(10, &[8, 4], &mut rng).unwrap();
        assert_eq!(mlp.input_dim(), 10);
        assert_eq!(mlp.repr_dim(), 4);
        // (10·8+8) + (8·4+4) + (4·1+1) = 88 + 36 + 5.
        assert_eq!(mlp.n_params(), 129);
    }

    #[test]
    fn forward_shapes_and_dim_check() {
        let mut rng = Rng::seed_from_u64(2);
        let mlp = Mlp::new(5, &[7], &mut rng).unwrap();
        let (logit, repr) = mlp.forward(&[0.1, 0.2, 0.3, 0.4, 0.5]).unwrap();
        assert!(logit.is_finite());
        assert_eq!(repr.len(), 7);
        assert!(repr.iter().all(|&x| x >= 0.0), "ReLU output negative");
        assert!(mlp.forward(&[1.0]).is_err());
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = Rng::seed_from_u64(3);
        let mut mlp = Mlp::new(3, &[4], &mut rng).unwrap();
        let x: Vec<f32> = vec![0.5, -0.3, 0.8];
        let y = 1.0f32;
        let mut grads = Vec::new();
        let mut ws = MlpWorkspace::new();
        mlp.backward_batch(&[&x], &[y], &[1.0], &mut ws, &mut grads)
            .unwrap();

        let loss_of = |m: &Mlp| -> f32 {
            let (logit, _) = m.forward(&x).unwrap();
            logit.max(0.0) - logit * y + (1.0 + (-logit.abs()).exp()).ln()
        };
        let eps = 1e-3f32;
        let snapshot = mlp.snapshot();
        let mut checked = 0;
        for p in (0..mlp.n_params()).step_by(4) {
            let mut plus = snapshot.clone();
            plus[p] += eps;
            mlp.restore(&plus).unwrap();
            let lp = loss_of(&mlp);
            let mut minus = snapshot.clone();
            minus[p] -= eps;
            mlp.restore(&minus).unwrap();
            let lm = loss_of(&mlp);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grads[p]).abs() < 1e-2,
                "param {p}: numeric {numeric} vs analytic {}",
                grads[p]
            );
            checked += 1;
        }
        assert!(checked > 3);
        mlp.restore(&snapshot).unwrap();
    }

    #[test]
    fn learns_a_linearly_separable_problem() {
        let mut rng = Rng::seed_from_u64(4);
        let mut mlp = Mlp::new(2, &[8], &mut rng).unwrap();
        let mut opt = AdamW::new(mlp.n_params(), 0.01, 0.0).unwrap();
        // y = 1 iff x0 > x1.
        let data: Vec<(Vec<f32>, f32)> = (0..200)
            .map(|_| {
                let a = rng.f32() * 2.0 - 1.0;
                let b = rng.f32() * 2.0 - 1.0;
                (vec![a, b], if a > b { 1.0 } else { 0.0 })
            })
            .collect();
        let mut grads = Vec::new();
        let mut scratch = MlpWorkspace::new();
        for _epoch in 0..60 {
            for chunk in data.chunks(32) {
                let xs: Vec<&[f32]> = chunk.iter().map(|(x, _)| x.as_slice()).collect();
                let ys: Vec<f32> = chunk.iter().map(|(_, y)| *y).collect();
                let ws = vec![1.0f32; xs.len()];
                mlp.backward_batch(&xs, &ys, &ws, &mut scratch, &mut grads)
                    .unwrap();
                let mask = mlp.decay_mask().to_vec();
                opt.step(mlp.params_mut(), &grads, &mask).unwrap();
            }
        }
        let correct = data
            .iter()
            .filter(|(x, y)| {
                let (logit, _) = mlp.forward(x).unwrap();
                (sigmoid(logit) >= 0.5) == (*y == 1.0)
            })
            .count();
        assert!(correct >= 190, "accuracy {correct}/200");
    }

    #[test]
    fn learns_xor_with_hidden_layer() {
        let mut rng = Rng::seed_from_u64(5);
        let mut mlp = Mlp::new(2, &[16], &mut rng).unwrap();
        let mut opt = AdamW::new(mlp.n_params(), 0.02, 0.0).unwrap();
        let data: [(Vec<f32>, f32); 4] = [
            (vec![0.0, 0.0], 0.0),
            (vec![0.0, 1.0], 1.0),
            (vec![1.0, 0.0], 1.0),
            (vec![1.0, 1.0], 0.0),
        ];
        let mut grads = Vec::new();
        let mut scratch = MlpWorkspace::new();
        for _ in 0..800 {
            let xs: Vec<&[f32]> = data.iter().map(|(x, _)| x.as_slice()).collect();
            let ys: Vec<f32> = data.iter().map(|(_, y)| *y).collect();
            mlp.backward_batch(&xs, &ys, &[1.0; 4], &mut scratch, &mut grads)
                .unwrap();
            let mask = mlp.decay_mask().to_vec();
            opt.step(mlp.params_mut(), &grads, &mask).unwrap();
        }
        for (x, y) in &data {
            let (logit, _) = mlp.forward(x).unwrap();
            assert_eq!(sigmoid(logit) >= 0.5, *y == 1.0, "failed on {x:?}");
        }
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut rng = Rng::seed_from_u64(6);
        let mut mlp = Mlp::new(4, &[3], &mut rng).unwrap();
        let snap = mlp.snapshot();
        let (before, _) = mlp.forward(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        mlp.params_mut()[0] += 1.0;
        let (changed, _) = mlp.forward(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_ne!(before, changed);
        mlp.restore(&snap).unwrap();
        let (after, _) = mlp.forward(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(before, after);
        assert!(mlp.restore(&[1.0]).is_err());
    }

    #[test]
    fn from_params_rebuilds_identical_network() {
        let mut rng = Rng::seed_from_u64(77);
        let mlp = Mlp::new(9, &[6, 4], &mut rng).unwrap();
        assert_eq!(mlp.hidden_dims(), vec![6, 4]);
        let rebuilt = Mlp::from_params(9, &[6, 4], mlp.snapshot()).unwrap();
        assert_eq!(rebuilt.decay_mask(), mlp.decay_mask());
        let x: Vec<f32> = (0..9).map(|i| i as f32 * 0.3 - 1.0).collect();
        let (la, ra) = mlp.forward(&x).unwrap();
        let (lb, rb) = rebuilt.forward(&x).unwrap();
        assert_eq!(la.to_bits(), lb.to_bits());
        for (a, b) in ra.iter().zip(&rb) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Shape validation mirrors `new`.
        assert!(Mlp::from_params(0, &[4], vec![0.0; 9]).is_err());
        assert!(Mlp::from_params(4, &[], vec![0.0; 9]).is_err());
        assert!(Mlp::from_params(4, &[4, 0], vec![0.0; 9]).is_err());
        assert!(Mlp::from_params(9, &[6, 4], vec![0.0; 3]).is_err());
    }

    #[test]
    fn forward_batch_bit_identical_to_per_row_on_every_tier() {
        use em_vector::{with_simd_tier, SimdTier};
        let mut rng = Rng::seed_from_u64(40);
        // Width 37 exercises the ragged remainder of the 16-lane dot;
        // batch 21 exercises ragged GEMM tiles.
        let mlp = Mlp::new(37, &[24, 9], &mut rng).unwrap();
        let batch = 21;
        let xs: Vec<f32> = (0..batch * 37).map(|_| rng.normal() as f32).collect();
        for tier in [SimdTier::Portable, SimdTier::Avx2] {
            with_simd_tier(tier, || {
                rayon::serial_scope(|| {
                    let mut ws = MlpWorkspace::new();
                    let (logits, reprs) = mlp.forward_batch(&xs, batch, &mut ws).unwrap();
                    assert_eq!(logits.len(), batch);
                    assert_eq!(reprs.len(), batch * 9);
                    for s in 0..batch {
                        let (logit, repr) = mlp.forward(&xs[s * 37..(s + 1) * 37]).unwrap();
                        assert_eq!(
                            logits[s].to_bits(),
                            logit.to_bits(),
                            "tier {} sample {s}",
                            tier.name()
                        );
                        for (a, b) in reprs[s * 9..(s + 1) * 9].iter().zip(&repr) {
                            assert_eq!(a.to_bits(), b.to_bits(), "tier {}", tier.name());
                        }
                    }
                })
            });
        }
    }

    #[test]
    fn backward_batch_bit_identical_across_tiers() {
        use em_vector::{with_simd_tier, SimdTier};
        let mut rng = Rng::seed_from_u64(41);
        let mlp = Mlp::new(33, &[20], &mut rng).unwrap();
        let batch = 13;
        let flat: Vec<f32> = (0..batch * 33).map(|_| rng.normal() as f32).collect();
        let xs: Vec<&[f32]> = flat.chunks(33).collect();
        let ys: Vec<f32> = (0..batch).map(|s| (s % 2) as f32).collect();
        let wts = vec![1.0f32; batch];
        let run = |tier| {
            with_simd_tier(tier, || {
                rayon::serial_scope(|| {
                    let mut ws = MlpWorkspace::new();
                    let mut grads = Vec::new();
                    let loss = mlp
                        .backward_batch(&xs, &ys, &wts, &mut ws, &mut grads)
                        .unwrap();
                    (loss, grads)
                })
            })
        };
        let (loss_p, grads_p) = run(SimdTier::Portable);
        let (loss_a, grads_a) = run(SimdTier::Avx2);
        assert_eq!(loss_p.to_bits(), loss_a.to_bits());
        assert_eq!(grads_p.len(), grads_a.len());
        for (p, a) in grads_p.iter().zip(&grads_a) {
            assert_eq!(p.to_bits(), a.to_bits());
        }
    }

    #[test]
    fn workspace_is_reusable_across_batch_sizes() {
        let mut rng = Rng::seed_from_u64(42);
        let mlp = Mlp::new(8, &[5], &mut rng).unwrap();
        let mut ws = MlpWorkspace::new();
        for batch in [4usize, 9, 1, 6] {
            let xs: Vec<f32> = (0..batch * 8).map(|_| rng.normal() as f32).collect();
            let (logits, reprs) = mlp.forward_batch(&xs, batch, &mut ws).unwrap();
            assert_eq!(logits.len(), batch);
            assert_eq!(reprs.len(), batch * 5);
            for s in 0..batch {
                let (logit, _) = mlp.forward(&xs[s * 8..(s + 1) * 8]).unwrap();
                assert_eq!(logits[s].to_bits(), logit.to_bits(), "batch {batch}");
            }
        }
        // Shape errors are reported, not asserted.
        assert!(mlp.forward_batch(&[1.0; 7], 1, &mut ws).is_err());
        assert!(mlp.forward_batch(&[], 0, &mut ws).is_err());
    }

    #[test]
    fn sigmoid_stability() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
    }
}
