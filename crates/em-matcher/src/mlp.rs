//! A multi-layer perceptron with manual backpropagation.
//!
//! Architecture: `input → [hidden ReLU]* → 1 logit`, sigmoid head,
//! binary cross-entropy loss. The activation of the **last hidden layer**
//! is exposed as the pair representation — the structural analogue of
//! DITTO's `[CLS]` embedding that the battleship algorithm clusters,
//! graphs and searches (§3.2).
//!
//! Parameters are stored flat (one contiguous `Vec<f32>`) so the AdamW
//! optimizer treats the whole network uniformly and snapshots for
//! best-epoch selection are a single memcpy.

// Numeric kernels here walk several parallel arrays by index; the
// indexed form keeps the lockstep structure visible.
#![allow(clippy::needless_range_loop)]
use em_core::{EmError, Result, Rng};

/// Layer shape metadata over the flat parameter buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LayerSpec {
    in_dim: usize,
    out_dim: usize,
    /// Offset of the weight block (`out_dim × in_dim`, row-major).
    w_off: usize,
    /// Offset of the bias block (`out_dim`).
    b_off: usize,
}

/// The MLP: flat parameters plus layer specs.
#[derive(Debug, Clone)]
pub struct Mlp {
    params: Vec<f32>,
    layers: Vec<LayerSpec>,
    /// `true` for weights (decayed), `false` for biases.
    decay_mask: Vec<bool>,
}

impl Mlp {
    /// Build an MLP `input_dim → hidden[0] → … → hidden[n-1] → 1` with
    /// He-initialized weights.
    pub fn new(input_dim: usize, hidden: &[usize], rng: &mut Rng) -> Result<Self> {
        if input_dim == 0 {
            return Err(EmError::InvalidConfig("MLP input_dim must be > 0".into()));
        }
        if hidden.is_empty() {
            return Err(EmError::InvalidConfig(
                "MLP needs at least one hidden layer (it provides the pair representation)".into(),
            ));
        }
        if hidden.contains(&0) {
            return Err(EmError::InvalidConfig("hidden layer of width 0".into()));
        }
        let mut layers = Vec::with_capacity(hidden.len() + 1);
        let mut offset = 0usize;
        let mut prev = input_dim;
        for &h in hidden.iter().chain(std::iter::once(&1)) {
            layers.push(LayerSpec {
                in_dim: prev,
                out_dim: h,
                w_off: offset,
                b_off: offset + h * prev,
            });
            offset += h * prev + h;
            prev = h;
        }
        let mut params = vec![0.0f32; offset];
        let mut decay_mask = vec![false; offset];
        for spec in &layers {
            // He init: N(0, 2/in_dim) for ReLU layers.
            let std = (2.0 / spec.in_dim as f64).sqrt();
            for i in 0..spec.out_dim * spec.in_dim {
                params[spec.w_off + i] = (rng.normal() * std) as f32;
                decay_mask[spec.w_off + i] = true;
            }
            // Biases stay zero and undecayed.
        }
        Ok(Mlp {
            params,
            layers,
            decay_mask,
        })
    }

    /// Number of parameters.
    pub fn n_params(&self) -> usize {
        self.params.len()
    }

    /// Width of the representation (last hidden layer).
    pub fn repr_dim(&self) -> usize {
        self.layers[self.layers.len() - 2].out_dim
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Flat parameter access for the optimizer.
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    /// Weight-decay mask aligned with [`Mlp::params_mut`].
    pub fn decay_mask(&self) -> &[bool] {
        &self.decay_mask
    }

    /// Snapshot the parameters (for best-epoch selection).
    pub fn snapshot(&self) -> Vec<f32> {
        self.params.clone()
    }

    /// Restore a snapshot taken from this network.
    pub fn restore(&mut self, snapshot: &[f32]) -> Result<()> {
        if snapshot.len() != self.params.len() {
            return Err(EmError::DimensionMismatch {
                context: "MLP restore".into(),
                expected: self.params.len(),
                actual: snapshot.len(),
            });
        }
        self.params.copy_from_slice(snapshot);
        Ok(())
    }

    /// Forward pass for one input; returns `(logit, representation)`.
    ///
    /// The representation is the post-ReLU activation of the last hidden
    /// layer.
    pub fn forward(&self, x: &[f32]) -> Result<(f32, Vec<f32>)> {
        if x.len() != self.input_dim() {
            return Err(EmError::DimensionMismatch {
                context: "MLP forward".into(),
                expected: self.input_dim(),
                actual: x.len(),
            });
        }
        let mut activation = x.to_vec();
        let mut repr = Vec::new();
        for (li, spec) in self.layers.iter().enumerate() {
            let mut next = vec![0.0f32; spec.out_dim];
            for o in 0..spec.out_dim {
                let row = &self.params[spec.w_off + o * spec.in_dim..][..spec.in_dim];
                let mut acc = self.params[spec.b_off + o];
                for (w, a) in row.iter().zip(&activation) {
                    acc += w * a;
                }
                next[o] = acc;
            }
            let is_output = li == self.layers.len() - 1;
            if !is_output {
                for v in &mut next {
                    *v = v.max(0.0);
                }
                if li == self.layers.len() - 2 {
                    repr = next.clone();
                }
            }
            activation = next;
        }
        Ok((activation[0], repr))
    }

    /// Forward + backward over a mini-batch; accumulates the mean BCE
    /// gradient into `grads` (zeroed here) and returns the mean loss.
    ///
    /// `targets[i] ∈ {0.0, 1.0}`; `sample_weights` rescales individual
    /// samples (all-ones for the standard loss).
    pub fn backward_batch(
        &self,
        xs: &[&[f32]],
        targets: &[f32],
        sample_weights: &[f32],
        grads: &mut Vec<f32>,
    ) -> Result<f32> {
        if xs.len() != targets.len() || xs.len() != sample_weights.len() {
            return Err(EmError::DimensionMismatch {
                context: "MLP backward_batch".into(),
                expected: xs.len(),
                actual: targets.len().min(sample_weights.len()),
            });
        }
        if xs.is_empty() {
            return Err(EmError::EmptyInput("MLP batch".into()));
        }
        grads.clear();
        grads.resize(self.params.len(), 0.0);

        let n_layers = self.layers.len();
        let batch_inv = 1.0 / xs.len() as f32;
        let mut total_loss = 0.0f32;

        // Per-sample forward with cached activations, then backward.
        for (si, &x) in xs.iter().enumerate() {
            if x.len() != self.input_dim() {
                return Err(EmError::DimensionMismatch {
                    context: "MLP backward_batch input".into(),
                    expected: self.input_dim(),
                    actual: x.len(),
                });
            }
            // Forward, caching post-activation outputs per layer.
            let mut acts: Vec<Vec<f32>> = Vec::with_capacity(n_layers + 1);
            acts.push(x.to_vec());
            for (li, spec) in self.layers.iter().enumerate() {
                let prev = &acts[li];
                let mut next = vec![0.0f32; spec.out_dim];
                for o in 0..spec.out_dim {
                    let row = &self.params[spec.w_off + o * spec.in_dim..][..spec.in_dim];
                    let mut acc = self.params[spec.b_off + o];
                    for (w, a) in row.iter().zip(prev) {
                        acc += w * a;
                    }
                    next[o] = acc;
                }
                if li != n_layers - 1 {
                    for v in &mut next {
                        *v = v.max(0.0);
                    }
                }
                acts.push(next);
            }

            let logit = acts[n_layers][0];
            let prob = sigmoid(logit);
            let y = targets[si];
            let w = sample_weights[si];
            // Numerically stable BCE-with-logits.
            let loss = logit.max(0.0) - logit * y + (1.0 + (-logit.abs()).exp()).ln();
            total_loss += w * loss;

            // Backward: delta at the logit.
            let mut delta = vec![w * (prob - y)];
            for li in (0..n_layers).rev() {
                let spec = self.layers[li];
                let prev_act = &acts[li];
                // Accumulate gradients of this layer.
                for o in 0..spec.out_dim {
                    let d = delta[o] * batch_inv;
                    if d == 0.0 {
                        continue;
                    }
                    let wrow = spec.w_off + o * spec.in_dim;
                    for (g, a) in grads[wrow..wrow + spec.in_dim].iter_mut().zip(prev_act) {
                        *g += d * a;
                    }
                    grads[spec.b_off + o] += d;
                }
                if li == 0 {
                    break;
                }
                // Propagate delta to the previous layer through Wᵀ, gated
                // by the ReLU derivative (prev activation > 0).
                let mut prev_delta = vec![0.0f32; spec.in_dim];
                for o in 0..spec.out_dim {
                    let d = delta[o];
                    if d == 0.0 {
                        continue;
                    }
                    let wrow = spec.w_off + o * spec.in_dim;
                    for (pd, w) in prev_delta
                        .iter_mut()
                        .zip(&self.params[wrow..wrow + spec.in_dim])
                    {
                        *pd += d * w;
                    }
                }
                for (pd, &a) in prev_delta.iter_mut().zip(prev_act) {
                    if a <= 0.0 {
                        *pd = 0.0;
                    }
                }
                delta = prev_delta;
            }
        }
        Ok(total_loss * batch_inv)
    }
}

/// Numerically stable logistic function.
#[inline]
pub fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adamw::AdamW;

    #[test]
    fn construction_validates() {
        let mut rng = Rng::seed_from_u64(1);
        assert!(Mlp::new(0, &[4], &mut rng).is_err());
        assert!(Mlp::new(4, &[], &mut rng).is_err());
        assert!(Mlp::new(4, &[4, 0], &mut rng).is_err());
        let mlp = Mlp::new(10, &[8, 4], &mut rng).unwrap();
        assert_eq!(mlp.input_dim(), 10);
        assert_eq!(mlp.repr_dim(), 4);
        // (10·8+8) + (8·4+4) + (4·1+1) = 88 + 36 + 5.
        assert_eq!(mlp.n_params(), 129);
    }

    #[test]
    fn forward_shapes_and_dim_check() {
        let mut rng = Rng::seed_from_u64(2);
        let mlp = Mlp::new(5, &[7], &mut rng).unwrap();
        let (logit, repr) = mlp.forward(&[0.1, 0.2, 0.3, 0.4, 0.5]).unwrap();
        assert!(logit.is_finite());
        assert_eq!(repr.len(), 7);
        assert!(repr.iter().all(|&x| x >= 0.0), "ReLU output negative");
        assert!(mlp.forward(&[1.0]).is_err());
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = Rng::seed_from_u64(3);
        let mut mlp = Mlp::new(3, &[4], &mut rng).unwrap();
        let x: Vec<f32> = vec![0.5, -0.3, 0.8];
        let y = 1.0f32;
        let mut grads = Vec::new();
        mlp.backward_batch(&[&x], &[y], &[1.0], &mut grads).unwrap();

        let loss_of = |m: &Mlp| -> f32 {
            let (logit, _) = m.forward(&x).unwrap();
            logit.max(0.0) - logit * y + (1.0 + (-logit.abs()).exp()).ln()
        };
        let eps = 1e-3f32;
        let snapshot = mlp.snapshot();
        let mut checked = 0;
        for p in (0..mlp.n_params()).step_by(4) {
            let mut plus = snapshot.clone();
            plus[p] += eps;
            mlp.restore(&plus).unwrap();
            let lp = loss_of(&mlp);
            let mut minus = snapshot.clone();
            minus[p] -= eps;
            mlp.restore(&minus).unwrap();
            let lm = loss_of(&mlp);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grads[p]).abs() < 1e-2,
                "param {p}: numeric {numeric} vs analytic {}",
                grads[p]
            );
            checked += 1;
        }
        assert!(checked > 3);
        mlp.restore(&snapshot).unwrap();
    }

    #[test]
    fn learns_a_linearly_separable_problem() {
        let mut rng = Rng::seed_from_u64(4);
        let mut mlp = Mlp::new(2, &[8], &mut rng).unwrap();
        let mut opt = AdamW::new(mlp.n_params(), 0.01, 0.0).unwrap();
        // y = 1 iff x0 > x1.
        let data: Vec<(Vec<f32>, f32)> = (0..200)
            .map(|_| {
                let a = rng.f32() * 2.0 - 1.0;
                let b = rng.f32() * 2.0 - 1.0;
                (vec![a, b], if a > b { 1.0 } else { 0.0 })
            })
            .collect();
        let mut grads = Vec::new();
        for _epoch in 0..60 {
            for chunk in data.chunks(32) {
                let xs: Vec<&[f32]> = chunk.iter().map(|(x, _)| x.as_slice()).collect();
                let ys: Vec<f32> = chunk.iter().map(|(_, y)| *y).collect();
                let ws = vec![1.0f32; xs.len()];
                mlp.backward_batch(&xs, &ys, &ws, &mut grads).unwrap();
                let mask = mlp.decay_mask().to_vec();
                opt.step(mlp.params_mut(), &grads, &mask).unwrap();
            }
        }
        let correct = data
            .iter()
            .filter(|(x, y)| {
                let (logit, _) = mlp.forward(x).unwrap();
                (sigmoid(logit) >= 0.5) == (*y == 1.0)
            })
            .count();
        assert!(correct >= 190, "accuracy {correct}/200");
    }

    #[test]
    fn learns_xor_with_hidden_layer() {
        let mut rng = Rng::seed_from_u64(5);
        let mut mlp = Mlp::new(2, &[16], &mut rng).unwrap();
        let mut opt = AdamW::new(mlp.n_params(), 0.02, 0.0).unwrap();
        let data: [(Vec<f32>, f32); 4] = [
            (vec![0.0, 0.0], 0.0),
            (vec![0.0, 1.0], 1.0),
            (vec![1.0, 0.0], 1.0),
            (vec![1.0, 1.0], 0.0),
        ];
        let mut grads = Vec::new();
        for _ in 0..800 {
            let xs: Vec<&[f32]> = data.iter().map(|(x, _)| x.as_slice()).collect();
            let ys: Vec<f32> = data.iter().map(|(_, y)| *y).collect();
            mlp.backward_batch(&xs, &ys, &[1.0; 4], &mut grads).unwrap();
            let mask = mlp.decay_mask().to_vec();
            opt.step(mlp.params_mut(), &grads, &mask).unwrap();
        }
        for (x, y) in &data {
            let (logit, _) = mlp.forward(x).unwrap();
            assert_eq!(sigmoid(logit) >= 0.5, *y == 1.0, "failed on {x:?}");
        }
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut rng = Rng::seed_from_u64(6);
        let mut mlp = Mlp::new(4, &[3], &mut rng).unwrap();
        let snap = mlp.snapshot();
        let (before, _) = mlp.forward(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        mlp.params_mut()[0] += 1.0;
        let (changed, _) = mlp.forward(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_ne!(before, changed);
        mlp.restore(&snap).unwrap();
        let (after, _) = mlp.forward(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(before, after);
        assert!(mlp.restore(&[1.0]).is_err());
    }

    #[test]
    fn sigmoid_stability() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
    }
}
