//! Seed-verbatim scalar matcher paths, preserved as the measured
//! baseline.
//!
//! The GEMM-backed engine in [`crate::mlp`] / [`crate::matcher`]
//! replaced the seed's per-sample index loops. This module keeps those
//! loops — one forward accumulator per output unit, per-sample gradient
//! accumulation, per-row prediction, and the per-epoch `mlp.clone()`
//! validation probe — exactly as the seed ran them, for two purposes:
//!
//! * the `em-bench` matcher benchmark times [`train_matcher_reference`]
//!   and [`predict_reference`] against the batched engine (the ≥3× perf
//!   gate needs the real seed baseline, not a de-tuned copy);
//! * the tolerance tests in [`crate::matcher`] pin the batched engine's
//!   numerics to the seed's (same losses and gradients up to summation
//!   association — the seed reduces per sample in sample order, the
//!   GEMM engine in the fixed 16-lane kernel order, so the two are
//!   close but deliberately **not** bit-comparable; bit-identity is
//!   asserted between the scalar and batched *kernel* paths instead).
//!
//! Nothing in the production crates calls into this module.

// Seed-verbatim numeric loops walk parallel arrays by index; keep the
// lockstep structure exactly as the seed wrote it.
#![allow(clippy::needless_range_loop)]

use em_core::{BinaryConfusion, EmError, Label, Prediction, Result, Rng};
use em_vector::Embeddings;

use crate::adamw::AdamW;
use crate::calibration::apply_temperature;
use crate::matcher::{MatcherConfig, MatcherOutput, TrainedMatcher};
use crate::mlp::{sigmoid, Mlp};

/// Seed-verbatim forward pass: one running accumulator per output unit
/// (bias first, then a single sequential multiply-add chain).
pub fn forward_reference(mlp: &Mlp, x: &[f32]) -> Result<(f32, Vec<f32>)> {
    if x.len() != mlp.input_dim() {
        return Err(EmError::DimensionMismatch {
            context: "MLP forward".into(),
            expected: mlp.input_dim(),
            actual: x.len(),
        });
    }
    let layers = mlp.layer_specs();
    let params = mlp.params();
    let mut activation = x.to_vec();
    let mut repr = Vec::new();
    for (li, spec) in layers.iter().enumerate() {
        let mut next = vec![0.0f32; spec.out_dim];
        for o in 0..spec.out_dim {
            let row = &params[spec.w_off + o * spec.in_dim..][..spec.in_dim];
            let mut acc = params[spec.b_off + o];
            for (w, a) in row.iter().zip(&activation) {
                acc += w * a;
            }
            next[o] = acc;
        }
        let is_output = li == layers.len() - 1;
        if !is_output {
            for v in &mut next {
                *v = v.max(0.0);
            }
            if li == layers.len() - 2 {
                repr = next.clone();
            }
        }
        activation = next;
    }
    Ok((activation[0], repr))
}

/// Seed-verbatim forward + backward over a mini-batch: per-sample
/// forward with freshly allocated activation vectors, then per-sample
/// gradient accumulation in sample order.
pub fn backward_batch_reference(
    mlp: &Mlp,
    xs: &[&[f32]],
    targets: &[f32],
    sample_weights: &[f32],
    grads: &mut Vec<f32>,
) -> Result<f32> {
    if xs.len() != targets.len() || xs.len() != sample_weights.len() {
        return Err(EmError::DimensionMismatch {
            context: "MLP backward_batch".into(),
            expected: xs.len(),
            actual: targets.len().min(sample_weights.len()),
        });
    }
    if xs.is_empty() {
        return Err(EmError::EmptyInput("MLP batch".into()));
    }
    let layers = mlp.layer_specs();
    let params = mlp.params();
    grads.clear();
    grads.resize(params.len(), 0.0);

    let n_layers = layers.len();
    let batch_inv = 1.0 / xs.len() as f32;
    let mut total_loss = 0.0f32;

    // Per-sample forward with cached activations, then backward.
    for (si, &x) in xs.iter().enumerate() {
        if x.len() != mlp.input_dim() {
            return Err(EmError::DimensionMismatch {
                context: "MLP backward_batch input".into(),
                expected: mlp.input_dim(),
                actual: x.len(),
            });
        }
        // Forward, caching post-activation outputs per layer.
        let mut acts: Vec<Vec<f32>> = Vec::with_capacity(n_layers + 1);
        acts.push(x.to_vec());
        for (li, spec) in layers.iter().enumerate() {
            let prev = &acts[li];
            let mut next = vec![0.0f32; spec.out_dim];
            for o in 0..spec.out_dim {
                let row = &params[spec.w_off + o * spec.in_dim..][..spec.in_dim];
                let mut acc = params[spec.b_off + o];
                for (w, a) in row.iter().zip(prev) {
                    acc += w * a;
                }
                next[o] = acc;
            }
            if li != n_layers - 1 {
                for v in &mut next {
                    *v = v.max(0.0);
                }
            }
            acts.push(next);
        }

        let logit = acts[n_layers][0];
        let prob = sigmoid(logit);
        let y = targets[si];
        let w = sample_weights[si];
        // Numerically stable BCE-with-logits.
        let loss = logit.max(0.0) - logit * y + (1.0 + (-logit.abs()).exp()).ln();
        total_loss += w * loss;

        // Backward: delta at the logit.
        let mut delta = vec![w * (prob - y)];
        for li in (0..n_layers).rev() {
            let spec = layers[li];
            let prev_act = &acts[li];
            // Accumulate gradients of this layer.
            for o in 0..spec.out_dim {
                let d = delta[o] * batch_inv;
                if d == 0.0 {
                    continue;
                }
                let wrow = spec.w_off + o * spec.in_dim;
                for (g, a) in grads[wrow..wrow + spec.in_dim].iter_mut().zip(prev_act) {
                    *g += d * a;
                }
                grads[spec.b_off + o] += d;
            }
            if li == 0 {
                break;
            }
            // Propagate delta to the previous layer through Wᵀ, gated
            // by the ReLU derivative (prev activation > 0).
            let mut prev_delta = vec![0.0f32; spec.in_dim];
            for o in 0..spec.out_dim {
                let d = delta[o];
                if d == 0.0 {
                    continue;
                }
                let wrow = spec.w_off + o * spec.in_dim;
                for (pd, w) in prev_delta.iter_mut().zip(&params[wrow..wrow + spec.in_dim]) {
                    *pd += d * w;
                }
            }
            for (pd, &a) in prev_delta.iter_mut().zip(prev_act) {
                if a <= 0.0 {
                    *pd = 0.0;
                }
            }
            delta = prev_delta;
        }
    }
    Ok(total_loss * batch_inv)
}

/// Seed-verbatim prediction: one scalar forward per row, pushing each
/// representation into the output matrix individually.
pub fn predict_reference(
    matcher: &TrainedMatcher,
    features: &Embeddings,
    indices: &[usize],
) -> Result<MatcherOutput> {
    let mlp = matcher.mlp();
    let mut predictions = Vec::with_capacity(indices.len());
    let mut representations = Embeddings::new(mlp.repr_dim())?;
    for &i in indices {
        if i >= features.len() {
            return Err(EmError::IndexOutOfBounds {
                context: "matcher predict".into(),
                index: i,
                len: features.len(),
            });
        }
        let (logit, repr) = forward_reference(mlp, features.row(i))?;
        let prob = apply_temperature(sigmoid(logit), matcher.temperature())?;
        predictions.push(Prediction::from_prob(prob));
        representations.push(&repr)?;
    }
    Ok(MatcherOutput {
        predictions,
        representations,
    })
}

/// Seed-verbatim training loop: per-sample backward, and a per-epoch
/// validation probe that clones the whole network into a throwaway
/// `TrainedMatcher` (the cost the batched engine's borrowed probe
/// removed).
pub fn train_matcher_reference(
    features: &Embeddings,
    train_idx: &[usize],
    train_labels: &[Label],
    valid_idx: &[usize],
    valid_labels: &[Label],
    config: &MatcherConfig,
) -> Result<TrainedMatcher> {
    config.validate()?;
    if train_idx.is_empty() {
        return Err(EmError::EmptyInput("matcher training set".into()));
    }
    if train_idx.len() != train_labels.len() {
        return Err(EmError::DimensionMismatch {
            context: "matcher train labels".into(),
            expected: train_idx.len(),
            actual: train_labels.len(),
        });
    }
    if valid_idx.len() != valid_labels.len() {
        return Err(EmError::DimensionMismatch {
            context: "matcher valid labels".into(),
            expected: valid_idx.len(),
            actual: valid_labels.len(),
        });
    }

    let mut rng = Rng::seed_from_u64(config.seed);
    let mut mlp = Mlp::new(features.dim(), &config.hidden, &mut rng)?;
    let mut opt = AdamW::new(mlp.n_params(), config.lr, config.weight_decay)?;
    let decay_mask = mlp.decay_mask().to_vec();

    let mut order: Vec<usize> = (0..train_idx.len()).collect();
    let mut grads: Vec<f32> = Vec::new();
    let mut best_snapshot = mlp.snapshot();
    let mut best_f1 = f64::NEG_INFINITY;
    let mut best_epoch = 0usize;

    for epoch in 0..config.epochs {
        rng.shuffle(&mut order);
        for chunk in order.chunks(config.batch_size) {
            let xs: Vec<&[f32]> = chunk.iter().map(|&o| features.row(train_idx[o])).collect();
            let ys: Vec<f32> = chunk.iter().map(|&o| train_labels[o].as_f32()).collect();
            let ws = vec![1.0f32; xs.len()];
            backward_batch_reference(&mlp, &xs, &ys, &ws, &mut grads)?;
            opt.step(mlp.params_mut(), &grads, &decay_mask)?;
        }
        // Best-epoch selection on validation F1 through a full throwaway
        // matcher clone, as the seed did it.
        if !valid_idx.is_empty() {
            let probe = TrainedMatcher::from_parts(mlp.clone(), config.temperature, 0.0, 0);
            let out = predict_reference(&probe, features, valid_idx)?;
            let predicted: Vec<Label> = out.predictions.iter().map(|p| p.label).collect();
            let f1 = BinaryConfusion::from_labels(&predicted, valid_labels)?
                .metrics()
                .f1;
            if f1 > best_f1 {
                best_f1 = f1;
                best_snapshot = mlp.snapshot();
                best_epoch = epoch;
            }
        } else {
            best_snapshot = mlp.snapshot();
            best_epoch = epoch;
        }
    }
    mlp.restore(&best_snapshot)?;

    Ok(TrainedMatcher::from_parts(
        mlp,
        config.temperature,
        if best_f1.is_finite() { best_f1 } else { 0.0 },
        best_epoch,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::MlpWorkspace;

    #[test]
    fn reference_forward_agrees_with_kernel_forward_within_tolerance() {
        let mut rng = Rng::seed_from_u64(50);
        let mlp = Mlp::new(37, &[16], &mut rng).unwrap();
        for _ in 0..20 {
            let x: Vec<f32> = (0..37).map(|_| rng.normal() as f32).collect();
            let (l_ref, r_ref) = forward_reference(&mlp, &x).unwrap();
            let (l_new, r_new) = mlp.forward(&x).unwrap();
            assert!(
                (l_ref - l_new).abs() <= 1e-4 * (1.0 + l_ref.abs()),
                "{l_ref} vs {l_new}"
            );
            for (a, b) in r_ref.iter().zip(&r_new) {
                assert!((a - b).abs() <= 1e-4 * (1.0 + a.abs()));
            }
        }
    }

    #[test]
    fn reference_backward_agrees_with_gemm_backward_within_tolerance() {
        let mut rng = Rng::seed_from_u64(51);
        let mlp = Mlp::new(24, &[12, 6], &mut rng).unwrap();
        let batch = 10;
        let flat: Vec<f32> = (0..batch * 24).map(|_| rng.normal() as f32).collect();
        let xs: Vec<&[f32]> = flat.chunks(24).collect();
        let ys: Vec<f32> = (0..batch).map(|s| (s % 2) as f32).collect();
        let wts = vec![1.0f32; batch];
        let mut g_ref = Vec::new();
        let loss_ref = backward_batch_reference(&mlp, &xs, &ys, &wts, &mut g_ref).unwrap();
        let mut ws = MlpWorkspace::new();
        let mut g_new = Vec::new();
        let loss_new = mlp
            .backward_batch(&xs, &ys, &wts, &mut ws, &mut g_new)
            .unwrap();
        assert!((loss_ref - loss_new).abs() <= 1e-4 * (1.0 + loss_ref.abs()));
        assert_eq!(g_ref.len(), g_new.len());
        for (i, (a, b)) in g_ref.iter().zip(&g_new).enumerate() {
            assert!(
                (a - b).abs() <= 1e-4 * (1.0 + a.abs()),
                "grad {i}: {a} vs {b}"
            );
        }
    }
}
