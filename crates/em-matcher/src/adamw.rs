//! AdamW — Adam with decoupled weight decay (Loshchilov & Hutter 2019).
//!
//! The paper trains DITTO "with AdamW optimizer with a learning rate of
//! 3e-5" (§4.2). Our MLP substrate uses the same optimizer (at an
//! MLP-appropriate learning rate).

use em_core::{EmError, Result};

/// AdamW state over a flat parameter vector.
#[derive(Debug, Clone)]
pub struct AdamW {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    /// First-moment estimates.
    m: Vec<f32>,
    /// Second-moment estimates.
    v: Vec<f32>,
    /// Step counter for bias correction.
    t: u64,
}

impl AdamW {
    /// Create an optimizer for `n_params` parameters.
    pub fn new(n_params: usize, lr: f32, weight_decay: f32) -> Result<Self> {
        if lr <= 0.0 || !lr.is_finite() {
            return Err(EmError::InvalidConfig(format!("lr {lr} must be > 0")));
        }
        if weight_decay < 0.0 {
            return Err(EmError::InvalidConfig(format!(
                "weight_decay {weight_decay} must be >= 0"
            )));
        }
        Ok(AdamW {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            m: vec![0.0; n_params],
            v: vec![0.0; n_params],
            t: 0,
        })
    }

    /// Number of tracked parameters.
    pub fn len(&self) -> usize {
        self.m.len()
    }

    /// `true` iff tracking zero parameters.
    pub fn is_empty(&self) -> bool {
        self.m.is_empty()
    }

    /// Apply one update step: `params -= lr·(m̂/(√v̂+ε) + wd·params)`.
    ///
    /// `decay_mask[i] = false` exempts a parameter (biases) from weight
    /// decay, per the usual convention. `grads` must match `params` in
    /// length.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32], decay_mask: &[bool]) -> Result<()> {
        if params.len() != self.m.len()
            || grads.len() != self.m.len()
            || decay_mask.len() != self.m.len()
        {
            return Err(EmError::DimensionMismatch {
                context: "AdamW step".into(),
                expected: self.m.len(),
                actual: params.len().min(grads.len()).min(decay_mask.len()),
            });
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (beta1, beta2) = (self.beta1, self.beta2);
        let (lr, eps, wd) = (self.lr, self.eps, self.weight_decay);
        // Branch-free element update (the mask folds to a `select`), all
        // inputs walked in lockstep with bounds checks elided — the loop
        // body has no loop-borne dependency, so LLVM vectorizes it
        // (vsqrtps/vdivps included). This step runs once per mini-batch
        // over every parameter; as a flat O(n_params) cost it is shared
        // by both matcher engines and sits on the training hot path.
        let iter = params
            .iter_mut()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
            .zip(decay_mask);
        for (((p, &g), (m, v)), &mask) in iter {
            *m = beta1 * *m + (1.0 - beta1) * g;
            *v = beta2 * *v + (1.0 - beta2) * g * g;
            let m_hat = *m / bc1;
            let v_hat = *v / bc2;
            let decay = if mask { wd } else { 0.0 };
            let update = m_hat / (v_hat.sqrt() + eps) + decay * *p;
            *p -= lr * update;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x − 3)²; gradient 2(x − 3).
    #[test]
    fn converges_on_quadratic() {
        let mut x = vec![0.0f32];
        let mut opt = AdamW::new(1, 0.1, 0.0).unwrap();
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g, &[true]).unwrap();
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "x = {}", x[0]);
    }

    /// With pure decay (zero gradient), parameters shrink toward zero.
    #[test]
    fn weight_decay_shrinks_params() {
        let mut x = vec![1.0f32];
        let mut opt = AdamW::new(1, 0.01, 0.5).unwrap();
        for _ in 0..100 {
            opt.step(&mut x, &[0.0], &[true]).unwrap();
        }
        assert!(x[0] < 0.7, "x = {}", x[0]);

        // Masked parameter is untouched by decay.
        let mut b = vec![1.0f32];
        let mut opt = AdamW::new(1, 0.01, 0.5).unwrap();
        for _ in 0..100 {
            opt.step(&mut b, &[0.0], &[false]).unwrap();
        }
        assert_eq!(b[0], 1.0);
    }

    #[test]
    fn first_step_magnitude_is_lr() {
        // Adam's bias-corrected first step is ±lr regardless of gradient
        // scale.
        let mut x = vec![0.0f32];
        let mut opt = AdamW::new(1, 0.05, 0.0).unwrap();
        opt.step(&mut x, &[123.0], &[true]).unwrap();
        assert!((x[0] + 0.05).abs() < 1e-4, "x = {}", x[0]);
    }

    #[test]
    fn validates_inputs() {
        assert!(AdamW::new(1, 0.0, 0.0).is_err());
        assert!(AdamW::new(1, 0.1, -1.0).is_err());
        let mut opt = AdamW::new(2, 0.1, 0.0).unwrap();
        let mut x = vec![0.0f32; 2];
        assert!(opt.step(&mut x, &[1.0], &[true, true]).is_err());
    }

    #[test]
    fn two_dimensional_decoupling() {
        // Each coordinate converges to its own optimum.
        let mut x = vec![0.0f32, 0.0];
        let mut opt = AdamW::new(2, 0.1, 0.0).unwrap();
        for _ in 0..600 {
            let g = vec![2.0 * (x[0] - 1.0), 2.0 * (x[1] + 2.0)];
            opt.step(&mut x, &g, &[true, true]).unwrap();
        }
        assert!((x[0] - 1.0).abs() < 1e-2);
        assert!((x[1] + 2.0).abs() < 1e-2);
    }
}
