//! Pair featurization: signed feature hashing over the DITTO
//! serialization plus per-attribute similarity features.
//!
//! Features are a pure function of the record text, independent of the
//! model, so the battleship runner featurizes each dataset exactly once
//! and reuses the matrix across all iterations, strategies and seeds.
//!
//! Layout of one feature vector:
//!
//! ```text
//! [ 0 .. n_buckets )   signed hashed token features, three namespaces:
//!                      tokens in both records ("I:"), left only ("L:"),
//!                      right only ("R:"), count-weighted and
//!                      L2-normalized
//! [ n_buckets .. )     dense similarity block: per-attribute token
//!                      jaccard, char-trigram jaccard, overlap
//!                      coefficient, equality flag, both-missing flag,
//!                      numeric agreement; then whole-record jaccard,
//!                      trigram jaccard, overlap and length ratio
//! ```

use em_core::{
    char_ngrams, jaccard, overlap_coefficient, tokenize, Dataset, EmError, PairIdx, Result,
    TokenSet,
};
use em_vector::Embeddings;

/// Dense similarity features per attribute.
const PER_ATTR_FEATURES: usize = 6;
/// Dense whole-record features.
const GLOBAL_FEATURES: usize = 4;

/// Featurizer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureConfig {
    /// Hashed-token buckets. More buckets → fewer collisions, bigger
    /// model.
    pub n_buckets: usize,
    /// Character n-gram size for the typo-robust similarity features.
    pub trigram_n: usize,
    /// Include the dense engineered-similarity block in
    /// [`Featurizer::featurize`].
    ///
    /// **Off by default**: the matcher this crate substitutes for (DITTO)
    /// learns its notion of similarity from raw serialized text, which is
    /// precisely why it needs many labels — the low-resource regime the
    /// paper studies. Engineered similarity features act like Magellan's
    /// classic feature vectors and let ~100 labels saturate the task,
    /// erasing the learning curve every experiment measures. The dense
    /// block remains available for ZeroER
    /// ([`Featurizer::similarity_vector`] is independent of this flag)
    /// and for ablations.
    pub include_sim_block: bool,
    /// Number of one-hot bins per binned-overlap channel (see
    /// [`Featurizer::featurize`]). One-hot binning keeps the channel
    /// *learnable*: each bin's vote must be estimated from labeled
    /// examples, so ~100 labels yield a rough matcher while thousands
    /// sharpen it — the learning-curve shape of a fine-tuned PLM.
    pub overlap_bins: usize,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            n_buckets: 768,
            trigram_n: 3,
            include_sim_block: false,
            overlap_bins: 16,
        }
    }
}

/// Binned-overlap channels: word jaccard, char-trigram jaccard, overlap
/// coefficient, numeric agreement, IDF-weighted jaccard.
const OVERLAP_CHANNELS: usize = 5;

/// Featurizes candidate pairs of one dataset.
#[derive(Debug, Clone)]
pub struct Featurizer {
    config: FeatureConfig,
    n_attrs: usize,
    /// Token → inverse document frequency over both tables, used by the
    /// IDF-weighted overlap channel (rare shared tokens — model numbers,
    /// exact titles — are the strongest match evidence; siblings share
    /// only frequent brand/category tokens).
    idf: std::collections::HashMap<String, f64>,
}

impl Featurizer {
    /// Create a featurizer for `dataset`'s schema.
    pub fn new(dataset: &Dataset, config: FeatureConfig) -> Result<Self> {
        if config.n_buckets < 16 {
            return Err(EmError::InvalidConfig(format!(
                "n_buckets {} too small",
                config.n_buckets
            )));
        }
        if config.trigram_n == 0 {
            return Err(EmError::InvalidConfig("trigram_n must be > 0".into()));
        }
        if config.overlap_bins < 2 {
            return Err(EmError::InvalidConfig("overlap_bins must be >= 2".into()));
        }
        // Document frequencies over both tables.
        let mut df: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
        let n_docs = dataset.left.len() + dataset.right.len();
        for rec in dataset.left.records().iter().chain(dataset.right.records()) {
            let tokens = TokenSet::from_text(&rec.full_text());
            for (t, _) in tokens.iter() {
                *df.entry(t.to_string()).or_insert(0) += 1;
            }
        }
        let idf = df
            .into_iter()
            .map(|(t, d)| (t, ((1.0 + n_docs as f64) / (1.0 + d as f64)).ln()))
            .collect();
        Ok(Featurizer {
            config,
            n_attrs: dataset.left.schema.len(),
            idf,
        })
    }

    /// IDF-weighted Jaccard of two token sets (weights default to the
    /// maximum IDF for out-of-corpus tokens, which are rare by
    /// definition).
    fn idf_jaccard(&self, a: &TokenSet, b: &TokenSet) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        let max_idf = 12.0;
        let weight = |t: &str| -> f64 { self.idf.get(t).copied().unwrap_or(max_idf) };
        let mut inter = 0.0f64;
        let mut union = 0.0f64;
        for (t, ca) in a.iter() {
            let cb = b.count(t);
            let w = weight(t);
            inter += w * ca.min(cb) as f64;
            union += w * ca.max(cb) as f64;
        }
        for (t, cb) in b.iter() {
            if a.count(t) == 0 {
                union += weight(t) * cb as f64;
            }
        }
        if union <= 0.0 {
            1.0
        } else {
            inter / union
        }
    }

    /// Total feature dimension.
    pub fn dim(&self) -> usize {
        let base = self.config.n_buckets + OVERLAP_CHANNELS * self.config.overlap_bins;
        if self.config.include_sim_block {
            base + self.n_attrs * PER_ATTR_FEATURES + GLOBAL_FEATURES
        } else {
            base
        }
    }

    /// Dimension of the dense similarity block alone (used by ZeroER,
    /// which models similarity vectors generatively).
    pub fn sim_dim(&self) -> usize {
        self.n_attrs * PER_ATTR_FEATURES + GLOBAL_FEATURES
    }

    /// Featurize one pair.
    pub fn featurize(&self, dataset: &Dataset, idx: PairIdx) -> Result<Vec<f32>> {
        let (l, r) = dataset.pair_records(idx)?;
        let mut out = vec![0.0f32; self.dim()];

        // --- Hashed token block. ----------------------------------------
        let ltokens = tokenize(&l.full_text());
        let rtokens = tokenize(&r.full_text());
        let lset = TokenSet::from_tokens(ltokens.iter().cloned());
        let rset = TokenSet::from_tokens(rtokens.iter().cloned());
        for (t, lc) in lset.iter() {
            let rc = rset.count(t);
            let inter = lc.min(rc);
            let lonly = lc - inter;
            if inter > 0 {
                self.bump(&mut out, "I:", t, inter as f32);
            }
            if lonly > 0 {
                self.bump(&mut out, "L:", t, lonly as f32);
            }
        }
        for (t, rc) in rset.iter() {
            let ronly = rc - lset.count(t).min(rc);
            if ronly > 0 {
                self.bump(&mut out, "R:", t, ronly as f32);
            }
        }
        // L2-normalize the hashed block so text length does not dominate.
        let norm: f32 = out[..self.config.n_buckets]
            .iter()
            .map(|x| x * x)
            .sum::<f32>()
            .sqrt();
        if norm > 0.0 {
            for x in &mut out[..self.config.n_buckets] {
                *x /= norm;
            }
        }

        // --- Binned overlap channels (one-hot). ---------------------------
        let lf = l.full_text();
        let rf = r.full_text();
        let lg = TokenSet::from_tokens(char_ngrams(&lf, self.config.trigram_n));
        let rg = TokenSet::from_tokens(char_ngrams(&rf, self.config.trigram_n));
        let mut numeric_sum = 0.0f64;
        let mut numeric_n = 0usize;
        for a in 0..self.n_attrs {
            let agreement = numeric_agreement(l.value(a).unwrap_or(""), r.value(a).unwrap_or(""));
            if agreement > 0.0 {
                numeric_sum += agreement as f64;
                numeric_n += 1;
            }
        }
        let channels = [
            jaccard(&lset, &rset),
            jaccard(&lg, &rg),
            overlap_coefficient(&lset, &rset),
            if numeric_n > 0 {
                numeric_sum / numeric_n as f64
            } else {
                0.0
            },
            self.idf_jaccard(&lset, &rset),
        ];
        let bins = self.config.overlap_bins;
        for (c, &value) in channels.iter().enumerate() {
            let bin = ((value * bins as f64) as usize).min(bins - 1);
            out[self.config.n_buckets + c * bins + bin] = 1.0;
        }

        // --- Dense similarity block (ablation only; see FeatureConfig). ---
        if self.config.include_sim_block {
            let sims = self.similarity_vector(dataset, idx)?;
            let offset = self.config.n_buckets + OVERLAP_CHANNELS * bins;
            out[offset..].copy_from_slice(&sims);
        }
        Ok(out)
    }

    /// The dense similarity feature vector of a pair (the model-agnostic
    /// representation ZeroER fits its mixture over).
    pub fn similarity_vector(&self, dataset: &Dataset, idx: PairIdx) -> Result<Vec<f32>> {
        let (l, r) = dataset.pair_records(idx)?;
        let mut out = Vec::with_capacity(self.sim_dim());
        for a in 0..self.n_attrs {
            let lv = l.value(a).unwrap_or("");
            let rv = r.value(a).unwrap_or("");
            let lt = TokenSet::from_text(lv);
            let rt = TokenSet::from_text(rv);
            let lg = TokenSet::from_tokens(char_ngrams(lv, self.config.trigram_n));
            let rg = TokenSet::from_tokens(char_ngrams(rv, self.config.trigram_n));
            out.push(jaccard(&lt, &rt) as f32);
            out.push(jaccard(&lg, &rg) as f32);
            out.push(overlap_coefficient(&lt, &rt) as f32);
            out.push(if !lv.is_empty() && lv == rv { 1.0 } else { 0.0 });
            out.push(if lv.is_empty() && rv.is_empty() {
                1.0
            } else {
                0.0
            });
            out.push(numeric_agreement(lv, rv));
        }
        let lf = l.full_text();
        let rf = r.full_text();
        let lt = TokenSet::from_text(&lf);
        let rt = TokenSet::from_text(&rf);
        let lg = TokenSet::from_tokens(char_ngrams(&lf, self.config.trigram_n));
        let rg = TokenSet::from_tokens(char_ngrams(&rf, self.config.trigram_n));
        out.push(jaccard(&lt, &rt) as f32);
        out.push(jaccard(&lg, &rg) as f32);
        out.push(overlap_coefficient(&lt, &rt) as f32);
        let (ll, rl) = (lf.len() as f32, rf.len() as f32);
        out.push(if ll.max(rl) > 0.0 {
            ll.min(rl) / ll.max(rl)
        } else {
            1.0
        });
        debug_assert_eq!(out.len(), self.sim_dim());
        Ok(out)
    }

    /// Featurize every pair of the dataset into one matrix.
    pub fn featurize_all(&self, dataset: &Dataset) -> Result<Embeddings> {
        let mut m = Embeddings::new(self.dim())?;
        for i in 0..dataset.len() {
            m.push(&self.featurize(dataset, i)?)?;
        }
        Ok(m)
    }

    /// Similarity vectors for every pair (for ZeroER).
    pub fn similarity_all(&self, dataset: &Dataset) -> Result<Embeddings> {
        let mut m = Embeddings::new(self.sim_dim())?;
        for i in 0..dataset.len() {
            m.push(&self.similarity_vector(dataset, i)?)?;
        }
        Ok(m)
    }

    /// Signed feature hashing: bucket by FNV-1a, sign by a second hash.
    fn bump(&self, out: &mut [f32], namespace: &str, token: &str, weight: f32) {
        let h = fnv1a(namespace.as_bytes(), token.as_bytes());
        let bucket = (h % self.config.n_buckets as u64) as usize;
        let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        out[bucket] += sign * weight;
    }
}

/// FNV-1a over a namespaced byte string.
fn fnv1a(namespace: &[u8], token: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in namespace.iter().chain(token) {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// 1 − relative difference for numeric-looking values; 0 when either side
/// is non-numeric or missing.
fn numeric_agreement(a: &str, b: &str) -> f32 {
    match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
        (Ok(x), Ok(y)) => {
            let denom = x.abs().max(y.abs());
            if denom == 0.0 {
                1.0
            } else {
                (1.0 - ((x - y).abs() / denom)).max(0.0) as f32
            }
        }
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::Rng;
    use em_synth::{generate, DatasetProfile};

    fn dataset() -> Dataset {
        let p = DatasetProfile::amazon_google().scaled(0.02);
        generate(&p, &mut Rng::seed_from_u64(3)).unwrap()
    }

    #[test]
    fn dims_are_consistent() {
        let d = dataset();
        let f = Featurizer::new(&d, FeatureConfig::default()).unwrap();
        assert_eq!(f.dim(), 768 + OVERLAP_CHANNELS * 16);
        assert_eq!(f.sim_dim(), 3 * PER_ATTR_FEATURES + GLOBAL_FEATURES);
        let with_sims = Featurizer::new(
            &d,
            FeatureConfig {
                include_sim_block: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            with_sims.dim(),
            768 + OVERLAP_CHANNELS * 16 + 3 * PER_ATTR_FEATURES + GLOBAL_FEATURES
        );
        let v = f.featurize(&d, 0).unwrap();
        assert_eq!(v.len(), f.dim());
        let s = f.similarity_vector(&d, 0).unwrap();
        assert_eq!(s.len(), f.sim_dim());
    }

    #[test]
    fn hashed_block_is_unit_norm() {
        let d = dataset();
        let f = Featurizer::new(&d, FeatureConfig::default()).unwrap();
        let v = f.featurize(&d, 0).unwrap();
        let norm: f32 = v[..768].iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4, "norm {norm}");
    }

    #[test]
    fn match_pairs_have_higher_similarity_features() {
        let d = dataset();
        let f = Featurizer::new(&d, FeatureConfig::default()).unwrap();
        let mut match_sim = 0.0f64;
        let mut match_n = 0;
        let mut neg_sim = 0.0f64;
        let mut neg_n = 0;
        for i in 0..d.len() {
            let s = f.similarity_vector(&d, i).unwrap();
            // Whole-record token jaccard is at sim_dim-4.
            let j = s[f.sim_dim() - 4] as f64;
            if d.ground_truth(i).is_match() {
                match_sim += j;
                match_n += 1;
            } else {
                neg_sim += j;
                neg_n += 1;
            }
        }
        assert!(match_sim / match_n as f64 > neg_sim / neg_n as f64 + 0.1);
    }

    #[test]
    fn identical_records_have_saturated_features() {
        // Pair a record with itself through a hand-built dataset.
        use em_core::{CandidatePair, Label, RecordId, Schema, Split, Table};
        let schema = Schema::new(["title", "price"]).unwrap();
        let mut l = Table::new("l", schema.clone());
        let mut r = Table::new("r", schema);
        l.push(["acera quantum camera", "24.99"]).unwrap();
        r.push(["acera quantum camera", "24.99"]).unwrap();
        l.push(["different thing", "1.00"]).unwrap();
        r.push(["unrelated gadget", "990.00"]).unwrap();
        let d = Dataset::new(
            "t",
            l,
            r,
            vec![
                CandidatePair::new(RecordId(0), RecordId(0)),
                CandidatePair::new(RecordId(1), RecordId(1)),
            ],
            vec![Label::Match, Label::NonMatch],
            Split {
                train: vec![0, 1],
                valid: vec![],
                test: vec![],
            },
        )
        .unwrap();
        let f = Featurizer::new(&d, FeatureConfig::default()).unwrap();
        let s = f.similarity_vector(&d, 0).unwrap();
        // Attribute 0: token jaccard, trigram jaccard, overlap, equal flag.
        assert_eq!(&s[..4], &[1.0, 1.0, 1.0, 1.0]);
        // Numeric agreement for equal prices: attribute 1's block starts
        // at PER_ATTR_FEATURES, its numeric feature is the 6th entry.
        assert_eq!(s[PER_ATTR_FEATURES + 5], 1.0);
        // The unrelated pair scores low.
        let s2 = f.similarity_vector(&d, 1).unwrap();
        assert!(s2[0] < 0.2);
    }

    #[test]
    fn featurize_all_shapes() {
        let d = dataset();
        let f = Featurizer::new(&d, FeatureConfig::default()).unwrap();
        let m = f.featurize_all(&d).unwrap();
        assert_eq!(m.len(), d.len());
        assert_eq!(m.dim(), f.dim());
    }

    #[test]
    fn numeric_agreement_cases() {
        assert_eq!(numeric_agreement("100", "100"), 1.0);
        assert!((numeric_agreement("100", "90") - 0.9).abs() < 1e-6);
        assert_eq!(numeric_agreement("abc", "100"), 0.0);
        assert_eq!(numeric_agreement("", ""), 0.0);
        assert_eq!(numeric_agreement("0", "0"), 1.0);
    }

    #[test]
    fn config_validation() {
        let d = dataset();
        assert!(Featurizer::new(
            &d,
            FeatureConfig {
                n_buckets: 4,
                ..Default::default()
            }
        )
        .is_err());
        assert!(Featurizer::new(
            &d,
            FeatureConfig {
                trigram_n: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(Featurizer::new(
            &d,
            FeatureConfig {
                overlap_bins: 1,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn deterministic() {
        let d = dataset();
        let f = Featurizer::new(&d, FeatureConfig::default()).unwrap();
        assert_eq!(f.featurize(&d, 5).unwrap(), f.featurize(&d, 5).unwrap());
    }
}
