//! Confidence calibration utilities.
//!
//! The battleship approach exists because PLM matchers are badly
//! calibrated: "they tend to produce extreme confidence values (close to
//! 0 or 1) which barely reflect the real confidence" (§1, citing Guo et
//! al. 2017). A small MLP is naturally *better* calibrated than a
//! 125M-parameter RoBERTa, so to preserve the phenomenon the selection
//! algorithm is designed around, the matcher applies **temperature
//! sharpening** (`T < 1`) to its logits at prediction time. The
//! `ablation_calibration` bench measures what happens to the battleship
//! and DAL selection mechanisms when the confidence is left raw.

use em_core::{EmError, Result};

use crate::mlp::sigmoid;

/// Re-scale a probability through logit temperature:
/// `p' = σ(logit(p) / T)`.
///
/// `T < 1` sharpens toward 0/1 (PLM-style over-confidence), `T > 1`
/// smooths toward 0.5. `T = 1` is the identity.
pub fn apply_temperature(p: f32, temperature: f32) -> Result<f32> {
    if temperature <= 0.0 || !temperature.is_finite() {
        return Err(EmError::InvalidConfig(format!(
            "temperature {temperature} must be positive and finite"
        )));
    }
    let p = p.clamp(1e-7, 1.0 - 1e-7);
    let logit = (p / (1.0 - p)).ln();
    Ok(sigmoid(logit / temperature))
}

/// Expected calibration error over equal-width confidence bins.
///
/// `ECE = Σ_b (n_b / n) · |acc(b) − conf(b)|` with `conf` the mean
/// predicted match probability in bin `b` and `acc` the empirical match
/// rate. Lower is better calibrated; sharpening raises it.
pub fn expected_calibration_error(probs: &[f32], labels: &[bool], n_bins: usize) -> Result<f64> {
    if probs.len() != labels.len() {
        return Err(EmError::DimensionMismatch {
            context: "ECE inputs".into(),
            expected: probs.len(),
            actual: labels.len(),
        });
    }
    if probs.is_empty() {
        return Err(EmError::EmptyInput("ECE probabilities".into()));
    }
    if n_bins == 0 {
        return Err(EmError::InvalidConfig("ECE needs n_bins > 0".into()));
    }
    let mut bin_conf = vec![0.0f64; n_bins];
    let mut bin_acc = vec![0.0f64; n_bins];
    let mut bin_n = vec![0usize; n_bins];
    for (&p, &y) in probs.iter().zip(labels) {
        let b = (((p as f64) * n_bins as f64) as usize).min(n_bins - 1);
        bin_conf[b] += p as f64;
        bin_acc[b] += if y { 1.0 } else { 0.0 };
        bin_n[b] += 1;
    }
    let n = probs.len() as f64;
    let mut ece = 0.0f64;
    for b in 0..n_bins {
        if bin_n[b] == 0 {
            continue;
        }
        let conf = bin_conf[b] / bin_n[b] as f64;
        let acc = bin_acc[b] / bin_n[b] as f64;
        ece += (bin_n[b] as f64 / n) * (acc - conf).abs();
    }
    Ok(ece)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_at_t1() {
        for p in [0.1f32, 0.3, 0.5, 0.9] {
            assert!((apply_temperature(p, 1.0).unwrap() - p).abs() < 1e-5);
        }
    }

    #[test]
    fn sharpening_pushes_toward_extremes() {
        let p = 0.7f32;
        let sharp = apply_temperature(p, 0.25).unwrap();
        assert!(sharp > 0.95, "sharpened {sharp}");
        let low = apply_temperature(0.3, 0.25).unwrap();
        assert!(low < 0.05, "sharpened {low}");
        // 0.5 is the fixed point.
        assert!((apply_temperature(0.5, 0.25).unwrap() - 0.5).abs() < 1e-5);
    }

    #[test]
    fn smoothing_pulls_toward_half() {
        let smooth = apply_temperature(0.9, 4.0).unwrap();
        assert!(smooth < 0.9 && smooth > 0.5, "smoothed {smooth}");
    }

    #[test]
    fn temperature_validated() {
        assert!(apply_temperature(0.5, 0.0).is_err());
        assert!(apply_temperature(0.5, -1.0).is_err());
        assert!(apply_temperature(0.5, f32::NAN).is_err());
    }

    #[test]
    fn extreme_probs_stay_finite() {
        assert!(apply_temperature(0.0, 0.1).unwrap().is_finite());
        assert!(apply_temperature(1.0, 0.1).unwrap().is_finite());
    }

    #[test]
    fn perfectly_calibrated_has_zero_ece() {
        // Probability 0.8 with exactly 80% positives in that bin.
        let probs = vec![0.8f32; 10];
        let labels = vec![true, true, true, true, true, true, true, true, false, false];
        let ece = expected_calibration_error(&probs, &labels, 10).unwrap();
        assert!(ece < 1e-6, "ece {ece}");
    }

    #[test]
    fn overconfident_predictions_have_high_ece() {
        // Claims 0.99 but is right only half the time.
        let probs = vec![0.99f32; 10];
        let labels = vec![
            true, false, true, false, true, false, true, false, true, false,
        ];
        let ece = expected_calibration_error(&probs, &labels, 10).unwrap();
        assert!((ece - 0.49).abs() < 0.01, "ece {ece}");
    }

    #[test]
    fn sharpening_increases_ece_of_calibrated_model() {
        let probs: Vec<f32> = (0..100).map(|i| 0.3 + 0.4 * (i as f32 / 99.0)).collect();
        // Labels drawn to match the probabilities deterministically: true
        // for the top fraction within each bin approximation.
        let labels: Vec<bool> = probs.iter().enumerate().map(|(i, _)| i % 2 == 0).collect();
        let base = expected_calibration_error(&probs, &labels, 10).unwrap();
        let sharpened: Vec<f32> = probs
            .iter()
            .map(|&p| apply_temperature(p, 0.2).unwrap())
            .collect();
        let sharp_ece = expected_calibration_error(&sharpened, &labels, 10).unwrap();
        assert!(sharp_ece > base, "sharpened ECE {sharp_ece} <= base {base}");
    }

    #[test]
    fn ece_validates_inputs() {
        assert!(expected_calibration_error(&[0.5], &[], 10).is_err());
        assert!(expected_calibration_error(&[], &[], 10).is_err());
        assert!(expected_calibration_error(&[0.5], &[true], 0).is_err());
    }
}
