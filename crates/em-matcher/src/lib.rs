#![forbid(unsafe_code)]
//! # em-matcher
//!
//! The neural matcher substrate — a laptop-scale stand-in for DITTO.
//!
//! The paper trains DITTO (RoBERTa fine-tuned per active-learning
//! iteration) and consumes exactly three of its outputs (§3.2): a pair
//! representation (the `[CLS]` embedding), a binary prediction, and a
//! confidence value that is *badly calibrated* — "transformer-based
//! pre-trained language models tend to produce an uncalibrated confidence
//! value, assigning mostly dichotomous values close to either 0 or 1"
//! (§3.5.1). This crate reproduces that interface with a from-scratch
//! multi-layer perceptron:
//!
//! * [`features`] — DITTO-style serialization is tokenized and hashed
//!   (signed feature hashing) together with per-attribute similarity
//!   features; features are a pure function of the text, so they are
//!   computed once per dataset and reused across iterations,
//! * [`mlp`] — dense layers with ReLU, sigmoid head, manual
//!   backpropagation; the **last hidden activation is the pair
//!   representation** (the `[CLS]` analogue); both passes are
//!   layer-level GEMMs on `em-vector`'s runtime-dispatched kernels over
//!   a reusable workspace,
//! * [`reference`] — the seed's per-sample scalar forward/backward/
//!   train/predict loops, preserved verbatim as the measured baseline
//!   for the `em-bench` matcher benchmark,
//! * [`adamw`] — the AdamW optimizer (Loshchilov & Hutter), which the
//!   paper also uses,
//! * [`matcher`] — the training loop: mini-batches, epochs, best-epoch
//!   selection by validation F1 (the paper's §4.2 protocol),
//! * [`calibration`] — temperature sharpening that reproduces the PLM
//!   over-confidence phenomenon (plus ECE to measure it),
//! * [`committee`] — multi-seed matcher committees for the DIAL baseline
//!   (query-by-committee uncertainty).

pub mod adamw;
pub mod calibration;
pub mod committee;
pub mod features;
pub mod matcher;
pub mod mlp;
pub mod reference;

pub use adamw::AdamW;
pub use calibration::{apply_temperature, expected_calibration_error};
pub use committee::{Committee, CommitteeConfig};
pub use features::{FeatureConfig, Featurizer};
pub use matcher::{train_matcher, MatcherConfig, MatcherOutput, MatcherSnapshot, TrainedMatcher};
pub use mlp::{Mlp, MlpWorkspace};
pub use reference::{predict_reference, train_matcher_reference};
