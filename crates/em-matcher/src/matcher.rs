//! The matcher training loop and prediction interface.
//!
//! Follows the paper's protocol (§4.2): each active-learning iteration
//! trains a *fresh* model ("the parameters of DITTO in an active learning
//! iteration are initialized without using the values of previous
//! iterations") for a fixed number of epochs, keeping the parameters of
//! the epoch with the best validation F1. Prediction produces, per pair,
//! the match probability (temperature-sharpened, see
//! [`crate::calibration`]) and the pair representation.

use serde::{Deserialize, Serialize};

use em_core::{BinaryConfusion, EmError, Label, Prediction, Result, Rng};
use em_vector::Embeddings;

use crate::adamw::AdamW;
use crate::calibration::apply_temperature;
use crate::mlp::{sigmoid, Mlp};

/// Matcher hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatcherConfig {
    /// Hidden layer widths; the last one is the representation dimension
    /// (the paper's `[CLS]` vector is 768-d; 96 is plenty for the MLP
    /// substrate — see DESIGN.md on this substitution).
    pub hidden: Vec<usize>,
    /// Training epochs per active-learning iteration. The paper uses 12
    /// (8 for DBLP-Scholar) when *fine-tuning* a pretrained RoBERTa; a
    /// from-scratch MLP needs more optimizer steps to reach its
    /// asymptote, so the default is higher (see DESIGN.md on the matcher
    /// substitution).
    pub epochs: usize,
    /// Mini-batch size (the paper uses 12; 16 gives the MLP more steps
    /// per epoch at equal cost).
    pub batch_size: usize,
    /// AdamW learning rate.
    pub lr: f32,
    /// AdamW decoupled weight decay.
    pub weight_decay: f32,
    /// Prediction-time logit temperature; < 1 sharpens, emulating PLM
    /// over-confidence (§3.5.1). Set to 1.0 for raw probabilities.
    pub temperature: f32,
    /// Weight initialisation / shuffling seed.
    pub seed: u64,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            hidden: vec![96],
            epochs: 40,
            batch_size: 16,
            lr: 8e-3,
            weight_decay: 1e-4,
            temperature: 0.25,
            seed: 0xD1770,
        }
    }
}

impl MatcherConfig {
    fn validate(&self) -> Result<()> {
        if self.epochs == 0 {
            return Err(EmError::InvalidConfig("epochs must be > 0".into()));
        }
        if self.batch_size == 0 {
            return Err(EmError::InvalidConfig("batch_size must be > 0".into()));
        }
        if self.temperature <= 0.0 {
            return Err(EmError::InvalidConfig("temperature must be > 0".into()));
        }
        Ok(())
    }
}

/// A trained matcher ready for prediction.
#[derive(Debug, Clone)]
pub struct TrainedMatcher {
    mlp: Mlp,
    temperature: f32,
    /// Best validation F1 seen during training (0 if no validation data).
    pub best_valid_f1: f64,
    /// Epoch (0-based) whose parameters were kept.
    pub best_epoch: usize,
}

/// Batched prediction output over a set of pairs.
#[derive(Debug, Clone)]
pub struct MatcherOutput {
    /// Per-pair prediction (sharpened probability + thresholded label).
    pub predictions: Vec<Prediction>,
    /// Per-pair representation (last hidden activation).
    pub representations: Embeddings,
}

impl TrainedMatcher {
    /// Predict one feature vector: `(prediction, representation)`.
    pub fn predict_one(&self, features: &[f32]) -> Result<(Prediction, Vec<f32>)> {
        let (logit, repr) = self.mlp.forward(features)?;
        let raw = sigmoid(logit);
        let prob = apply_temperature(raw, self.temperature)?;
        Ok((Prediction::from_prob(prob), repr))
    }

    /// Predict rows `indices` of the feature matrix.
    pub fn predict(&self, features: &Embeddings, indices: &[usize]) -> Result<MatcherOutput> {
        let mut predictions = Vec::with_capacity(indices.len());
        let mut representations = Embeddings::new(self.mlp.repr_dim())?;
        for &i in indices {
            if i >= features.len() {
                return Err(EmError::IndexOutOfBounds {
                    context: "matcher predict".into(),
                    index: i,
                    len: features.len(),
                });
            }
            let (pred, repr) = self.predict_one(features.row(i))?;
            predictions.push(pred);
            representations.push(&repr)?;
        }
        Ok(MatcherOutput {
            predictions,
            representations,
        })
    }

    /// Predict every row of the feature matrix.
    pub fn predict_all(&self, features: &Embeddings) -> Result<MatcherOutput> {
        let all: Vec<usize> = (0..features.len()).collect();
        self.predict(features, &all)
    }

    /// F1 against ground truth over the given rows.
    pub fn evaluate(
        &self,
        features: &Embeddings,
        indices: &[usize],
        truth: &[Label],
    ) -> Result<em_core::Metrics> {
        let out = self.predict(features, indices)?;
        let predicted: Vec<Label> = out.predictions.iter().map(|p| p.label).collect();
        Ok(BinaryConfusion::from_labels(&predicted, truth)?.metrics())
    }
}

/// Train a matcher on rows `train_idx` (with `train_labels`) of
/// `features`, selecting the best epoch by F1 on `valid_idx`.
///
/// An empty validation set keeps the final epoch's parameters.
pub fn train_matcher(
    features: &Embeddings,
    train_idx: &[usize],
    train_labels: &[Label],
    valid_idx: &[usize],
    valid_labels: &[Label],
    config: &MatcherConfig,
) -> Result<TrainedMatcher> {
    config.validate()?;
    if train_idx.is_empty() {
        return Err(EmError::EmptyInput("matcher training set".into()));
    }
    if train_idx.len() != train_labels.len() {
        return Err(EmError::DimensionMismatch {
            context: "matcher train labels".into(),
            expected: train_idx.len(),
            actual: train_labels.len(),
        });
    }
    if valid_idx.len() != valid_labels.len() {
        return Err(EmError::DimensionMismatch {
            context: "matcher valid labels".into(),
            expected: valid_idx.len(),
            actual: valid_labels.len(),
        });
    }

    let mut rng = Rng::seed_from_u64(config.seed);
    let mut mlp = Mlp::new(features.dim(), &config.hidden, &mut rng)?;
    let mut opt = AdamW::new(mlp.n_params(), config.lr, config.weight_decay)?;
    let decay_mask = mlp.decay_mask().to_vec();

    let mut order: Vec<usize> = (0..train_idx.len()).collect();
    let mut grads: Vec<f32> = Vec::new();
    let mut best_snapshot = mlp.snapshot();
    let mut best_f1 = f64::NEG_INFINITY;
    let mut best_epoch = 0usize;

    for epoch in 0..config.epochs {
        rng.shuffle(&mut order);
        for chunk in order.chunks(config.batch_size) {
            let xs: Vec<&[f32]> = chunk.iter().map(|&o| features.row(train_idx[o])).collect();
            let ys: Vec<f32> = chunk.iter().map(|&o| train_labels[o].as_f32()).collect();
            let ws = vec![1.0f32; xs.len()];
            mlp.backward_batch(&xs, &ys, &ws, &mut grads)?;
            opt.step(mlp.params_mut(), &grads, &decay_mask)?;
        }
        // Best-epoch selection on validation F1 (paper §4.2). Raw
        // (untempered) probabilities — temperature only affects reported
        // confidence, not the argmax label, so F1 is unchanged by it; we
        // evaluate through the same path for simplicity.
        if !valid_idx.is_empty() {
            let probe = TrainedMatcher {
                mlp: mlp.clone(),
                temperature: config.temperature,
                best_valid_f1: 0.0,
                best_epoch: 0,
            };
            let f1 = probe.evaluate(features, valid_idx, valid_labels)?.f1;
            if f1 > best_f1 {
                best_f1 = f1;
                best_snapshot = mlp.snapshot();
                best_epoch = epoch;
            }
        } else {
            best_snapshot = mlp.snapshot();
            best_epoch = epoch;
        }
    }
    mlp.restore(&best_snapshot)?;

    Ok(TrainedMatcher {
        mlp,
        temperature: config.temperature,
        best_valid_f1: if best_f1.is_finite() { best_f1 } else { 0.0 },
        best_epoch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureConfig, Featurizer};
    use em_synth::{generate, DatasetProfile};

    fn small_task() -> (Embeddings, Vec<usize>, Vec<Label>, Vec<usize>, Vec<Label>) {
        let p = DatasetProfile::amazon_google().scaled(0.03);
        let d = generate(&p, &mut Rng::seed_from_u64(7)).unwrap();
        let f = Featurizer::new(&d, FeatureConfig::default()).unwrap();
        let feats = f.featurize_all(&d).unwrap();
        let train = d.split().train.clone();
        let train_labels = d.ground_truth_of(&train);
        let test = d.split().test.clone();
        let test_labels = d.ground_truth_of(&test);
        (feats, train, train_labels, test, test_labels)
    }

    #[test]
    fn trains_to_useful_f1_on_synthetic_benchmark() {
        // Walmart-Amazon at 15 % scale (~1k train pairs): the MLP should
        // clear 0.5 (the full-size Full-D lands above 0.8).
        let p = DatasetProfile::walmart_amazon().scaled(0.15);
        let d = generate(&p, &mut Rng::seed_from_u64(7)).unwrap();
        let f = Featurizer::new(&d, FeatureConfig::default()).unwrap();
        let feats = f.featurize_all(&d).unwrap();
        let train = d.split().train.clone();
        let train_labels = d.ground_truth_of(&train);
        let test = d.split().test.clone();
        let test_labels = d.ground_truth_of(&test);
        let m = train_matcher(
            &feats,
            &train,
            &train_labels,
            &[],
            &[],
            &MatcherConfig::default(),
        )
        .unwrap();
        let f1 = m.evaluate(&feats, &test, &test_labels).unwrap().f1;
        assert!(f1 > 0.5, "full-train F1 {f1}");
    }

    #[test]
    fn more_data_beats_tiny_data() {
        let (feats, train, train_labels, test, test_labels) = small_task();
        let cfg = MatcherConfig::default();
        let small =
            train_matcher(&feats, &train[..12], &train_labels[..12], &[], &[], &cfg).unwrap();
        let large = train_matcher(&feats, &train, &train_labels, &[], &[], &cfg).unwrap();
        let f1_small = small.evaluate(&feats, &test, &test_labels).unwrap().f1;
        let f1_large = large.evaluate(&feats, &test, &test_labels).unwrap().f1;
        assert!(
            f1_large >= f1_small,
            "more data hurt: {f1_large} < {f1_small}"
        );
    }

    #[test]
    fn sharpened_confidences_are_dichotomous() {
        // The PLM-overconfidence emulation: most predictions should sit
        // near 0 or 1 after temperature sharpening.
        let (feats, train, train_labels, test, _) = small_task();
        let m = train_matcher(
            &feats,
            &train,
            &train_labels,
            &[],
            &[],
            &MatcherConfig::default(),
        )
        .unwrap();
        let out = m.predict(&feats, &test).unwrap();
        let extreme = out
            .predictions
            .iter()
            .filter(|p| p.prob < 0.05 || p.prob > 0.95)
            .count();
        let frac = extreme as f64 / out.predictions.len() as f64;
        assert!(frac > 0.7, "only {frac:.2} of confidences are extreme");
    }

    #[test]
    fn representations_have_configured_dim_and_separate_classes() {
        // Walmart-Amazon at 10% scale: enough data for the hidden layer
        // to develop class structure (the Figure 1 phenomenon).
        let p = DatasetProfile::walmart_amazon().scaled(0.1);
        let d = generate(&p, &mut Rng::seed_from_u64(7)).unwrap();
        let f = Featurizer::new(&d, FeatureConfig::default()).unwrap();
        let feats = f.featurize_all(&d).unwrap();
        let train = d.split().train.clone();
        let train_labels = d.ground_truth_of(&train);
        let test = d.split().test.clone();
        let test_labels = d.ground_truth_of(&test);
        let cfg = MatcherConfig {
            hidden: vec![32, 16],
            ..Default::default()
        };
        let m = train_matcher(&feats, &train, &train_labels, &[], &[], &cfg).unwrap();
        let out = m.predict(&feats, &test).unwrap();
        assert_eq!(out.representations.dim(), 16);
        assert_eq!(out.representations.len(), test.len());
        // Match-pair representations should be more similar to each other
        // than to non-match representations (Figure 1's phenomenon).
        let pos: Vec<usize> = (0..test.len())
            .filter(|&i| test_labels[i].is_match())
            .collect();
        let neg: Vec<usize> = (0..test.len())
            .filter(|&i| !test_labels[i].is_match())
            .collect();
        if pos.len() >= 2 && !neg.is_empty() {
            let mut intra = 0.0f64;
            let mut n_intra = 0;
            for i in 0..pos.len().min(20) {
                for j in i + 1..pos.len().min(20) {
                    intra += out.representations.cosine(pos[i], pos[j]) as f64;
                    n_intra += 1;
                }
            }
            let mut inter = 0.0f64;
            let mut n_inter = 0;
            for &i in pos.iter().take(20) {
                for &j in neg.iter().take(20) {
                    inter += out.representations.cosine(i, j) as f64;
                    n_inter += 1;
                }
            }
            assert!(
                intra / n_intra as f64 > inter / n_inter as f64,
                "no class structure in representations"
            );
        }
    }

    #[test]
    fn best_epoch_selection_uses_validation() {
        // A mid-sized Walmart-Amazon task where the matcher reliably gets
        // off the ground, so the best validation F1 is strictly positive.
        let p = DatasetProfile::walmart_amazon().scaled(0.1);
        let d = generate(&p, &mut Rng::seed_from_u64(7)).unwrap();
        let f = Featurizer::new(&d, FeatureConfig::default()).unwrap();
        let feats = f.featurize_all(&d).unwrap();
        let train = d.split().train.clone();
        let train_labels = d.ground_truth_of(&train);
        let test = d.split().test.clone();
        let test_labels = d.ground_truth_of(&test);
        let m = train_matcher(
            &feats,
            &train,
            &train_labels,
            &test,
            &test_labels,
            &MatcherConfig::default(),
        )
        .unwrap();
        assert!(m.best_valid_f1 > 0.0);
        assert!(m.best_epoch < MatcherConfig::default().epochs);
    }

    #[test]
    fn deterministic_given_seed() {
        let (feats, train, train_labels, _, _) = small_task();
        let cfg = MatcherConfig::default();
        let a = train_matcher(&feats, &train, &train_labels, &[], &[], &cfg).unwrap();
        let b = train_matcher(&feats, &train, &train_labels, &[], &[], &cfg).unwrap();
        let pa = a.predict(&feats, &[0, 1, 2]).unwrap();
        let pb = b.predict(&feats, &[0, 1, 2]).unwrap();
        for (x, y) in pa.predictions.iter().zip(&pb.predictions) {
            assert_eq!(x.prob, y.prob);
        }
    }

    #[test]
    fn validates_inputs() {
        let (feats, train, train_labels, _, _) = small_task();
        let cfg = MatcherConfig::default();
        assert!(train_matcher(&feats, &[], &[], &[], &[], &cfg).is_err());
        assert!(train_matcher(&feats, &train, &train_labels[..3], &[], &[], &cfg).is_err());
        let bad = MatcherConfig {
            epochs: 0,
            ..Default::default()
        };
        assert!(train_matcher(&feats, &train, &train_labels, &[], &[], &bad).is_err());
        let m = train_matcher(&feats, &train, &train_labels, &[], &[], &cfg).unwrap();
        assert!(m.predict(&feats, &[999_999]).is_err());
    }
}
