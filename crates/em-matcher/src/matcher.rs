//! The matcher training loop and prediction interface.
//!
//! Follows the paper's protocol (§4.2): each active-learning iteration
//! trains a *fresh* model ("the parameters of DITTO in an active learning
//! iteration are initialized without using the values of previous
//! iterations") for a fixed number of epochs, keeping the parameters of
//! the epoch with the best validation F1. Prediction produces, per pair,
//! the match probability (temperature-sharpened, see
//! [`crate::calibration`]) and the pair representation.
//!
//! Both halves run on the batched GEMM engine: training steps go through
//! [`Mlp::backward_batch`] over one reusable [`MlpWorkspace`], the
//! per-epoch validation probe evaluates F1 through a borrowed batched
//! forward pass (no `mlp.clone()`, no throwaway matcher), and
//! [`TrainedMatcher::predict`] packs the requested rows and fans the
//! forward passes out over rayon chunks — bit-identical to the per-row
//! [`TrainedMatcher::predict_one`] path, chunked or not (the golden
//! tests below assert it). The seed's scalar loop lives on in
//! [`crate::reference`] as the benchmark baseline.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use em_core::{BinaryConfusion, EmError, Label, Prediction, Result, Rng};
use em_vector::Embeddings;

use crate::adamw::AdamW;
use crate::calibration::apply_temperature;
use crate::mlp::{sigmoid, Mlp, MlpWorkspace};

/// Rows per parallel prediction chunk: large enough that the per-chunk
/// workspace allocation amortizes, small enough to fan out on few-row
/// calls.
const PREDICT_CHUNK: usize = 256;

/// Matcher hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatcherConfig {
    /// Hidden layer widths; the last one is the representation dimension
    /// (the paper's `[CLS]` vector is 768-d; 96 is plenty for the MLP
    /// substrate — see DESIGN.md on this substitution).
    pub hidden: Vec<usize>,
    /// Training epochs per active-learning iteration. The paper uses 12
    /// (8 for DBLP-Scholar) when *fine-tuning* a pretrained RoBERTa; a
    /// from-scratch MLP needs more optimizer steps to reach its
    /// asymptote, so the default is higher (see DESIGN.md on the matcher
    /// substitution).
    pub epochs: usize,
    /// Mini-batch size (the paper uses 12; 16 gives the MLP more steps
    /// per epoch at equal cost).
    pub batch_size: usize,
    /// AdamW learning rate.
    pub lr: f32,
    /// AdamW decoupled weight decay.
    pub weight_decay: f32,
    /// Prediction-time logit temperature; < 1 sharpens, emulating PLM
    /// over-confidence (§3.5.1). Set to 1.0 for raw probabilities.
    pub temperature: f32,
    /// Weight initialisation / shuffling seed.
    pub seed: u64,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            hidden: vec![96],
            epochs: 40,
            batch_size: 16,
            lr: 8e-3,
            weight_decay: 1e-4,
            temperature: 0.25,
            seed: 0xD1770,
        }
    }
}

impl MatcherConfig {
    pub(crate) fn validate(&self) -> Result<()> {
        if self.epochs == 0 {
            return Err(EmError::InvalidConfig("epochs must be > 0".into()));
        }
        if self.batch_size == 0 {
            return Err(EmError::InvalidConfig("batch_size must be > 0".into()));
        }
        if self.temperature <= 0.0 {
            return Err(EmError::InvalidConfig("temperature must be > 0".into()));
        }
        Ok(())
    }
}

/// A trained matcher ready for prediction.
#[derive(Debug, Clone)]
pub struct TrainedMatcher {
    mlp: Mlp,
    temperature: f32,
    /// Best validation F1 seen during training (0 if no validation data).
    pub best_valid_f1: f64,
    /// Epoch (0-based) whose parameters were kept.
    pub best_epoch: usize,
}

/// The complete serializable state of a [`TrainedMatcher`].
///
/// A checkpointed active-learning session must persist its current
/// model mid-run and resume it bit-identically; this struct captures
/// everything prediction depends on — architecture, flat parameters,
/// the sharpening temperature — plus the training provenance fields.
/// [`TrainedMatcher::to_snapshot`] / [`TrainedMatcher::from_snapshot`]
/// round-trip exactly: the restored matcher's predictions are
/// bit-identical to the original's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatcherSnapshot {
    /// Input feature dimension.
    pub input_dim: usize,
    /// Hidden-layer widths (the last is the representation dimension).
    pub hidden: Vec<usize>,
    /// Flat network parameters ([`Mlp::snapshot`] layout).
    pub params: Vec<f32>,
    /// Prediction-time sharpening temperature.
    pub temperature: f32,
    /// Best validation F1 seen during training.
    pub best_valid_f1: f64,
    /// Epoch (0-based) whose parameters were kept.
    pub best_epoch: usize,
}

/// Binary frame magic for [`MatcherSnapshot`].
const MATCHER_SNAPSHOT_MAGIC: [u8; 4] = *b"EMMS";
/// Binary format version for [`MatcherSnapshot`].
const MATCHER_SNAPSHOT_VERSION: u8 = 1;

impl MatcherSnapshot {
    /// Encode the snapshot as a checksummed binary frame (see
    /// `em_core::codec`). The flat parameter array — the bulk of any
    /// session checkpoint — is written as raw little-endian `f32` bit
    /// patterns, so [`MatcherSnapshot::from_bytes`] restores a snapshot
    /// whose rebuilt matcher predicts bit-identically, exactly as the
    /// JSON path does at several times the size.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = em_core::ByteWriter::with_capacity(4 * self.params.len() + 64);
        w.put_usize(self.input_dim);
        w.put_usizes(&self.hidden);
        w.put_f32s(&self.params);
        w.put_f32(self.temperature);
        w.put_f64(self.best_valid_f1);
        w.put_usize(self.best_epoch);
        em_core::codec::write_frame(
            MATCHER_SNAPSHOT_MAGIC,
            MATCHER_SNAPSHOT_VERSION,
            w.as_slice(),
        )
    }

    /// Decode a frame written by [`MatcherSnapshot::to_bytes`].
    /// Corruption of any kind (truncation, bit flips, bad
    /// magic/version) is a structured [`EmError::Codec`], never a panic;
    /// shape validation beyond framing happens in
    /// [`TrainedMatcher::from_snapshot`].
    pub fn from_bytes(bytes: &[u8]) -> Result<MatcherSnapshot> {
        let payload = em_core::codec::read_frame(
            bytes,
            MATCHER_SNAPSHOT_MAGIC,
            MATCHER_SNAPSHOT_VERSION,
            "MatcherSnapshot",
        )?;
        let mut r = em_core::ByteReader::new(payload, "MatcherSnapshot");
        let snapshot = MatcherSnapshot {
            input_dim: r.get_usize()?,
            hidden: r.get_usizes()?,
            params: r.get_f32s()?,
            temperature: r.get_f32()?,
            best_valid_f1: r.get_f64()?,
            best_epoch: r.get_usize()?,
        };
        r.finish()?;
        Ok(snapshot)
    }
}

/// Batched prediction output over a set of pairs.
#[derive(Debug, Clone)]
pub struct MatcherOutput {
    /// Per-pair prediction (sharpened probability + thresholded label).
    pub predictions: Vec<Prediction>,
    /// Per-pair representation (last hidden activation).
    pub representations: Embeddings,
}

impl TrainedMatcher {
    /// Assemble a matcher from parts (the seed-verbatim reference
    /// training loop constructs its probes and results this way).
    pub(crate) fn from_parts(
        mlp: Mlp,
        temperature: f32,
        best_valid_f1: f64,
        best_epoch: usize,
    ) -> Self {
        TrainedMatcher {
            mlp,
            temperature,
            best_valid_f1,
            best_epoch,
        }
    }

    /// The underlying network (reference paths and tests read it).
    pub(crate) fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// The prediction-time sharpening temperature.
    pub(crate) fn temperature(&self) -> f32 {
        self.temperature
    }

    /// Capture the matcher's complete state for checkpointing.
    pub fn to_snapshot(&self) -> MatcherSnapshot {
        MatcherSnapshot {
            input_dim: self.mlp.input_dim(),
            hidden: self.mlp.hidden_dims(),
            params: self.mlp.snapshot(),
            temperature: self.temperature,
            best_valid_f1: self.best_valid_f1,
            best_epoch: self.best_epoch,
        }
    }

    /// Rebuild a matcher from a captured snapshot.
    ///
    /// The restored matcher predicts bit-identically to the one
    /// [`TrainedMatcher::to_snapshot`] was called on. Errors on
    /// malformed shapes (parameter count not matching the architecture)
    /// or an invalid temperature.
    pub fn from_snapshot(snapshot: &MatcherSnapshot) -> Result<TrainedMatcher> {
        if snapshot.temperature <= 0.0 {
            return Err(EmError::InvalidConfig(format!(
                "matcher snapshot temperature must be > 0, got {}",
                snapshot.temperature
            )));
        }
        let mlp = Mlp::from_params(
            snapshot.input_dim,
            &snapshot.hidden,
            snapshot.params.clone(),
        )?;
        Ok(TrainedMatcher {
            mlp,
            temperature: snapshot.temperature,
            best_valid_f1: snapshot.best_valid_f1,
            best_epoch: snapshot.best_epoch,
        })
    }

    /// Predict one feature vector: `(prediction, representation)`.
    pub fn predict_one(&self, features: &[f32]) -> Result<(Prediction, Vec<f32>)> {
        let (logit, repr) = self.mlp.forward(features)?;
        let raw = sigmoid(logit);
        let prob = apply_temperature(raw, self.temperature)?;
        Ok((Prediction::from_prob(prob), repr))
    }

    /// Predict rows `indices` of the feature matrix.
    ///
    /// Rows are packed into contiguous chunks and each chunk runs one
    /// batched forward pass on its own [`MlpWorkspace`]; chunks execute
    /// in parallel and results are reassembled in index order, so the
    /// output is bit-identical to calling [`TrainedMatcher::predict_one`]
    /// row by row, at any thread count.
    pub fn predict(&self, features: &Embeddings, indices: &[usize]) -> Result<MatcherOutput> {
        for &i in indices {
            if i >= features.len() {
                return Err(EmError::IndexOutOfBounds {
                    context: "matcher predict".into(),
                    index: i,
                    len: features.len(),
                });
            }
        }
        let repr_dim = self.mlp.repr_dim();
        if indices.is_empty() {
            return Ok(MatcherOutput {
                predictions: Vec::new(),
                representations: Embeddings::new(repr_dim)?,
            });
        }
        let dim = features.dim();
        let chunks: Vec<&[usize]> = indices.chunks(PREDICT_CHUNK).collect();
        let parts: Vec<Result<(Vec<Prediction>, Vec<f32>)>> = chunks
            .par_iter()
            .map(|&chunk| {
                let mut ws = MlpWorkspace::new();
                let mut xbuf = Vec::with_capacity(chunk.len() * dim);
                for &i in chunk {
                    xbuf.extend_from_slice(features.row(i));
                }
                let (logits, reprs) = self.mlp.forward_batch(&xbuf, chunk.len(), &mut ws)?;
                let mut preds = Vec::with_capacity(chunk.len());
                for &logit in logits {
                    let prob = apply_temperature(sigmoid(logit), self.temperature)?;
                    preds.push(Prediction::from_prob(prob));
                }
                Ok((preds, reprs.to_vec()))
            })
            .collect();
        let mut predictions = Vec::with_capacity(indices.len());
        let mut flat_reprs = Vec::with_capacity(indices.len() * repr_dim);
        for part in parts {
            let (preds, reprs) = part?;
            predictions.extend(preds);
            flat_reprs.extend(reprs);
        }
        Ok(MatcherOutput {
            predictions,
            representations: Embeddings::from_flat(repr_dim, flat_reprs)?,
        })
    }

    /// Predict every row of the feature matrix.
    pub fn predict_all(&self, features: &Embeddings) -> Result<MatcherOutput> {
        let all: Vec<usize> = (0..features.len()).collect();
        self.predict(features, &all)
    }

    /// F1 against ground truth over the given rows.
    pub fn evaluate(
        &self,
        features: &Embeddings,
        indices: &[usize],
        truth: &[Label],
    ) -> Result<em_core::Metrics> {
        let out = self.predict(features, indices)?;
        let predicted: Vec<Label> = out.predictions.iter().map(|p| p.label).collect();
        Ok(BinaryConfusion::from_labels(&predicted, truth)?.metrics())
    }
}

/// Train a matcher on rows `train_idx` (with `train_labels`) of
/// `features`, selecting the best epoch by F1 on `valid_idx`.
///
/// An empty validation set keeps the final epoch's parameters.
pub fn train_matcher(
    features: &Embeddings,
    train_idx: &[usize],
    train_labels: &[Label],
    valid_idx: &[usize],
    valid_labels: &[Label],
    config: &MatcherConfig,
) -> Result<TrainedMatcher> {
    config.validate()?;
    if train_idx.is_empty() {
        return Err(EmError::EmptyInput("matcher training set".into()));
    }
    if train_idx.len() != train_labels.len() {
        return Err(EmError::DimensionMismatch {
            context: "matcher train labels".into(),
            expected: train_idx.len(),
            actual: train_labels.len(),
        });
    }
    if valid_idx.len() != valid_labels.len() {
        return Err(EmError::DimensionMismatch {
            context: "matcher valid labels".into(),
            expected: valid_idx.len(),
            actual: valid_labels.len(),
        });
    }
    // Row ids are packed below (and gathered per batch) without further
    // checks, so reject out-of-range ids with a structured error here —
    // the clone-based probe used to surface these through `predict`.
    for (name, idx) in [("train", train_idx), ("valid", valid_idx)] {
        if let Some(&bad) = idx.iter().find(|&&i| i >= features.len()) {
            return Err(EmError::IndexOutOfBounds {
                context: format!("matcher {name} rows"),
                index: bad,
                len: features.len(),
            });
        }
    }

    let mut rng = Rng::seed_from_u64(config.seed);
    let mut mlp = Mlp::new(features.dim(), &config.hidden, &mut rng)?;
    let mut opt = AdamW::new(mlp.n_params(), config.lr, config.weight_decay)?;
    let decay_mask = mlp.decay_mask().to_vec();

    let mut order: Vec<usize> = (0..train_idx.len()).collect();
    let mut grads: Vec<f32> = Vec::new();
    let mut ws = MlpWorkspace::new();
    let mut best_snapshot = mlp.snapshot();
    let mut best_f1 = f64::NEG_INFINITY;
    let mut best_epoch = 0usize;

    // The validation rows never change: pack them once and reuse the
    // buffer (and the training workspace) for every epoch's probe.
    let valid_xs: Vec<f32> = valid_idx
        .iter()
        .flat_map(|&i| features.row(i).iter().copied())
        .collect();

    for epoch in 0..config.epochs {
        rng.shuffle(&mut order);
        for chunk in order.chunks(config.batch_size) {
            let xs: Vec<&[f32]> = chunk.iter().map(|&o| features.row(train_idx[o])).collect();
            let ys: Vec<f32> = chunk.iter().map(|&o| train_labels[o].as_f32()).collect();
            let wts = vec![1.0f32; xs.len()];
            mlp.backward_batch(&xs, &ys, &wts, &mut ws, &mut grads)?;
            opt.step(mlp.params_mut(), &grads, &decay_mask)?;
        }
        // Best-epoch selection on validation F1 (paper §4.2) through a
        // borrowed batched forward pass — no network clone, no throwaway
        // matcher. Labels come from `sigmoid(logit) ≥ 0.5` — the exact
        // threshold `Prediction::from_prob` applies, including f32
        // rounding at the boundary — and temperature sharpening is
        // monotone with fixed point 0.5, so the resulting F1 is
        // identical to the full prediction path's.
        if !valid_idx.is_empty() {
            let (logits, _) = mlp.forward_batch(&valid_xs, valid_idx.len(), &mut ws)?;
            let predicted: Vec<Label> = logits
                .iter()
                .map(|&z| Label::from_bool(sigmoid(z) >= 0.5))
                .collect();
            let f1 = BinaryConfusion::from_labels(&predicted, valid_labels)?
                .metrics()
                .f1;
            if f1 > best_f1 {
                best_f1 = f1;
                best_snapshot = mlp.snapshot();
                best_epoch = epoch;
            }
        } else {
            best_snapshot = mlp.snapshot();
            best_epoch = epoch;
        }
    }
    mlp.restore(&best_snapshot)?;

    Ok(TrainedMatcher {
        mlp,
        temperature: config.temperature,
        best_valid_f1: if best_f1.is_finite() { best_f1 } else { 0.0 },
        best_epoch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureConfig, Featurizer};
    use em_synth::{generate, DatasetProfile};

    fn small_task() -> (Embeddings, Vec<usize>, Vec<Label>, Vec<usize>, Vec<Label>) {
        let p = DatasetProfile::amazon_google().scaled(0.03);
        let d = generate(&p, &mut Rng::seed_from_u64(7)).unwrap();
        let f = Featurizer::new(&d, FeatureConfig::default()).unwrap();
        let feats = f.featurize_all(&d).unwrap();
        let train = d.split().train.clone();
        let train_labels = d.ground_truth_of(&train);
        let test = d.split().test.clone();
        let test_labels = d.ground_truth_of(&test);
        (feats, train, train_labels, test, test_labels)
    }

    #[test]
    fn trains_to_useful_f1_on_synthetic_benchmark() {
        // Walmart-Amazon at 15 % scale (~1k train pairs): the MLP should
        // clear 0.5 (the full-size Full-D lands above 0.8).
        let p = DatasetProfile::walmart_amazon().scaled(0.15);
        let d = generate(&p, &mut Rng::seed_from_u64(7)).unwrap();
        let f = Featurizer::new(&d, FeatureConfig::default()).unwrap();
        let feats = f.featurize_all(&d).unwrap();
        let train = d.split().train.clone();
        let train_labels = d.ground_truth_of(&train);
        let test = d.split().test.clone();
        let test_labels = d.ground_truth_of(&test);
        let m = train_matcher(
            &feats,
            &train,
            &train_labels,
            &[],
            &[],
            &MatcherConfig::default(),
        )
        .unwrap();
        let f1 = m.evaluate(&feats, &test, &test_labels).unwrap().f1;
        assert!(f1 > 0.5, "full-train F1 {f1}");
    }

    #[test]
    fn more_data_beats_tiny_data() {
        let (feats, train, train_labels, test, test_labels) = small_task();
        let cfg = MatcherConfig::default();
        let small =
            train_matcher(&feats, &train[..12], &train_labels[..12], &[], &[], &cfg).unwrap();
        let large = train_matcher(&feats, &train, &train_labels, &[], &[], &cfg).unwrap();
        let f1_small = small.evaluate(&feats, &test, &test_labels).unwrap().f1;
        let f1_large = large.evaluate(&feats, &test, &test_labels).unwrap().f1;
        assert!(
            f1_large >= f1_small,
            "more data hurt: {f1_large} < {f1_small}"
        );
    }

    #[test]
    fn sharpened_confidences_are_dichotomous() {
        // The PLM-overconfidence emulation: most predictions should sit
        // near 0 or 1 after temperature sharpening.
        let (feats, train, train_labels, test, _) = small_task();
        let m = train_matcher(
            &feats,
            &train,
            &train_labels,
            &[],
            &[],
            &MatcherConfig::default(),
        )
        .unwrap();
        let out = m.predict(&feats, &test).unwrap();
        let extreme = out
            .predictions
            .iter()
            .filter(|p| p.prob < 0.05 || p.prob > 0.95)
            .count();
        let frac = extreme as f64 / out.predictions.len() as f64;
        assert!(frac > 0.7, "only {frac:.2} of confidences are extreme");
    }

    #[test]
    fn representations_have_configured_dim_and_separate_classes() {
        // Walmart-Amazon at 10% scale: enough data for the hidden layer
        // to develop class structure (the Figure 1 phenomenon).
        let p = DatasetProfile::walmart_amazon().scaled(0.1);
        let d = generate(&p, &mut Rng::seed_from_u64(7)).unwrap();
        let f = Featurizer::new(&d, FeatureConfig::default()).unwrap();
        let feats = f.featurize_all(&d).unwrap();
        let train = d.split().train.clone();
        let train_labels = d.ground_truth_of(&train);
        let test = d.split().test.clone();
        let test_labels = d.ground_truth_of(&test);
        let cfg = MatcherConfig {
            hidden: vec![32, 16],
            ..Default::default()
        };
        let m = train_matcher(&feats, &train, &train_labels, &[], &[], &cfg).unwrap();
        let out = m.predict(&feats, &test).unwrap();
        assert_eq!(out.representations.dim(), 16);
        assert_eq!(out.representations.len(), test.len());
        // Match-pair representations should be more similar to each other
        // than to non-match representations (Figure 1's phenomenon).
        let pos: Vec<usize> = (0..test.len())
            .filter(|&i| test_labels[i].is_match())
            .collect();
        let neg: Vec<usize> = (0..test.len())
            .filter(|&i| !test_labels[i].is_match())
            .collect();
        if pos.len() >= 2 && !neg.is_empty() {
            let mut intra = 0.0f64;
            let mut n_intra = 0;
            for i in 0..pos.len().min(20) {
                for j in i + 1..pos.len().min(20) {
                    intra += out.representations.cosine(pos[i], pos[j]) as f64;
                    n_intra += 1;
                }
            }
            let mut inter = 0.0f64;
            let mut n_inter = 0;
            for &i in pos.iter().take(20) {
                for &j in neg.iter().take(20) {
                    inter += out.representations.cosine(i, j) as f64;
                    n_inter += 1;
                }
            }
            assert!(
                intra / n_intra as f64 > inter / n_inter as f64,
                "no class structure in representations"
            );
        }
    }

    #[test]
    fn best_epoch_selection_uses_validation() {
        // A mid-sized Walmart-Amazon task where the matcher reliably gets
        // off the ground, so the best validation F1 is strictly positive.
        let p = DatasetProfile::walmart_amazon().scaled(0.1);
        let d = generate(&p, &mut Rng::seed_from_u64(7)).unwrap();
        let f = Featurizer::new(&d, FeatureConfig::default()).unwrap();
        let feats = f.featurize_all(&d).unwrap();
        let train = d.split().train.clone();
        let train_labels = d.ground_truth_of(&train);
        let test = d.split().test.clone();
        let test_labels = d.ground_truth_of(&test);
        let m = train_matcher(
            &feats,
            &train,
            &train_labels,
            &test,
            &test_labels,
            &MatcherConfig::default(),
        )
        .unwrap();
        assert!(m.best_valid_f1 > 0.0);
        assert!(m.best_epoch < MatcherConfig::default().epochs);
    }

    #[test]
    fn batched_predict_bit_identical_to_per_row_on_every_tier() {
        use em_vector::{with_simd_tier, SimdTier};
        let (feats, train, train_labels, test, _) = small_task();
        let m = train_matcher(
            &feats,
            &train,
            &train_labels,
            &[],
            &[],
            &MatcherConfig::default(),
        )
        .unwrap();
        for tier in [SimdTier::Portable, SimdTier::Avx2] {
            with_simd_tier(tier, || {
                rayon::serial_scope(|| {
                    let out = m.predict(&feats, &test).unwrap();
                    for (bi, &i) in test.iter().enumerate() {
                        let (pred, repr) = m.predict_one(feats.row(i)).unwrap();
                        assert_eq!(
                            out.predictions[bi].prob.to_bits(),
                            pred.prob.to_bits(),
                            "tier {} row {i}",
                            tier.name()
                        );
                        assert_eq!(out.predictions[bi].label, pred.label);
                        for (a, b) in out.representations.row(bi).iter().zip(&repr) {
                            assert_eq!(a.to_bits(), b.to_bits(), "tier {}", tier.name());
                        }
                    }
                })
            });
        }
    }

    #[test]
    fn parallel_predict_equals_serial_predict() {
        let (feats, train, train_labels, _, _) = small_task();
        let m = train_matcher(
            &feats,
            &train,
            &train_labels,
            &[],
            &[],
            &MatcherConfig::default(),
        )
        .unwrap();
        // All rows: enough to span several PREDICT_CHUNK chunks.
        let par = m.predict_all(&feats).unwrap();
        let ser = rayon::serial_scope(|| m.predict_all(&feats).unwrap());
        assert_eq!(par.predictions.len(), ser.predictions.len());
        for (a, b) in par.predictions.iter().zip(&ser.predictions) {
            assert_eq!(a.prob.to_bits(), b.prob.to_bits());
            assert_eq!(a.label, b.label);
        }
        assert_eq!(par.representations, ser.representations);
    }

    #[test]
    fn borrowed_probe_matches_reference_epoch_selection() {
        // The borrowed validation probe must select the same best epoch
        // and report the same best F1 as the seed's clone-based probe on
        // the identical training trajectory. The reference trains with
        // the seed's scalar arithmetic, so compare it against itself
        // through the new matcher's evaluate path instead: both probes
        // reduce to label-level F1, and labels only depend on the logit
        // sign, which both compute from the same snapshots.
        let p = DatasetProfile::walmart_amazon().scaled(0.1);
        let d = generate(&p, &mut Rng::seed_from_u64(7)).unwrap();
        let f = Featurizer::new(&d, FeatureConfig::default()).unwrap();
        let feats = f.featurize_all(&d).unwrap();
        let train = d.split().train.clone();
        let train_labels = d.ground_truth_of(&train);
        let valid = d.split().valid.clone();
        let valid_labels = d.ground_truth_of(&valid);
        let cfg = MatcherConfig {
            epochs: 8,
            ..Default::default()
        };
        let m = train_matcher(&feats, &train, &train_labels, &valid, &valid_labels, &cfg).unwrap();
        // The selected snapshot must actually achieve the reported F1
        // through the full prediction path.
        let f1 = m.evaluate(&feats, &valid, &valid_labels).unwrap().f1;
        assert_eq!(f1.to_bits(), m.best_valid_f1.to_bits());
    }

    #[test]
    fn snapshot_roundtrip_predicts_bit_identically() {
        let (feats, train, train_labels, test, _) = small_task();
        let m = train_matcher(
            &feats,
            &train,
            &train_labels,
            &[],
            &[],
            &MatcherConfig::default(),
        )
        .unwrap();
        let snap = m.to_snapshot();
        let restored = TrainedMatcher::from_snapshot(&snap).unwrap();
        assert_eq!(restored.best_epoch, m.best_epoch);
        assert_eq!(restored.best_valid_f1.to_bits(), m.best_valid_f1.to_bits());
        let a = m.predict(&feats, &test).unwrap();
        let b = restored.predict(&feats, &test).unwrap();
        for (x, y) in a.predictions.iter().zip(&b.predictions) {
            assert_eq!(x.prob.to_bits(), y.prob.to_bits());
            assert_eq!(x.label, y.label);
        }
        assert_eq!(a.representations, b.representations);
        // Malformed snapshots are rejected.
        let mut bad = snap.clone();
        bad.params.pop();
        assert!(TrainedMatcher::from_snapshot(&bad).is_err());
        let mut bad = snap;
        bad.temperature = 0.0;
        assert!(TrainedMatcher::from_snapshot(&bad).is_err());
    }

    #[test]
    fn binary_snapshot_roundtrip_is_bit_identical_to_json_path() {
        let (feats, train, train_labels, test, _) = small_task();
        let m = train_matcher(
            &feats,
            &train,
            &train_labels,
            &[],
            &[],
            &MatcherConfig::default(),
        )
        .unwrap();
        let snap = m.to_snapshot();
        let bytes = snap.to_bytes();
        let back = MatcherSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap, "binary round-trip must be lossless");
        // Both decode paths rebuild matchers with bit-identical output.
        let via_json: MatcherSnapshot =
            serde_json::from_str(&serde_json::to_string(&snap).unwrap()).unwrap();
        let a = TrainedMatcher::from_snapshot(&back)
            .unwrap()
            .predict(&feats, &test)
            .unwrap();
        let b = TrainedMatcher::from_snapshot(&via_json)
            .unwrap()
            .predict(&feats, &test)
            .unwrap();
        for (x, y) in a.predictions.iter().zip(&b.predictions) {
            assert_eq!(x.prob.to_bits(), y.prob.to_bits());
        }
        assert_eq!(a.representations, b.representations);
        // The binary frame is the compact one (params dominate; JSON
        // spends ~2–4 bytes per byte of float payload).
        let json_len = serde_json::to_string(&snap).unwrap().len();
        assert!(
            bytes.len() * 2 < json_len,
            "binary {} B not well under JSON {} B",
            bytes.len(),
            json_len
        );
        // Corruption never panics.
        for cut in [0, 4, 13, bytes.len() / 2, bytes.len() - 1] {
            assert!(MatcherSnapshot::from_bytes(&bytes[..cut]).is_err());
        }
        let mut bad = bytes.clone();
        bad[bytes.len() / 3] ^= 0x10;
        assert!(MatcherSnapshot::from_bytes(&bad).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (feats, train, train_labels, _, _) = small_task();
        let cfg = MatcherConfig::default();
        let a = train_matcher(&feats, &train, &train_labels, &[], &[], &cfg).unwrap();
        let b = train_matcher(&feats, &train, &train_labels, &[], &[], &cfg).unwrap();
        let pa = a.predict(&feats, &[0, 1, 2]).unwrap();
        let pb = b.predict(&feats, &[0, 1, 2]).unwrap();
        for (x, y) in pa.predictions.iter().zip(&pb.predictions) {
            assert_eq!(x.prob, y.prob);
        }
    }

    #[test]
    fn validates_inputs() {
        let (feats, train, train_labels, _, _) = small_task();
        let cfg = MatcherConfig::default();
        assert!(train_matcher(&feats, &[], &[], &[], &[], &cfg).is_err());
        assert!(train_matcher(&feats, &train, &train_labels[..3], &[], &[], &cfg).is_err());
        let bad = MatcherConfig {
            epochs: 0,
            ..Default::default()
        };
        assert!(train_matcher(&feats, &train, &train_labels, &[], &[], &bad).is_err());
        // Out-of-range train/valid rows are structured errors, not panics.
        assert!(train_matcher(&feats, &[999_999], &[Label::Match], &[], &[], &cfg).is_err());
        assert!(train_matcher(
            &feats,
            &train,
            &train_labels,
            &[999_999],
            &[Label::Match],
            &cfg
        )
        .is_err());
        let m = train_matcher(&feats, &train, &train_labels, &[], &[], &cfg).unwrap();
        assert!(m.predict(&feats, &[999_999]).is_err());
    }
}
