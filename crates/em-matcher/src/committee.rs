//! Matcher committees for query-by-committee uncertainty (the DIAL
//! baseline's selection principle).
//!
//! "Typically, QBC finds uncertain samples ... by training multiple
//! versions of a classifier and measuring uncertainty as their level of
//! disagreement. For example, Mozafari et al. define the variance of the
//! committee for the matching task as X(u)(1 − X(u)) where X(u) is the
//! fraction of classifiers predicted that a given pair is a match" (§7).

use em_core::{EmError, Label, Result};
use em_vector::Embeddings;

use crate::matcher::{train_matcher, MatcherConfig, TrainedMatcher};

/// Committee parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitteeConfig {
    /// Number of committee members (each trained with a different seed).
    pub n_members: usize,
    /// Template configuration; member `i` gets `seed + i`.
    pub matcher: MatcherConfig,
}

impl Default for CommitteeConfig {
    fn default() -> Self {
        CommitteeConfig {
            n_members: 5,
            matcher: MatcherConfig::default(),
        }
    }
}

/// A trained committee.
pub struct Committee {
    members: Vec<TrainedMatcher>,
}

impl Committee {
    /// Train `n_members` matchers on the same data with different seeds.
    pub fn train(
        features: &Embeddings,
        train_idx: &[usize],
        train_labels: &[Label],
        valid_idx: &[usize],
        valid_labels: &[Label],
        config: &CommitteeConfig,
    ) -> Result<Self> {
        if config.n_members == 0 {
            return Err(EmError::InvalidConfig(
                "committee needs at least one member".into(),
            ));
        }
        let mut members = Vec::with_capacity(config.n_members);
        for m in 0..config.n_members {
            let member_cfg = MatcherConfig {
                seed: config
                    .matcher
                    .seed
                    .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(m as u64 + 1)),
                ..config.matcher.clone()
            };
            members.push(train_matcher(
                features,
                train_idx,
                train_labels,
                valid_idx,
                valid_labels,
                &member_cfg,
            )?);
        }
        Ok(Committee { members })
    }

    /// Committee size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` iff the committee has no members (unreachable via `train`).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Fraction of members voting "match" per row of `indices`.
    pub fn vote_fractions(&self, features: &Embeddings, indices: &[usize]) -> Result<Vec<f64>> {
        let mut votes = vec![0usize; indices.len()];
        for member in &self.members {
            let out = member.predict(features, indices)?;
            for (v, p) in votes.iter_mut().zip(&out.predictions) {
                if p.label.is_match() {
                    *v += 1;
                }
            }
        }
        Ok(votes
            .into_iter()
            .map(|v| v as f64 / self.members.len() as f64)
            .collect())
    }

    /// Mozafari-style committee variance `X(u)(1 − X(u))` per pair —
    /// maximal (0.25) when the committee splits evenly.
    pub fn disagreement(&self, features: &Embeddings, indices: &[usize]) -> Result<Vec<f64>> {
        Ok(self
            .vote_fractions(features, indices)?
            .into_iter()
            .map(|x| x * (1.0 - x))
            .collect())
    }

    /// Majority-vote predictions (ties break toward match, mirroring the
    /// 0.5-threshold convention).
    pub fn majority_labels(&self, features: &Embeddings, indices: &[usize]) -> Result<Vec<Label>> {
        Ok(self
            .vote_fractions(features, indices)?
            .into_iter()
            .map(|x| Label::from_bool(x >= 0.5))
            .collect())
    }

    /// Access a member (for representation extraction — DIAL uses the
    /// first member's embeddings as its index representation).
    pub fn member(&self, i: usize) -> Result<&TrainedMatcher> {
        self.members
            .get(i)
            .ok_or_else(|| EmError::IndexOutOfBounds {
                context: "committee member".into(),
                index: i,
                len: self.members.len(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureConfig, Featurizer};
    use em_core::Rng;
    use em_synth::{generate, DatasetProfile};

    fn task() -> (Embeddings, Vec<usize>, Vec<Label>) {
        let p = DatasetProfile::amazon_google().scaled(0.02);
        let d = generate(&p, &mut Rng::seed_from_u64(11)).unwrap();
        let f = Featurizer::new(&d, FeatureConfig::default()).unwrap();
        let feats = f.featurize_all(&d).unwrap();
        let train = d.split().train.clone();
        let labels = d.ground_truth_of(&train);
        (feats, train, labels)
    }

    fn quick_config(n: usize) -> CommitteeConfig {
        CommitteeConfig {
            n_members: n,
            matcher: MatcherConfig {
                epochs: 3,
                ..Default::default()
            },
        }
    }

    #[test]
    fn votes_are_fractions() {
        let (feats, train, labels) = task();
        let c = Committee::train(&feats, &train, &labels, &[], &[], &quick_config(3)).unwrap();
        assert_eq!(c.len(), 3);
        let idx: Vec<usize> = (0..20).collect();
        let votes = c.vote_fractions(&feats, &idx).unwrap();
        for v in votes {
            assert!((0.0..=1.0).contains(&v));
            // With 3 members, fractions are multiples of 1/3.
            let scaled = v * 3.0;
            assert!((scaled - scaled.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn disagreement_bounded_and_consistent() {
        let (feats, train, labels) = task();
        let c = Committee::train(&feats, &train, &labels, &[], &[], &quick_config(4)).unwrap();
        let idx: Vec<usize> = (0..30).collect();
        let votes = c.vote_fractions(&feats, &idx).unwrap();
        let dis = c.disagreement(&feats, &idx).unwrap();
        for (v, d) in votes.iter().zip(&dis) {
            assert!((d - v * (1.0 - v)).abs() < 1e-12);
            assert!((0.0..=0.25).contains(d));
        }
    }

    #[test]
    fn unanimous_pairs_have_zero_disagreement() {
        let (feats, train, labels) = task();
        let c = Committee::train(&feats, &train, &labels, &[], &[], &quick_config(3)).unwrap();
        let idx: Vec<usize> = (0..feats.len()).collect();
        let dis = c.disagreement(&feats, &idx).unwrap();
        let zeros = dis.iter().filter(|&&d| d == 0.0).count();
        assert!(
            zeros > idx.len() / 2,
            "expected many unanimous pairs, got {zeros}/{}",
            idx.len()
        );
    }

    #[test]
    fn majority_agrees_with_votes() {
        let (feats, train, labels) = task();
        let c = Committee::train(&feats, &train, &labels, &[], &[], &quick_config(3)).unwrap();
        let idx: Vec<usize> = (0..25).collect();
        let votes = c.vote_fractions(&feats, &idx).unwrap();
        let majority = c.majority_labels(&feats, &idx).unwrap();
        for (v, l) in votes.iter().zip(&majority) {
            assert_eq!(l.is_match(), *v >= 0.5);
        }
    }

    #[test]
    fn member_access_checked() {
        let (feats, train, labels) = task();
        let c = Committee::train(&feats, &train, &labels, &[], &[], &quick_config(2)).unwrap();
        assert!(c.member(0).is_ok());
        assert!(c.member(5).is_err());
    }

    #[test]
    fn zero_members_rejected() {
        let (feats, train, labels) = task();
        assert!(Committee::train(&feats, &train, &labels, &[], &[], &quick_config(0)).is_err());
    }
}
