//! Table 3: statistics of the (synthetic) datasets — train-split size,
//! positive rate and attribute count. Always generated at full paper
//! size regardless of `--scale` (generation without training is cheap).

use em_core::Rng;
use em_synth::{all_profiles, generate};

fn main() {
    println!("Table 3: Statistics of the datasets (synthetic equivalents)\n");
    println!(
        "{:<18}{:>10}{:>9}{:>8}   (paper: size / %pos / #atts)",
        "Dataset", "Size", "%Pos", "#Atts"
    );
    let paper: &[(&str, usize, f64, usize)] = &[
        ("walmart-amazon", 6144, 9.4, 5),
        ("amazon-google", 6874, 10.2, 3),
        ("wdc-cameras", 4081, 21.0, 1),
        ("wdc-shoes", 4505, 20.9, 1),
        ("abt-buy", 5743, 10.7, 3),
        ("dblp-scholar", 17223, 18.6, 4),
    ];
    for (profile, &(pname, psize, ppos, patts)) in all_profiles().iter().zip(paper) {
        assert_eq!(profile.name, pname);
        let dataset = generate(profile, &mut Rng::seed_from_u64(0xDA7A)).expect("generate");
        let stats = dataset.stats();
        println!(
            "{:<18}{:>10}{:>8.1}%{:>8}   ({} / {:.1}% / {})",
            profile.name,
            stats.train_size,
            100.0 * stats.train_pos_rate,
            stats.n_attrs,
            psize,
            ppos,
            patts,
        );
    }
}
