//! Figure 5: F1 vs cumulative labeled samples, per dataset, for the four
//! active-learning methods plus the ZeroER and Full-D reference lines.

use em_bench::{fig5_cached, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let results = fig5_cached(&args).expect("fig5 sweep");

    for profile in em_synth::all_profiles() {
        let name = profile.name;
        println!("\nFigure 5 — {name} (F1 % vs labeled samples)");
        // Header: the label counts.
        if let Some(any) = results.report(name, "battleship") {
            let labels: Vec<String> = any
                .mean_curve
                .iter()
                .map(|(x, _)| format!("{x:.0}"))
                .collect();
            em_bench::print_row("labels", &labels);
        }
        for method in ["battleship", "dal", "dial", "random"] {
            if let Some(r) = results.report(name, method) {
                let cells: Vec<String> = r
                    .mean_curve
                    .iter()
                    .map(|(_, y)| format!("{y:.2}"))
                    .collect();
                em_bench::print_row(method, &cells);
            }
        }
        if let Some(z) = results.zeroer.get(name) {
            em_bench::print_row("zeroer (0 labels)", &[format!("{z:.2}")]);
        }
        if let Some(f) = results.full_d.get(name) {
            em_bench::print_row("full-d (all labels)", &[format!("{f:.2}")]);
        }
    }
    println!(
        "\n(results cached in {}; shape to compare with the paper: battleship \
         above the AL baselines, approaching full-d)",
        args.out_dir.display()
    );
}
