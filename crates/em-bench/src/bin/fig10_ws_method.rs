//! Figure 10: weak-supervision method comparison. The battleship
//! selection mechanism is held fixed (α = β = 0.5); only the weak-label
//! scoring changes — spatial certainty (Eq. 4) vs DAL-style conditional
//! entropy (Eq. 1). The paper finds the spatial variant slightly but
//! consistently ahead in AUC.

use battleship::WeakMethod;
use em_bench::{prepare, run_battleship_variant, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let config = args.scale.experiment_config();

    for profile in [
        em_synth::DatasetProfile::walmart_amazon(),
        em_synth::DatasetProfile::amazon_google(),
    ] {
        eprintln!("[fig10] {} …", profile.name);
        let prepared = prepare(&profile, args.scale, 0xDA7A).expect("prepare");
        println!(
            "\nFigure 10 — {} (F1 % per iteration, α = β = 0.5)",
            profile.name
        );

        let spatial = run_battleship_variant(
            &prepared,
            &config,
            0.5,
            0.5,
            true,
            WeakMethod::Spatial,
            &args.seeds,
        )
        .expect("spatial runs");
        let entropy = run_battleship_variant(
            &prepared,
            &config,
            0.5,
            0.5,
            true,
            WeakMethod::Entropy,
            &args.seeds,
        )
        .expect("entropy runs");

        let labels: Vec<String> = spatial
            .mean_curve
            .iter()
            .map(|(x, _)| format!("{x:.0}"))
            .collect();
        em_bench::print_row("labels", &labels);
        for (name, report) in [
            ("battleship (Eq.4)", &spatial),
            ("with WS_DAL (Eq.1)", &entropy),
        ] {
            let cells: Vec<String> = report
                .mean_curve
                .iter()
                .map(|(_, y)| format!("{y:.2}"))
                .collect();
            em_bench::print_row(name, &cells);
        }
        println!(
            "AUC: spatial {:.2} vs entropy {:.2}",
            spatial.mean_auc, entropy.mean_auc
        );
        let _ = args.write_json(
            &format!("fig10_{}.json", profile.name),
            &vec![("spatial", &spatial), ("entropy", &entropy)],
        );
    }
}
