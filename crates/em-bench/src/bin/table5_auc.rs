//! Table 5: area under the F1-vs-labels curve for every method and
//! dataset. The paper's dominant method on every dataset is battleship.

use em_bench::{fig5_cached, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let results = fig5_cached(&args).expect("fig5 sweep");

    println!("Table 5 — AUC of the F1 learning curves\n");
    let datasets: Vec<&str> = em_synth::all_profiles().iter().map(|p| p.name).collect();
    em_bench::print_row(
        "method",
        &datasets.iter().map(|d| d.to_string()).collect::<Vec<_>>(),
    );
    for method in ["random", "dal", "dial", "battleship"] {
        let cells: Vec<String> = datasets
            .iter()
            .map(|d| {
                results
                    .report(d, method)
                    .map(|r| format!("{:.2}", r.mean_auc))
                    .unwrap_or_else(|| "-".into())
            })
            .collect();
        em_bench::print_row(method, &cells);
    }
}
