//! Figure 7: local vs spatial certainty — β ∈ {0, 0.5, 1} on
//! Walmart-Amazon and Amazon-Google (α fixed at 0.5).
//!
//! β = 0 uses only the spatial (neighbourhood-agreement) entropy, β = 1
//! only the model's own entropy; the paper finds the β = 0.5 fusion ahead
//! once labels exceed ~500 and more stable throughout.

use battleship::WeakMethod;
use em_bench::{prepare, run_battleship_variant, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let config = args.scale.experiment_config();

    for profile in [
        em_synth::DatasetProfile::walmart_amazon(),
        em_synth::DatasetProfile::amazon_google(),
    ] {
        eprintln!("[fig7] {} …", profile.name);
        let prepared = prepare(&profile, args.scale, 0xDA7A).expect("prepare");
        println!(
            "\nFigure 7 — {} (F1 % per iteration, α = 0.5)",
            profile.name
        );
        let mut header_done = false;
        let mut results = Vec::new();
        for beta in [0.0, 0.5, 1.0] {
            let report = run_battleship_variant(
                &prepared,
                &config,
                0.5,
                beta,
                config.al.weak_supervision,
                WeakMethod::Spatial,
                &args.seeds,
            )
            .expect("run");
            if !header_done {
                let labels: Vec<String> = report
                    .mean_curve
                    .iter()
                    .map(|(x, _)| format!("{x:.0}"))
                    .collect();
                em_bench::print_row("labels", &labels);
                header_done = true;
            }
            let cells: Vec<String> = report
                .mean_curve
                .iter()
                .map(|(_, y)| format!("{y:.2}"))
                .collect();
            em_bench::print_row(&format!("beta={beta}"), &cells);
            results.push((beta, report));
        }
        let _ = args.write_json(
            &format!("fig7_{}.json", profile.name),
            &results.iter().map(|(b, r)| (b, r)).collect::<Vec<_>>(),
        );
    }
}
