//! Table 4: F1 at a mid-sweep label count and at the final label count
//! for every method and dataset (the paper reports 500 and 900 labels;
//! scaled runs report their own label counts, printed in the header).

use em_bench::{fig5_cached, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let results = fig5_cached(&args).expect("fig5 sweep");

    // Mid and final label counts from any curve.
    let any = &results.reports[0];
    let n = any.mean_curve.len();
    let mid_labels = any.mean_curve[n / 2].0;
    let final_labels = any.mean_curve[n - 1].0;

    println!(
        "Table 4 — F1 (%) at {mid_labels:.0} and {final_labels:.0} labels \
         (paper reports 500/900 at full scale)\n"
    );
    let datasets: Vec<&str> = em_synth::all_profiles().iter().map(|p| p.name).collect();
    em_bench::print_row(
        "method",
        &datasets.iter().map(|d| d.to_string()).collect::<Vec<_>>(),
    );
    println!();

    em_bench::print_row(
        "zeroer (0)",
        &datasets
            .iter()
            .map(|d| {
                results
                    .zeroer
                    .get(*d)
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_else(|| "-".into())
            })
            .collect::<Vec<_>>(),
    );
    em_bench::print_row(
        "full-d (all)",
        &datasets
            .iter()
            .map(|d| {
                results
                    .full_d
                    .get(*d)
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_else(|| "-".into())
            })
            .collect::<Vec<_>>(),
    );
    println!();
    for method in ["random", "dal", "dial", "battleship"] {
        for (tag, labels) in [("mid", mid_labels), ("end", final_labels)] {
            let cells: Vec<String> = datasets
                .iter()
                .map(|d| {
                    results
                        .report(d, method)
                        .and_then(|r| r.f1_at(labels))
                        .map(|v| format!("{v:.2}"))
                        .unwrap_or_else(|| "-".into())
                })
                .collect();
            em_bench::print_row(&format!("{method} ({tag})"), &cells);
        }
    }
}
