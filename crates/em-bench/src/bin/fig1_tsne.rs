//! Figure 1: t-SNE visualization of pair representations from a fully
//! trained matcher, for Amazon-Google and Walmart-Amazon.
//!
//! The paper's reading of the figure is qualitative — "positive pairs
//! tend to gather together" — so besides dumping the 2-D coordinates
//! (CSV in the out dir, plottable with anything) this binary reports the
//! quantitative version: k-NN label purity of the match class in the
//! embedding versus the dataset's base positive rate.

use std::io::Write as _;

use em_bench::{prepare, BenchArgs};
use em_core::Label;
use em_matcher::train_matcher;
use em_vector::tsne::knn_label_purity;
use em_vector::{Tsne, TsneConfig};

fn main() {
    let args = BenchArgs::parse();
    let config = args.scale.experiment_config();

    for profile in [
        em_synth::DatasetProfile::amazon_google(),
        em_synth::DatasetProfile::walmart_amazon(),
    ] {
        eprintln!("[fig1] {} …", profile.name);
        let prepared = prepare(&profile, args.scale, 0xDA7A).expect("prepare");
        let d = &prepared.dataset;

        // Fully trained model (Figure 1 trains on the complete train set).
        let train = d.split().train.clone();
        let train_labels = d.ground_truth_of(&train);
        let valid = d.split().valid.clone();
        let valid_labels = d.ground_truth_of(&valid);
        let matcher = train_matcher(
            &prepared.features,
            &train,
            &train_labels,
            &valid,
            &valid_labels,
            &config.matcher,
        )
        .expect("train");

        // Representations for a bounded sample (exact t-SNE is O(n²)).
        let cap = 1200.min(train.len());
        let sample: Vec<usize> = train.iter().copied().take(cap).collect();
        let out = matcher
            .predict(&prepared.features, &sample)
            .expect("predict");
        let labels: Vec<bool> = sample
            .iter()
            .map(|&i| d.ground_truth(i) == Label::Match)
            .collect();

        let embedding = Tsne::new(TsneConfig {
            perplexity: 30.0,
            iterations: 350,
            ..Default::default()
        })
        .fit(&out.representations)
        .expect("tsne");

        let (pos_purity, neg_purity) = knn_label_purity(&embedding, &labels, 10).expect("purity");
        let base_rate = labels.iter().filter(|&&l| l).count() as f64 / labels.len() as f64;
        println!(
            "Figure 1 — {}: 10-NN match purity {:.3} (base rate {:.3}), non-match purity {:.3}",
            profile.name, pos_purity, base_rate, neg_purity
        );
        println!(
            "  → matches {} together (purity / base rate = {:.1}×)",
            if pos_purity > 2.0 * base_rate {
                "strongly concentrate"
            } else if pos_purity > base_rate {
                "concentrate"
            } else {
                "do NOT concentrate"
            },
            pos_purity / base_rate.max(1e-9)
        );

        // CSV dump: x, y, is_match.
        std::fs::create_dir_all(&args.out_dir).expect("out dir");
        let path = args.out_dir.join(format!("fig1_{}.csv", profile.name));
        let mut f = std::fs::File::create(&path).expect("csv");
        writeln!(f, "x,y,is_match").unwrap();
        for (i, &label) in labels.iter().enumerate() {
            let r = embedding.row(i);
            writeln!(f, "{},{},{}", r[0], r[1], label as u8).unwrap();
        }
        println!("  coordinates written to {}", path.display());
    }
}
