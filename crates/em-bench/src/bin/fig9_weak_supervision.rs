//! Figure 9: weak supervision on/off for both the battleship approach and
//! DAL on Walmart-Amazon and Amazon-Google. The paper finds weak
//! supervision gives both methods a large, stabilizing boost.

use battleship::{DalStrategy, ExperimentConfig, MultiSeedReport, WeakMethod};
use em_bench::{prepare, run_battleship_variant, run_one, BenchArgs};

fn dal_with(
    prepared: &em_bench::PreparedDataset,
    config: &ExperimentConfig,
    weak: bool,
    seeds: &[u64],
) -> MultiSeedReport {
    let mut cfg = config.clone();
    cfg.al.weak_supervision = weak;
    let runs: Vec<_> = seeds
        .iter()
        .map(|&s| run_one(prepared, &mut DalStrategy::new(), &cfg, s).expect("dal run"))
        .collect();
    MultiSeedReport::aggregate(&runs).expect("aggregate")
}

fn main() {
    let args = BenchArgs::parse();
    let config = args.scale.experiment_config();

    for profile in [
        em_synth::DatasetProfile::walmart_amazon(),
        em_synth::DatasetProfile::amazon_google(),
    ] {
        eprintln!("[fig9] {} …", profile.name);
        let prepared = prepare(&profile, args.scale, 0xDA7A).expect("prepare");
        println!("\nFigure 9 — {} (F1 % per iteration)", profile.name);

        let bs = |ws: bool| {
            run_battleship_variant(
                &prepared,
                &config,
                0.5,
                0.5,
                ws,
                WeakMethod::Spatial,
                &args.seeds,
            )
            .expect("battleship runs")
        };
        let rows = [
            ("battleship", bs(true)),
            ("battleship -WS", bs(false)),
            ("dal", dal_with(&prepared, &config, true, &args.seeds)),
            ("dal -WS", dal_with(&prepared, &config, false, &args.seeds)),
        ];
        let labels: Vec<String> = rows[0]
            .1
            .mean_curve
            .iter()
            .map(|(x, _)| format!("{x:.0}"))
            .collect();
        em_bench::print_row("labels", &labels);
        for (name, report) in &rows {
            let cells: Vec<String> = report
                .mean_curve
                .iter()
                .map(|(_, y)| format!("{y:.2}"))
                .collect();
            em_bench::print_row(name, &cells);
        }
        let _ = args.write_json(
            &format!("fig9_{}.json", profile.name),
            &rows.iter().map(|(n, r)| (n, r)).collect::<Vec<_>>(),
        );
    }
}
