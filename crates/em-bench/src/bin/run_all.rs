//! One-shot driver: regenerate every table and figure in sequence.
//!
//! ```sh
//! cargo run --release -p em-bench --bin run_all -- --scale smoke
//! ```
//!
//! Each experiment is also available as its own binary (fig1_tsne,
//! fig5_f1_curves, …) for selective reruns; fig5's sweep results are
//! cached in the out dir and reused by fig6/table4/table5.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "table3_stats",
        "fig1_tsne",
        "fig5_f1_curves",
        "fig6_runtime",
        "table4_f1",
        "table5_auc",
        "fig7_beta",
        "fig8_correspondence",
        "fig9_weak_supervision",
        "fig10_ws_method",
        "table6_alpha",
    ];
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(std::path::Path::to_path_buf));
    for bin in bins {
        println!("\n================ {bin} ================\n");
        // Prefer the sibling binary next to run_all (same build profile).
        let status = match &exe_dir {
            Some(dir) if dir.join(bin).exists() => Command::new(dir.join(bin)).args(&args).status(),
            _ => Command::new("cargo")
                .args(["run", "--release", "-p", "em-bench", "--bin", bin, "--"])
                .args(&args)
                .status(),
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("[run_all] {bin} exited with {s}"),
            Err(e) => eprintln!("[run_all] failed to launch {bin}: {e}"),
        }
    }
}
