//! Table 6: the α ablation — final F1 per dataset for
//! α ∈ {0, 0.25, 0.5, 0.75, 1} (β fixed at 0.5). α = 0 is pure
//! centrality ("Battleship (cen)"), α = 1 pure certainty
//! ("Battleship (unc)"); the paper finds interior values win everywhere.

use battleship::WeakMethod;
use em_bench::{prepare, run_battleship_variant, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let config = args.scale.experiment_config();
    const ALPHAS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

    println!("Table 6 — final F1 (%) for varying α (β = 0.5)\n");
    em_bench::print_row(
        "dataset",
        &ALPHAS.iter().map(|a| format!("α={a}")).collect::<Vec<_>>(),
    );
    let mut dump = Vec::new();
    for profile in em_synth::all_profiles() {
        eprintln!("[table6] {} …", profile.name);
        let prepared = prepare(&profile, args.scale, 0xDA7A).expect("prepare");
        let mut cells = Vec::new();
        for alpha in ALPHAS {
            let report = run_battleship_variant(
                &prepared,
                &config,
                alpha,
                0.5,
                config.al.weak_supervision,
                WeakMethod::Spatial,
                &args.seeds,
            )
            .expect("run");
            cells.push(format!("{:.2}", report.final_f1().unwrap_or(0.0)));
            dump.push((profile.name.to_string(), alpha, report));
        }
        em_bench::print_row(profile.name, &cells);
    }
    let _ = args.write_json("table6_results.json", &dump);
}
