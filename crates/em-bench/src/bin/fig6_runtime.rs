//! Figure 6: battleship selection runtime per active-learning iteration.
//!
//! The paper shows runtimes *decreasing* across iterations because the
//! pool — and therefore the K-Means input — shrinks as labels move to
//! the train set; K-Means dominates the cost (§5.2). The same shape
//! should appear here.

use em_bench::{fig5_cached, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let results = fig5_cached(&args).expect("fig5 sweep");

    println!("Figure 6 — battleship selection seconds per iteration\n");
    for profile in em_synth::all_profiles() {
        // The paper excludes DBLP-Scholar from the figure for axis-scale
        // reasons; we print it anyway, labeled.
        if let Some(r) = results.report(profile.name, "battleship") {
            let cells: Vec<String> = r
                .mean_select_secs
                .iter()
                .skip(1) // iteration 0 has no selection phase
                .map(|s| format!("{s:.2}s"))
                .collect();
            em_bench::print_row(profile.name, &cells);
        }
    }
    println!("\n(expected shape: mostly decreasing left→right as the pool shrinks)");
}
