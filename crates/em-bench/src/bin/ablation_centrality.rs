//! Ablation: PageRank (the paper's Eq. 5 choice) vs Brandes betweenness
//! (the classic alternative the paper names in §2.2) as the centrality
//! half of the Eq. 6 rank blend.

use battleship::{BattleshipStrategy, CentralityMeasure, MultiSeedReport};
use em_bench::{prepare, run_one, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let config = args.scale.experiment_config();

    println!("Ablation — centrality measure (final F1 % / AUC)\n");
    em_bench::print_row("dataset", &["pagerank".into(), "betweenness".into()]);
    for profile in [
        em_synth::DatasetProfile::walmart_amazon(),
        em_synth::DatasetProfile::amazon_google(),
    ] {
        eprintln!("[ablation_centrality] {} …", profile.name);
        let prepared = prepare(&profile, args.scale, 0xDA7A).expect("prepare");
        let mut cells = Vec::new();
        for measure in [CentralityMeasure::PageRank, CentralityMeasure::Betweenness] {
            let mut cfg = config.clone();
            cfg.battleship.centrality = measure;
            let runs: Vec<_> = args
                .seeds
                .iter()
                .map(|&s| run_one(&prepared, &mut BattleshipStrategy::new(), &cfg, s).expect("run"))
                .collect();
            let agg = MultiSeedReport::aggregate(&runs).expect("aggregate");
            cells.push(format!(
                "{:.1}/{:.0}",
                agg.final_f1().unwrap_or(0.0),
                agg.mean_auc
            ));
        }
        em_bench::print_row(profile.name, &cells);
    }
}
