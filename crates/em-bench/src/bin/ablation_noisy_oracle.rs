//! Ablation: robustness to annotator error. The paper assumes a perfect
//! oracle (§3.6) while acknowledging real labelers are biased; this
//! binary quantifies what a noisy oracle costs the battleship approach
//! at several flip probabilities.

use battleship::{run_active_learning, BattleshipStrategy, MultiSeedReport};
use em_bench::{prepare, BenchArgs};
use em_core::NoisyOracle;

fn main() {
    let args = BenchArgs::parse();
    let config = args.scale.experiment_config();
    const FLIP_PROBS: [f64; 4] = [0.0, 0.05, 0.1, 0.2];

    println!("Ablation — oracle noise (battleship final F1 %)\n");
    em_bench::print_row(
        "dataset",
        &FLIP_PROBS
            .iter()
            .map(|p| format!("flip={p}"))
            .collect::<Vec<_>>(),
    );
    for profile in [
        em_synth::DatasetProfile::walmart_amazon(),
        em_synth::DatasetProfile::dblp_scholar(),
    ] {
        eprintln!("[ablation_noisy_oracle] {} …", profile.name);
        let prepared = prepare(&profile, args.scale, 0xDA7A).expect("prepare");
        let mut cells = Vec::new();
        for flip in FLIP_PROBS {
            let runs: Vec<_> = args
                .seeds
                .iter()
                .map(|&s| {
                    let oracle = NoisyOracle::new(flip, s ^ 0x0DD).expect("oracle");
                    let mut strategy = BattleshipStrategy::new();
                    run_active_learning(
                        &prepared.dataset,
                        &prepared.features,
                        &mut strategy,
                        &oracle,
                        &config,
                        s,
                    )
                    .expect("run")
                })
                .collect();
            let agg = MultiSeedReport::aggregate(&runs).expect("aggregate");
            cells.push(format!("{:.2}", agg.final_f1().unwrap_or(0.0)));
        }
        em_bench::print_row(profile.name, &cells);
    }
    println!("\n(F1 is measured against clean ground truth; only training labels are noisy)");
}
