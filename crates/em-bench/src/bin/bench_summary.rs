//! `bench-summary` — merge every per-bench `BENCH_*.json` artifact into
//! a single `BENCH_summary.json` for CI upload and the README table.
//!
//! Each gated benchmark binary writes its own artifact (engine, kernel,
//! matcher, serve, …). CI uploads them individually, but a reviewer
//! comparing runs wants one file: this tool globs `BENCH_*.json` in a
//! directory (default: the current directory), parses each, and emits a
//! deterministic summary keyed by artifact stem, with the shared
//! hardware provenance hoisted to the top level when every artifact
//! agrees on it.
//!
//! Usage: `cargo run --release -p em-bench --bin bench-summary [dir]`
//!
//! The tool is deliberately forgiving: a missing directory yields an
//! empty summary, and an unparseable artifact is recorded under its key
//! as `{"error": …}` instead of sinking the merge — CI runs it with
//! `if: always()`, so it must degrade, not fail, when a gated bench
//! exited early.

use std::io::Write as _;

use serde::Value;

/// Remove and return an object's entry by key, preserving order.
fn remove_key(v: &mut Value, key: &str) -> Option<Value> {
    if let Value::Object(entries) = v {
        let pos = entries.iter().position(|(k, _)| k == key)?;
        return Some(entries.remove(pos).1);
    }
    None
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let dir = dir.trim_end_matches('/').to_string();
    let out_path = format!("{dir}/BENCH_summary.json");

    // Deterministic order: sorted filenames, so the summary bytes only
    // change when an artifact does.
    let mut names: Vec<String> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| {
                n.starts_with("BENCH_") && n.ends_with(".json") && n != "BENCH_summary.json"
            })
            .collect(),
        Err(e) => {
            eprintln!("[bench-summary] warning: cannot read {dir}: {e}");
            Vec::new()
        }
    };
    names.sort();

    let mut benches: Vec<(String, Value)> = Vec::new();
    let mut provenances: Vec<Value> = Vec::new();
    for name in &names {
        let key = name
            .trim_start_matches("BENCH_")
            .trim_end_matches(".json")
            .to_string();
        let path = format!("{dir}/{name}");
        let value = match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str::<Value>(&s).map_err(|e| e.to_string()))
        {
            Ok(mut v) => {
                if let Some(p) = remove_key(&mut v, "provenance") {
                    provenances.push(p);
                }
                v
            }
            Err(e) => {
                eprintln!("[bench-summary] warning: {name}: {e}");
                Value::Object(vec![("error".to_string(), Value::String(e))])
            }
        };
        benches.push((key, value));
    }

    // Hoist the provenance only when every artifact was produced on the
    // same hardware/thread configuration; a mixed bag stays per-bench
    // (re-attached so nothing is lost).
    let unified = !provenances.is_empty() && provenances.iter().all(|p| *p == provenances[0]);
    if !unified {
        let mut iter = provenances.drain(..);
        for (_, v) in &mut benches {
            let had_one = v
                .as_object()
                .is_some_and(|o| !o.iter().any(|(k, _)| k == "error"));
            if had_one {
                if let (Value::Object(entries), Some(p)) = (&mut *v, iter.next()) {
                    entries.push(("provenance".to_string(), p));
                }
            }
        }
    } else {
        provenances.truncate(1);
    }

    let mut summary: Vec<(String, Value)> = vec![
        (
            "summary".to_string(),
            Value::String("merged bench artifacts".to_string()),
        ),
        ("artifacts".to_string(), Value::U64(names.len() as u64)),
    ];
    if let Some(p) = provenances.pop() {
        summary.push(("provenance".to_string(), p));
    }
    summary.push(("benches".to_string(), Value::Object(benches)));

    let rendered = match serde_json::to_string_pretty(&Value::Object(summary)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[bench-summary] error: serialize: {e}");
            std::process::exit(1);
        }
    };
    match std::fs::File::create(&out_path).and_then(|mut f| {
        f.write_all(rendered.as_bytes())
            .and_then(|()| f.write_all(b"\n"))
    }) {
        Ok(()) => eprintln!(
            "[bench-summary] wrote {out_path} ({} artifact(s))",
            names.len()
        ),
        Err(e) => {
            eprintln!("[bench-summary] error: could not write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
