//! Figure 8: the correspondence effect. With α = 1 and β = 1 the
//! battleship selection degenerates to DAL's entropy criterion — *except*
//! that selection stays confined to connected components with Eq. 2
//! budgets. Any gap between the two curves is therefore attributable to
//! the correspondence machinery (vector-space partitioning + budget
//! distribution) alone.

use battleship::{DalStrategy, MultiSeedReport, WeakMethod};
use em_bench::{prepare, run_battleship_variant, run_one, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let config = args.scale.experiment_config();

    for profile in [
        em_synth::DatasetProfile::walmart_amazon(),
        em_synth::DatasetProfile::amazon_google(),
    ] {
        eprintln!("[fig8] {} …", profile.name);
        let prepared = prepare(&profile, args.scale, 0xDA7A).expect("prepare");
        println!(
            "\nFigure 8 — {} (F1 % per iteration; α = 1, β = 1)",
            profile.name
        );

        let battleship = run_battleship_variant(
            &prepared,
            &config,
            1.0,
            1.0,
            config.al.weak_supervision,
            WeakMethod::Spatial,
            &args.seeds,
        )
        .expect("battleship runs");
        let dal_runs: Vec<_> = args
            .seeds
            .iter()
            .map(|&s| run_one(&prepared, &mut DalStrategy::new(), &config, s).expect("dal run"))
            .collect();
        let dal = MultiSeedReport::aggregate(&dal_runs).expect("aggregate");

        let labels: Vec<String> = battleship
            .mean_curve
            .iter()
            .map(|(x, _)| format!("{x:.0}"))
            .collect();
        em_bench::print_row("labels", &labels);
        for (name, report) in [("battleship(1,1)", &battleship), ("dal", &dal)] {
            let cells: Vec<String> = report
                .mean_curve
                .iter()
                .map(|(_, y)| format!("{y:.2}"))
                .collect();
            em_bench::print_row(name, &cells);
        }
        println!(
            "AUC: battleship(1,1) {:.2} vs dal {:.2}",
            battleship.mean_auc, dal.mean_auc
        );
        let _ = args.write_json(
            &format!("fig8_{}.json", profile.name),
            &vec![("battleship11", &battleship), ("dal", &dal)],
        );
    }
}
