//! Cost-model calibration probe: measures the per-cell wall-clock of
//! every grid cell kind, per scenario scale — the measurement behind
//! the committed probe table in
//! `battleship::engine::schedule::CostModel`.
//!
//! Each cell kind runs as its own single-kind grid (so the engine's
//! per-cell timing, `GridCell::mean_run_secs`, isolates it), pinned to
//! one core under `rayon::serial_scope` so the numbers are per-core
//! costs — exactly what an LPT bin accumulates. Costs are reported
//! normalized to the `random` strategy at the same scale, which is the
//! unit the probe table stores.
//!
//! Knobs (environment):
//! * `EM_PROBE_SCALES` — comma-separated dataset scale factors
//!   (default `0.05,0.1`);
//! * `EM_PROBE_SEEDS`  — seeds per cell (default 3).
//!
//! Run with: `cargo run --release -p em-bench --bin probe_costs`

use battleship::{ArtifactCache, ExperimentGrid, GridConfig, Scenario, StrategySpec};
use em_bench::env_or;
use em_synth::DatasetProfile;

fn probe_grid(
    scale: f64,
    n_seeds: usize,
    strategies: Vec<StrategySpec>,
    baselines: bool,
) -> ExperimentGrid {
    let mut config = GridConfig {
        master_seed: 0xC057,
        n_seeds,
        include_baselines: baselines,
        ..GridConfig::default()
    };
    // The engine bench's cell shape (budget/iterations/epochs), so the
    // probe measures the same per-cell work the bench schedules.
    config.experiment.al.budget = 40;
    config.experiment.al.seed_size = 40;
    config.experiment.al.weak_budget = 40;
    config.experiment.al.iterations = 2;
    config.experiment.matcher.epochs = 10;
    config.experiment.battleship.kselect_sample = 256;
    ExperimentGrid::new(
        vec![Scenario::synthetic_scaled(
            DatasetProfile::amazon_google(),
            scale,
            0xDA7A,
        )],
        strategies,
        config,
    )
}

fn main() {
    let scales: Vec<f64> = env_or("EM_PROBE_SCALES", "0.05,0.1".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let n_seeds: usize = env_or("EM_PROBE_SEEDS", 3);

    println!("cell-kind cost probe (one core, {n_seeds} seed(s) per cell)");
    println!(
        "{:<10} {:>8} {:<12} {:>14} {:>12}",
        "scale", "pairs", "cell", "mean_run_secs", "vs random"
    );
    for &scale in &scales {
        let cache = ArtifactCache::new();
        let mut rows: Vec<(String, usize, f64)> = Vec::new();
        let mut pairs = 0usize;
        for spec in StrategySpec::all() {
            let grid = probe_grid(scale, n_seeds, vec![spec], false);
            pairs = cache
                .get_or_materialize(&grid.scenarios[0])
                .map(|a| a.dataset.len())
                .unwrap_or(0);
            let report = rayon::serial_scope(|| grid.run_with_cache(&cache)).expect("probe grid");
            let cell = &report.cells[0];
            rows.push((spec.name().to_string(), pairs, cell.mean_run_secs));
        }
        {
            let grid = probe_grid(scale, n_seeds, vec![], true);
            let report =
                rayon::serial_scope(|| grid.run_with_cache(&cache)).expect("probe baselines");
            for cell in &report.cells {
                rows.push((cell.strategy().to_string(), pairs, cell.mean_run_secs));
            }
        }
        let random_secs = rows
            .iter()
            .find(|(name, _, _)| name == "random")
            .map(|&(_, _, s)| s)
            .unwrap_or(1.0)
            .max(1e-9);
        for (name, pairs, secs) in &rows {
            println!(
                "{:<10} {:>8} {:<12} {:>14.4} {:>12.2}",
                scale,
                pairs,
                name,
                secs,
                secs / random_secs
            );
        }
    }
}
