#![forbid(unsafe_code)]
//! # em-bench
//!
//! The benchmark harness: one binary per table and figure of the paper's
//! evaluation (see DESIGN.md's per-experiment index), plus criterion
//! micro-benchmarks of the performance-critical substrate pieces.
//!
//! Every binary accepts:
//!
//! ```text
//! --scale smoke|quick|paper   experiment size (default: quick)
//! --seeds N                   seeds to average over (default: per scale)
//! --out DIR                   where JSON results are written
//! ```
//!
//! `smoke` finishes in tens of seconds, `quick` in minutes, `paper` runs
//! the full Table 3 sizes with 3 seeds (the paper's protocol) and is CPU
//! hours. Scales change dataset size and budgets proportionally — the
//! *shape* of every comparison (who wins, where the curves sit relative
//! to each other) is preserved, which is what the reproduction tracks.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use battleship::{
    run_active_learning, ArtifactCache, BattleshipStrategy, DalStrategy, DialStrategy,
    ExperimentConfig, ExperimentGrid, GridConfig, MultiSeedReport, RandomStrategy, RunReport,
    Scenario, SelectionStrategy, StrategySpec, WeakMethod,
};
use em_core::{Dataset, PerfectOracle, Result, Rng};
use em_matcher::{FeatureConfig, Featurizer};
use em_synth::{generate, DatasetProfile};
use em_vector::Embeddings;

/// Parse an environment variable, falling back to `default` when unset
/// or unparsable — the shared knob reader of the gated bench binaries.
pub fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Experiment size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// ~6 % of the paper's dataset sizes, 1 seed, 4 iterations.
    Smoke,
    /// ~25 % sizes, 2 seeds, 8 iterations (default).
    Quick,
    /// Full Table 3 sizes, 3 seeds, 8 iterations (the paper's protocol).
    Paper,
}

impl Scale {
    /// Dataset scale factor.
    pub fn factor(self) -> f64 {
        match self {
            Scale::Smoke => 0.06,
            Scale::Quick => 0.25,
            Scale::Paper => 1.0,
        }
    }

    /// Default number of seeds.
    pub fn default_seeds(self) -> usize {
        match self {
            Scale::Smoke => 1,
            Scale::Quick => 2,
            Scale::Paper => 3,
        }
    }

    /// The experiment protocol at this scale.
    pub fn experiment_config(self) -> ExperimentConfig {
        let mut c = ExperimentConfig::default();
        match self {
            Scale::Smoke => {
                c.al.budget = 40;
                c.al.seed_size = 40;
                c.al.weak_budget = 40;
                c.al.iterations = 4;
                c.matcher.epochs = 12;
                c.battleship.kselect_sample = 256;
            }
            Scale::Quick => {
                c.al.budget = 50;
                c.al.seed_size = 50;
                c.al.weak_budget = 50;
                c.al.iterations = 8;
                c.matcher.epochs = 20;
                c.battleship.kselect_sample = 512;
            }
            Scale::Paper => {
                // §4.2: B = 100, 8 iterations, 100-sample seed, weak
                // budget = B.
                c.matcher.epochs = 25;
            }
        }
        c
    }

    /// Battleship α values averaged into the headline "Battleship" row
    /// (§5.1 averages α ∈ {0.25, 0.5, 0.75}; smaller scales use 0.5).
    pub fn battleship_alphas(self) -> Vec<f64> {
        match self {
            Scale::Paper => vec![0.25, 0.5, 0.75],
            _ => vec![0.5],
        }
    }
}

/// Parsed command-line options shared by all bench binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Experiment size.
    pub scale: Scale,
    /// Seeds to average over.
    pub seeds: Vec<u64>,
    /// Output directory for JSON results.
    pub out_dir: PathBuf,
}

impl BenchArgs {
    /// Parse from `std::env::args`, exiting with usage on error.
    pub fn parse() -> Self {
        let mut scale = Scale::Quick;
        let mut seeds_n: Option<usize> = None;
        let mut out_dir = PathBuf::from("bench-results");
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    scale = match args.get(i).map(String::as_str) {
                        Some("smoke") => Scale::Smoke,
                        Some("quick") => Scale::Quick,
                        Some("paper") => Scale::Paper,
                        other => {
                            eprintln!("unknown scale {other:?} (smoke|quick|paper)");
                            std::process::exit(2);
                        }
                    };
                }
                "--seeds" => {
                    i += 1;
                    seeds_n = args.get(i).and_then(|s| s.parse().ok());
                    if seeds_n.is_none() {
                        eprintln!("--seeds expects a positive integer");
                        std::process::exit(2);
                    }
                }
                "--out" => {
                    i += 1;
                    out_dir = PathBuf::from(args.get(i).cloned().unwrap_or_default());
                }
                other => {
                    eprintln!("unknown argument `{other}`");
                    eprintln!("usage: --scale smoke|quick|paper --seeds N --out DIR");
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        let n = seeds_n.unwrap_or(scale.default_seeds()).max(1);
        BenchArgs {
            scale,
            seeds: (1..=n as u64).collect(),
            out_dir,
        }
    }

    /// Write a serializable result as pretty JSON under the out dir.
    pub fn write_json<T: Serialize>(&self, name: &str, value: &T) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.out_dir)?;
        let path = self.out_dir.join(name);
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", serde_json::to_string_pretty(value)?)?;
        Ok(path)
    }
}

/// CPU feature flags relevant to the kernel tiers, as detected at run
/// time on the benchmarking host.
pub fn cpu_feature_flags() -> Vec<&'static str> {
    let mut flags = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        for (name, detected) in [
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("fma", std::arch::is_x86_feature_detected!("fma")),
            ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
            ("avx512bw", std::arch::is_x86_feature_detected!("avx512bw")),
            ("avx512vl", std::arch::is_x86_feature_detected!("avx512vl")),
        ] {
            if detected {
                flags.push(name);
            }
        }
    }
    flags
}

/// Hardware/runtime provenance of a benchmark artifact: the SIMD tier
/// the kernels actually dispatched to, the detected CPU feature flags,
/// and the rayon worker-thread count. Recorded into every
/// `BENCH_*.json` so a committed number can always be traced to the
/// hardware that produced it (an AVX-512 speedup measured on an AVX2
/// host would otherwise be indistinguishable from a regression).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Provenance {
    /// Dispatched SIMD tier name (`portable` / `avx2` / `avx512`).
    pub simd_tier: String,
    /// Detected kernel-relevant CPU feature flags.
    pub cpu_features: Vec<String>,
    /// Rayon worker threads at measurement time.
    pub threads: usize,
    /// Target architecture the bench ran on.
    pub arch: String,
}

impl Provenance {
    /// Detect the current host's provenance.
    pub fn detect() -> Self {
        Provenance {
            simd_tier: em_vector::simd_tier().name().to_string(),
            cpu_features: cpu_feature_flags().iter().map(|s| s.to_string()).collect(),
            threads: if rayon::in_serial_mode() {
                1
            } else {
                rayon::current_num_threads()
            },
            arch: std::env::consts::ARCH.to_string(),
        }
    }

    /// The provenance as a `"provenance": {…}` JSON object member, for
    /// the hand-assembled bench artifacts.
    pub fn json_fragment(&self) -> String {
        let features: Vec<String> = self
            .cpu_features
            .iter()
            .map(|f| format!("\"{f}\""))
            .collect();
        format!(
            "\"provenance\": {{\"simd_tier\": \"{}\", \"cpu_features\": [{}], \
             \"threads\": {}, \"arch\": \"{}\"}}",
            self.simd_tier,
            features.join(", "),
            self.threads,
            self.arch
        )
    }
}

/// Inject the detected [`Provenance`] into a hand-assembled JSON object
/// string, as a `"provenance"` member before the closing brace. Returns
/// the input unchanged if it does not end in an object.
pub fn with_provenance(json: &str) -> String {
    match json.rfind('}') {
        Some(pos) => {
            let head = json[..pos].trim_end().trim_end_matches(',');
            format!(
                "{head},\n  {}\n{}",
                Provenance::detect().json_fragment(),
                &json[pos..]
            )
        }
        None => json.to_string(),
    }
}

/// A generated dataset with its precomputed features, shared across
/// strategies and seeds.
pub struct PreparedDataset {
    /// The dataset.
    pub dataset: Dataset,
    /// The featurizer (ZeroER needs it).
    pub featurizer: Featurizer,
    /// Feature matrix, one row per candidate pair.
    pub features: Embeddings,
}

/// Generate and featurize one profile at the given scale.
pub fn prepare(profile: &DatasetProfile, scale: Scale, gen_seed: u64) -> Result<PreparedDataset> {
    let scaled = profile.clone().scaled(scale.factor());
    let dataset = generate(&scaled, &mut Rng::seed_from_u64(gen_seed))?;
    let featurizer = Featurizer::new(&dataset, FeatureConfig::default())?;
    let features = featurizer.featurize_all(&dataset)?;
    Ok(PreparedDataset {
        dataset,
        featurizer,
        features,
    })
}

/// Generate and featurize all six benchmark profiles.
pub fn prepare_all(scale: Scale, gen_seed: u64) -> Result<BTreeMap<String, PreparedDataset>> {
    let mut out = BTreeMap::new();
    for profile in em_synth::all_profiles() {
        let prepared = prepare(&profile, scale, gen_seed)?;
        out.insert(profile.name.to_string(), prepared);
    }
    Ok(out)
}

/// The active-learning methods compared in Figure 5 / Tables 4–5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// The paper's approach (α averaged per scale).
    Battleship,
    /// Kasai et al.'s entropy-based selection.
    Dal,
    /// Jain et al.'s committee-based selection.
    Dial,
    /// Uniform random selection.
    Random,
}

impl Method {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Method::Battleship => "battleship",
            Method::Dal => "dal",
            Method::Dial => "dial",
            Method::Random => "random",
        }
    }

    /// All four AL methods.
    pub fn all() -> [Method; 4] {
        [
            Method::Battleship,
            Method::Dal,
            Method::Dial,
            Method::Random,
        ]
    }
}

/// Run `method` on a prepared dataset for every seed with the given
/// config, returning the seed-aggregated report.
///
/// For `Method::Battleship`, runs one pass per α in
/// `scale.battleship_alphas()` and aggregates across (α, seed) — the
/// paper's §5.1 reporting convention.
pub fn run_method(
    prepared: &PreparedDataset,
    method: Method,
    config: &ExperimentConfig,
    alphas: &[f64],
    seeds: &[u64],
) -> Result<MultiSeedReport> {
    let mut runs: Vec<RunReport> = Vec::new();
    match method {
        Method::Battleship => {
            for &alpha in alphas {
                let mut cfg = config.clone();
                cfg.battleship.alpha = alpha;
                for &seed in seeds {
                    runs.push(run_one(
                        prepared,
                        &mut BattleshipStrategy::new(),
                        &cfg,
                        seed,
                    )?);
                }
            }
        }
        Method::Dal => {
            for &seed in seeds {
                runs.push(run_one(prepared, &mut DalStrategy::new(), config, seed)?);
            }
        }
        Method::Dial => {
            for &seed in seeds {
                runs.push(run_one(prepared, &mut DialStrategy::new(), config, seed)?);
            }
        }
        Method::Random => {
            for &seed in seeds {
                runs.push(run_one(prepared, &mut RandomStrategy::new(), config, seed)?);
            }
        }
    }
    MultiSeedReport::aggregate(&runs)
}

/// One (strategy, seed) run.
pub fn run_one(
    prepared: &PreparedDataset,
    strategy: &mut dyn SelectionStrategy,
    config: &ExperimentConfig,
    seed: u64,
) -> Result<RunReport> {
    let oracle = PerfectOracle::new();
    run_active_learning(
        &prepared.dataset,
        &prepared.features,
        strategy,
        &oracle,
        config,
        seed,
    )
}

/// Run a battleship variant with explicit parameter overrides (the
/// ablation figures).
pub fn run_battleship_variant(
    prepared: &PreparedDataset,
    config: &ExperimentConfig,
    alpha: f64,
    beta: f64,
    weak_supervision: bool,
    weak_method: WeakMethod,
    seeds: &[u64],
) -> Result<MultiSeedReport> {
    let mut cfg = config.clone();
    cfg.battleship.alpha = alpha;
    cfg.battleship.beta = beta;
    cfg.battleship.weak_method = weak_method;
    cfg.al.weak_supervision = weak_supervision;
    let mut runs = Vec::new();
    for &seed in seeds {
        runs.push(run_one(
            prepared,
            &mut BattleshipStrategy::new(),
            &cfg,
            seed,
        )?);
    }
    MultiSeedReport::aggregate(&runs)
}

/// The serialized output of the Figure 5 sweep, reused by Tables 4/5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Results {
    /// Scale the sweep ran at.
    pub scale: Scale,
    /// Per (dataset, method) aggregated curves.
    pub reports: Vec<MultiSeedReport>,
    /// ZeroER test F1 (%) per dataset.
    pub zeroer: BTreeMap<String, f64>,
    /// Full-D test F1 (%) per dataset.
    pub full_d: BTreeMap<String, f64>,
}

impl Fig5Results {
    /// Look up a (dataset, method) aggregate.
    pub fn report(&self, dataset: &str, method: &str) -> Option<&MultiSeedReport> {
        self.reports
            .iter()
            .find(|r| r.dataset == dataset && r.strategy == method)
    }
}

/// Master seed of the Figure 5 grids; every run seed derives from it
/// (see `GridConfig::run_seeds`), so one constant reproduces the sweep.
const FIG5_MASTER_SEED: u64 = 0xF165;

/// Run the full Figure 5 sweep (all datasets × all methods + the two
/// extremes). This is the workhorse shared by `fig5_f1_curves`,
/// `fig6_runtime`, `table4_f1` and `table5_auc`.
///
/// The sweep is expressed as [`ExperimentGrid`]s, so the figure
/// binaries inherit the engine's fan-out: all datasets materialize in
/// parallel into a shared [`ArtifactCache`], every (dataset, strategy,
/// seed) run is an independent grid cell scheduled across rayon
/// workers, and ZeroER / Full-D ride along as baseline cells. The
/// battleship row follows the paper's §5.1 convention of averaging
/// over α — one single-strategy grid per α value (the grid applies one
/// config to every cell), re-aggregated per dataset across (α, seed).
pub fn run_fig5(args: &BenchArgs) -> Result<Fig5Results> {
    let config = args.scale.experiment_config();
    let alphas = args.scale.battleship_alphas();
    let scenarios: Vec<Scenario> = em_synth::all_profiles()
        .into_iter()
        .map(|p| Scenario::synthetic(p.scaled(args.scale.factor()), 0xDA7A))
        .collect();
    let grid_config = |experiment: ExperimentConfig, baselines: bool| GridConfig {
        experiment,
        master_seed: FIG5_MASTER_SEED,
        n_seeds: args.seeds.len(),
        include_baselines: baselines,
    };
    let cache = ArtifactCache::new();

    // Grid 1: the non-battleship methods plus the ZeroER / Full-D
    // extremes, every (dataset, strategy, seed) cell fanned out at once.
    eprintln!(
        "[fig5] baseline grid: {} datasets × 3 methods (+ extremes) × {} seeds …",
        scenarios.len(),
        args.seeds.len()
    );
    let baseline_grid = ExperimentGrid::new(
        scenarios.clone(),
        vec![StrategySpec::Dal, StrategySpec::Dial, StrategySpec::Random],
        grid_config(config.clone(), true),
    );
    let baseline_report = baseline_grid.run_with_cache(&cache)?;

    // Grids 2…: battleship, one grid per α, sharing the same artifacts.
    let mut battleship_runs: BTreeMap<String, Vec<RunReport>> = BTreeMap::new();
    for &alpha in &alphas {
        eprintln!("[fig5] battleship grid (α = {alpha}) …");
        let mut cfg = config.clone();
        cfg.battleship.alpha = alpha;
        let grid = ExperimentGrid::new(
            scenarios.clone(),
            vec![StrategySpec::Battleship],
            grid_config(cfg, false),
        );
        for run in grid.run_with_cache(&cache)?.runs {
            battleship_runs
                .entry(run.dataset.clone())
                .or_default()
                .push(run);
        }
    }

    // Reassemble the per-(dataset, method) aggregates in the historical
    // reporting order (profile-major, battleship first).
    let mut reports = Vec::new();
    let mut zeroer = BTreeMap::new();
    let mut full_d = BTreeMap::new();
    for scenario in &scenarios {
        let name = scenario.name();
        let runs = battleship_runs.get(name).ok_or_else(|| {
            em_core::EmError::InvalidConfig(format!("no battleship runs for `{name}`"))
        })?;
        reports.push(MultiSeedReport::aggregate(runs)?);
        for method in [Method::Dal, Method::Dial, Method::Random] {
            let cell = baseline_report.cell(name, method.name()).ok_or_else(|| {
                em_core::EmError::InvalidConfig(format!(
                    "no grid cell for ({name}, {})",
                    method.name()
                ))
            })?;
            reports.push(cell.aggregate.clone());
        }
        for (label, out) in [("zeroer", &mut zeroer), ("full-d", &mut full_d)] {
            let cell = baseline_report.cell(name, label).ok_or_else(|| {
                em_core::EmError::InvalidConfig(format!("no grid cell for ({name}, {label})"))
            })?;
            let f1 = cell.aggregate.final_f1().ok_or_else(|| {
                em_core::EmError::EmptyInput(format!("({name}, {label}) baseline curve"))
            })?;
            out.insert(name.to_string(), f1);
        }
    }
    Ok(Fig5Results {
        scale: args.scale,
        reports,
        zeroer,
        full_d,
    })
}

/// Load cached Figure 5 results from the out dir, or run the sweep and
/// cache it.
pub fn fig5_cached(args: &BenchArgs) -> Result<Fig5Results> {
    let path = args.out_dir.join("fig5_results.json");
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(cached) = serde_json::from_str::<Fig5Results>(&text) {
            if cached.scale == args.scale {
                eprintln!("[fig5] using cached results from {}", path.display());
                return Ok(cached);
            }
        }
    }
    let results = run_fig5(args)?;
    if let Err(e) = args.write_json("fig5_results.json", &results) {
        eprintln!("[fig5] warning: could not cache results: {e}");
    }
    Ok(results)
}

/// Fixed-width table printing helper.
pub fn print_row(label: &str, cells: &[String]) {
    let mut line = format!("{label:<22}");
    for c in cells {
        line.push_str(&format!("{c:>12}"));
    }
    println!("{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_have_sane_configs() {
        for scale in [Scale::Smoke, Scale::Quick, Scale::Paper] {
            let c = scale.experiment_config();
            c.validate().unwrap();
            assert!(scale.factor() > 0.0 && scale.factor() <= 1.0);
            assert!(scale.default_seeds() >= 1);
            assert!(!scale.battleship_alphas().is_empty());
        }
        // Paper scale matches §4.2 exactly.
        let paper = Scale::Paper.experiment_config();
        assert_eq!(paper.al.budget, 100);
        assert_eq!(paper.al.iterations, 8);
        assert_eq!(Scale::Paper.battleship_alphas(), vec![0.25, 0.5, 0.75]);
    }

    #[test]
    fn prepare_smoke_dataset() {
        let p = em_synth::DatasetProfile::wdc_shoes();
        let prepared = prepare(&p, Scale::Smoke, 1).unwrap();
        assert_eq!(prepared.features.len(), prepared.dataset.len());
    }

    #[test]
    fn method_names_are_stable() {
        assert_eq!(Method::Battleship.name(), "battleship");
        assert_eq!(Method::all().len(), 4);
    }
}
