//! Kernel-tier benchmark: the AVX-512 SIMD tier versus AVX2 on the two
//! kernels that dominate matcher training and k-selection — `dot` and
//! blocked `gemm` — with the portable tier reported for scale.
//!
//! The gate encodes the tier's reason to exist: **AVX-512 must be
//! ≥ 1.5× faster than AVX2** on both kernels (64 f32 lanes per step
//! across four zmm accumulator chains vs 16, plus single-rounding FMA
//! halving the ops per element). On hosts without `avx512f` the override clamps and both
//! measurements would time the same code path, so the gate *skips*
//! (reported as `"gate": "skipped"`) rather than trivially passing —
//! absence of the hardware is not evidence about the kernel.
//!
//! Timings run under `rayon::serial_scope` on one core: the tier
//! override is thread-local, and the kernels themselves are
//! single-threaded leaf loops — fan-out would only add noise.
//!
//! Knobs (environment):
//! * `EM_BENCH_KERNEL_DIM` — vector length for `dot` (default 768);
//! * `EM_BENCH_KERNEL_OUT` — output JSON path (default
//!   `BENCH_kernel.json`);
//! * `EM_BENCH_KERNEL_MIN_SPEEDUP` — override the ≥ 1.5× gate (set 0 to
//!   only report).

use std::io::Write as _;

use em_bench::env_or;
use em_vector::{gemm, kernel, simd_tier, with_simd_tier, SimdTier};

/// Deterministic xorshift fill in [-1, 1) — no ambient randomness.
fn fill(state: &mut u64, n: usize) -> Vec<f32> {
    (0..n)
        .map(|_| {
            *state ^= *state << 13;
            *state ^= *state >> 7;
            *state ^= *state << 17;
            ((*state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
        })
        .collect()
}

/// Borrow an `n`-element slice whose base pointer is 64-byte aligned.
///
/// The backing `Vec` is only 16-byte aligned, so a raw slice makes
/// most 512-bit loads straddle two cache lines — a split-load penalty
/// that halves zmm load throughput while barely touching ymm. The
/// gate compares lane throughput, not allocator luck, so the operands
/// get the alignment the tier is designed for. Callers must allocate
/// `n + 16` elements to leave room for the shift.
fn aligned(buf: &[f32], n: usize) -> &[f32] {
    // `align_offset` already counts in elements, not bytes.
    let off = buf.as_ptr().align_offset(64);
    &buf[off..off + n]
}

fn main() {
    let dim: usize = env_or("EM_BENCH_KERNEL_DIM", 768);
    let out_path: String = env_or("EM_BENCH_KERNEL_OUT", "BENCH_kernel.json".to_string());
    let detected = simd_tier();
    let avx512_present = detected >= SimdTier::Avx512;
    eprintln!("[kernel] detected tier: {}", detected.name());

    // Cache-resident working sets: the gate measures the kernels'
    // *compute* rate, so the operands must live in L1/L2 — streaming a
    // multi-megabyte row matrix turns every tier into the same
    // memory-bandwidth measurement and the comparison says nothing
    // about the lanes. (The L2-and-beyond regime is the blocked GEMM's
    // job, covered by the engine/matcher end-to-end benches.)
    //
    // dot: a small row block against one query (k-selection inner
    // loop), swept repeatedly — 8 rows × dim f32 ≈ 24 KB at the
    // default dim, L1-resident.
    let n_rows = 8;
    let dot_reps = 512;
    let mut state = 0xD07_BE7C_u64;
    let rows_buf = fill(&mut state, n_rows * dim + 16);
    let query_buf = fill(&mut state, dim + 16);
    let rows = aligned(&rows_buf, n_rows * dim);
    let query = aligned(&query_buf, dim);
    // gemm: a matcher-forward-sized tile with an L1-resident B panel
    // (16 × 96 f32 = 6 KB), so the micro-kernel's load amortization —
    // not L2 bandwidth — is what's timed.
    let (m, n, k) = (64, 16, 96);
    let gemm_reps = 16;
    let a_buf = fill(&mut state, m * k + 16);
    let b_buf = fill(&mut state, n * k + 16);
    let a = aligned(&a_buf, m * k);
    let b = aligned(&b_buf, n * k);

    let time_tier = |tier: SimdTier| -> (f64, f64) {
        rayon::serial_scope(|| {
            with_simd_tier(tier, || {
                let dot = criterion::measure(5, || {
                    let mut acc = 0.0f32;
                    for _ in 0..dot_reps {
                        for r in rows.chunks_exact(dim) {
                            acc += kernel::dot(query, r);
                        }
                    }
                    acc
                });
                let ge = criterion::measure(5, || {
                    let mut out = vec![0.0f32; m * n];
                    for _ in 0..gemm_reps {
                        gemm(a, m, b, n, k, &mut out);
                    }
                    out
                });
                (dot.min_secs, ge.min_secs)
            })
        })
    };

    // The tiers are compared by their *minimum* over alternating rounds:
    // on shared/virtualized hosts, steal time and frequency drift only
    // ever add time, so the min is the closest observable to the
    // kernel's true cost — and alternating the rounds keeps slow drift
    // from loading the dice against whichever tier runs later.
    let tiers: Vec<SimdTier> = [SimdTier::Portable, SimdTier::Avx2, SimdTier::Avx512]
        .into_iter()
        .filter(|&tier| {
            // Skip tiers the host would silently clamp — timing the
            // clamped fallback under the wrong label would fabricate a
            // 1.0× result.
            let available = detected >= tier;
            if !available {
                eprintln!("[kernel] {}: not available, skipped", tier.name());
            }
            available
        })
        .collect();
    let mut best: Vec<(f64, f64)> = vec![(f64::INFINITY, f64::INFINITY); tiers.len()];
    for _round in 0..3 {
        for (slot, &tier) in best.iter_mut().zip(&tiers) {
            let (dot_s, gemm_s) = time_tier(tier);
            slot.0 = slot.0.min(dot_s);
            slot.1 = slot.1.min(gemm_s);
        }
    }

    let mut lines = Vec::new();
    let mut avx2 = (f64::NAN, f64::NAN);
    let mut avx512 = (f64::NAN, f64::NAN);
    for (&tier, &(dot_s, gemm_s)) in tiers.iter().zip(&best) {
        eprintln!(
            "[kernel] {}: dot {dot_s:.6} s ({n_rows} rows × {dot_reps}), \
             gemm {gemm_s:.6} s ({m}x{n}x{k} × {gemm_reps})",
            tier.name(),
        );
        lines.push(format!(
            "    {{\"tier\": \"{}\", \"dot_median_secs\": {:.6}, \"gemm_median_secs\": {:.6}}}",
            tier.name(),
            dot_s,
            gemm_s
        ));
        match tier {
            SimdTier::Avx2 => avx2 = (dot_s, gemm_s),
            SimdTier::Avx512 => avx512 = (dot_s, gemm_s),
            SimdTier::Portable => {}
        }
    }

    let min_speedup: f64 = env_or("EM_BENCH_KERNEL_MIN_SPEEDUP", 1.5);
    let (dot_speedup, gemm_speedup, gate) = if avx512_present {
        let ds = avx2.0 / avx512.0.max(1e-12);
        let gs = avx2.1 / avx512.1.max(1e-12);
        eprintln!(
            "[kernel] avx512 vs avx2: dot {ds:.2}×, gemm {gs:.2}× (gate: ≥ {min_speedup:.1}×)"
        );
        (
            ds,
            gs,
            if min_speedup <= 0.0 {
                "reported"
            } else {
                "enforced"
            },
        )
    } else {
        eprintln!("[kernel] avx512 absent — speedup gate skipped");
        (f64::NAN, f64::NAN, "skipped")
    };

    let json = format!(
        "{{\n  \"bench\": \"simd kernel tiers\",\n  \"dim\": {dim},\n  \
         \"dot_rows\": {n_rows},\n  \"dot_reps\": {dot_reps},\n  \
         \"gemm_shape\": [{m}, {n}, {k}],\n  \"gemm_reps\": {gemm_reps},\n  \
         \"detected_tier\": \"{}\",\n  \"tiers\": [\n{}\n  ],\n  \
         \"avx512_dot_speedup_vs_avx2\": {},\n  \
         \"avx512_gemm_speedup_vs_avx2\": {},\n  \
         \"min_speedup_gate\": {min_speedup},\n  \"gate\": \"{gate}\"\n}}\n",
        detected.name(),
        lines.join(",\n"),
        if dot_speedup.is_nan() {
            "null".to_string()
        } else {
            format!("{dot_speedup:.3}")
        },
        if gemm_speedup.is_nan() {
            "null".to_string()
        } else {
            format!("{gemm_speedup:.3}")
        },
    );
    let json = em_bench::with_provenance(&json);
    match std::fs::File::create(&out_path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("[kernel] wrote {out_path}"),
        Err(e) => eprintln!("[kernel] warning: could not write {out_path}: {e}"),
    }

    if gate == "enforced" && (dot_speedup < min_speedup || gemm_speedup < min_speedup) {
        eprintln!(
            "[kernel] FAIL: avx512 speedup (dot {dot_speedup:.2}×, gemm {gemm_speedup:.2}×) \
             below the {min_speedup:.1}× gate"
        );
        std::process::exit(1);
    }
    eprintln!("[kernel] PASS");
}
