//! Serving-layer benchmark: N concurrent sessions in one
//! [`SessionStore`] over a single shared artifact set.
//!
//! Three properties of `battleship::serve` are pinned:
//!
//! 1. **Golden**: driving the store with the parallel
//!    `step_ready_sessions` fan-out produces per-session reports
//!    bit-identical (modulo wall-clock) to the same store driven under
//!    `rayon::serial_scope` — per-session determinism survives the
//!    scheduler.
//! 2. **Speedup gate** (thread-aware, like the engine bench): the
//!    parallel fan-out must beat one-core serial stepping by **≥ 2× on
//!    ≥ 4 threads** (≥ 1.1× on 2–3, ≥ 0.9× no-regression on 1).
//! 3. **Checkpoint gate**: checkpointing every session (binary codec →
//!    in-memory backend) after every step round, plus one full
//!    crash-recovery reload (fresh store over the same backend,
//!    `recover()`, finish), costs **≤ 10 %** wall-clock over the
//!    checkpoint-free drive — persistence must be cheap enough to run
//!    continuously.
//!
//! Results are written to `BENCH_serve.json` for CI artifacts.
//!
//! Knobs (environment):
//! * `EM_BENCH_SERVE_SCALE` — dataset scale factor (default 0.06);
//! * `EM_BENCH_SERVE_SESSIONS` — concurrent sessions (default 32);
//! * `EM_BENCH_SERVE_OUT` — output JSON path (default `BENCH_serve.json`);
//! * `EM_BENCH_SERVE_MIN_SPEEDUP` — override the thread-aware gate
//!   (set 0 to only report);
//! * `EM_BENCH_SERVE_MAX_CKPT_OVERHEAD_PCT` — override the ≤ 10 %
//!   checkpoint/restore gate (set < 0 to only report);
//! * `EM_BENCH_SERVE_SAMPLES` — samples per median (default 3);
//! * `RAYON_NUM_THREADS` — worker threads for the fan-out.

use std::io::Write as _;
use std::sync::Arc;

use battleship::api::{
    ArtifactCache, Label, MemoryBackend, PairIdx, RunReport, Scenario, SessionConfig, SessionPhase,
    SessionStore, SnapshotCodec, StrategySpec,
};
use battleship::ExperimentConfig;
use em_bench::env_or;
use em_synth::DatasetProfile;

/// Zero a run's wall-clock fields for equality comparison.
fn strip(mut r: RunReport) -> RunReport {
    for it in &mut r.iterations {
        it.train_secs = 0.0;
        it.select_secs = 0.0;
    }
    r
}

/// Session ids `s00..sNN`, each with a strategy and seed derived from
/// its index (a heterogeneous session population, as a server would see).
fn session_plan(n: usize) -> Vec<(String, StrategySpec, u64)> {
    (0..n)
        .map(|i| {
            (
                format!("s{i:02}"),
                StrategySpec::all()[i % 4],
                0x5EED + i as u64,
            )
        })
        .collect()
}

/// Build a fresh store over `backend` and populate it with the session
/// plan.
fn populate(
    backend: Arc<MemoryBackend>,
    cache: Arc<ArtifactCache>,
    scenario: &Scenario,
    config: &ExperimentConfig,
    plan: &[(String, StrategySpec, u64)],
) -> SessionStore {
    let store = SessionStore::with_cache(Box::new(backend), SnapshotCodec::Binary, cache);
    store.register_scenario(scenario.clone());
    for (id, strategy, seed) in plan {
        store
            .create(
                id,
                scenario.name(),
                SessionConfig {
                    experiment: config.clone(),
                    strategy: *strategy,
                    seed: *seed,
                },
            )
            .expect("create session");
    }
    store
}

/// Answer every outstanding query batch from ground truth.
fn answer_batches(store: &SessionStore, plan: &[(String, StrategySpec, u64)]) {
    for (id, _, _) in plan {
        let batch = store.next_query_batch(id).expect("query batch");
        if batch.is_empty() {
            continue;
        }
        let artifacts = store.artifacts(id).expect("artifacts");
        let answers: Vec<(PairIdx, Label)> = batch
            .iter()
            .map(|&p| (p, artifacts.dataset.ground_truth(p)))
            .collect();
        store.submit_labels(id, &answers).expect("submit labels");
    }
}

/// Drive every session to `Done` in store-wide rounds:
/// answer all batches, step everything trainable, repeat. Optionally
/// checkpoint the whole store after every step round.
fn drive_store(
    store: &SessionStore,
    plan: &[(String, StrategySpec, u64)],
    checkpoint_each_round: bool,
) -> Vec<RunReport> {
    loop {
        answer_batches(store, plan);
        let stepped = store.step_ready_sessions().expect("step sessions");
        if checkpoint_each_round {
            store.checkpoint_all().expect("checkpoint all");
        }
        if stepped.is_empty() {
            let all_done = plan
                .iter()
                .all(|(id, _, _)| store.get(id).expect("status").phase == SessionPhase::Done);
            assert!(all_done, "store stalled with sessions not Done");
            break;
        }
    }
    plan.iter()
        .map(|(id, _, _)| store.report(id).expect("report"))
        .collect()
}

fn main() {
    let scale: f64 = env_or("EM_BENCH_SERVE_SCALE", 0.06);
    let n_sessions: usize = env_or("EM_BENCH_SERVE_SESSIONS", 32);
    let out_path: String = env_or("EM_BENCH_SERVE_OUT", "BENCH_serve.json".to_string());
    let samples: usize = env_or("EM_BENCH_SERVE_SAMPLES", 3);
    let max_ckpt_overhead_pct: f64 = env_or("EM_BENCH_SERVE_MAX_CKPT_OVERHEAD_PCT", 10.0);

    let mut config = ExperimentConfig::low_resource(2, 20);
    config.al.seed_size = 20;
    config.matcher.epochs = 8;
    config.battleship.kselect_sample = 128;

    let scenario = Scenario::synthetic_scaled(DatasetProfile::amazon_google(), scale, 0xDA7A);
    let cache = Arc::new(ArtifactCache::new());
    let art = cache
        .get_or_materialize(&scenario)
        .expect("materialize scenario");
    let plan = session_plan(n_sessions);
    eprintln!(
        "[serve] {} sessions over one shared `{}` artifact set ({} pairs), 2 iterations × 20 labels",
        n_sessions,
        scenario.name(),
        art.dataset.len()
    );

    let fresh_store = || {
        populate(
            Arc::new(MemoryBackend::new()),
            cache.clone(),
            &scenario,
            &config,
            &plan,
        )
    };

    // Golden: parallel fan-out ≡ forced-serial stepping, per session.
    eprintln!("[serve] golden check: parallel step_ready_sessions ≡ serial stepping …");
    let parallel_reports = drive_store(&fresh_store(), &plan, false);
    let serial_reports = rayon::serial_scope(|| drive_store(&fresh_store(), &plan, false));
    for ((id, _, _), (p, s)) in plan
        .iter()
        .zip(parallel_reports.iter().zip(&serial_reports))
    {
        assert_eq!(
            strip(p.clone()),
            strip(s.clone()),
            "session `{id}` diverged between parallel and serial stepping"
        );
    }
    eprintln!("[serve] golden check passed");

    // Golden: checkpoint-every-round + crash recovery reproduces the
    // same reports exactly.
    eprintln!("[serve] golden check: checkpoint each round + crash recovery …");
    let backend = Arc::new(MemoryBackend::new());
    let store = populate(backend.clone(), cache.clone(), &scenario, &config, &plan);
    // Interrupt after the first round, recover into a new store, finish.
    answer_batches(&store, &plan);
    store.step_ready_sessions().expect("step");
    store.checkpoint_all().expect("checkpoint all");
    drop(store);
    let recovered = populate_recover(backend, cache.clone(), &scenario);
    let recovered_reports = drive_store(&recovered, &plan, true);
    for ((id, _, _), (p, r)) in plan
        .iter()
        .zip(parallel_reports.iter().zip(&recovered_reports))
    {
        assert_eq!(
            strip(p.clone()),
            strip(r.clone()),
            "session `{id}` diverged after crash recovery"
        );
    }
    eprintln!("[serve] golden checks passed");

    // Timing: serial stepping pinned to one core …
    eprintln!("[serve] timing serial store stepping (one core) …");
    let serial = rayon::serial_scope(|| {
        criterion::measure(samples, || drive_store(&fresh_store(), &plan, false))
    });
    eprintln!("[serve] serial stepping: {:.3} s", serial.median_secs);

    // … versus the rayon fan-out.
    eprintln!("[serve] timing parallel step_ready_sessions …");
    let parallel = criterion::measure(samples, || drive_store(&fresh_store(), &plan, false));
    eprintln!("[serve] parallel stepping: {:.3} s", parallel.median_secs);

    // … and the parallel drive with continuous checkpointing.
    eprintln!("[serve] timing parallel drive with per-round checkpoint_all …");
    let checkpointed = criterion::measure(samples, || drive_store(&fresh_store(), &plan, true));
    eprintln!(
        "[serve] with checkpoints: {:.3} s",
        checkpointed.median_secs
    );

    let threads = rayon::current_num_threads();
    let speedup = serial.median_secs / parallel.median_secs.max(1e-12);
    let min_speedup: f64 = env_or(
        "EM_BENCH_SERVE_MIN_SPEEDUP",
        if threads >= 4 {
            2.0
        } else if threads >= 2 {
            1.1
        } else {
            0.9
        },
    );
    let ckpt_overhead_pct =
        100.0 * (checkpointed.median_secs / parallel.median_secs.max(1e-12) - 1.0);
    eprintln!(
        "[serve] speedup: {speedup:.2}× with {threads} thread(s) (gate: ≥ {min_speedup:.1}×); \
         checkpoint overhead: {ckpt_overhead_pct:+.2}% (gate: ≤ {max_ckpt_overhead_pct:.1}%)"
    );

    let json = format!(
        "{{\n  \"bench\": \"serving layer store\",\n  \"scenario\": \"{}\",\n  \
         \"pairs\": {},\n  \"sessions\": {},\n  \"iterations\": {},\n  \"budget\": {},\n  \
         \"codec\": \"{}\",\n  \"threads\": {threads},\n  \
         \"serial_median_secs\": {:.6},\n  \"parallel_median_secs\": {:.6},\n  \
         \"checkpointed_median_secs\": {:.6},\n  \"speedup\": {:.3},\n  \
         \"min_speedup_gate\": {min_speedup},\n  \"checkpoint_overhead_pct\": {:.3},\n  \
         \"max_checkpoint_overhead_pct_gate\": {max_ckpt_overhead_pct}\n}}\n",
        scenario.name(),
        art.dataset.len(),
        n_sessions,
        config.al.iterations,
        config.al.budget,
        SnapshotCodec::Binary.name(),
        serial.median_secs,
        parallel.median_secs,
        checkpointed.median_secs,
        speedup,
        ckpt_overhead_pct,
    );
    let json = em_bench::with_provenance(&json);
    match std::fs::File::create(&out_path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("[serve] wrote {out_path}"),
        Err(e) => eprintln!("[serve] warning: could not write {out_path}: {e}"),
    }

    let mut failed = false;
    if min_speedup > 0.0 && speedup < min_speedup {
        eprintln!("[serve] FAIL: speedup {speedup:.2}× below the {min_speedup:.1}× gate");
        failed = true;
    }
    if max_ckpt_overhead_pct >= 0.0 && ckpt_overhead_pct > max_ckpt_overhead_pct {
        eprintln!(
            "[serve] FAIL: checkpoint overhead {ckpt_overhead_pct:.2}% above the \
             {max_ckpt_overhead_pct:.1}% gate"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!("[serve] PASS");
}

/// A new store over an existing backend, recovered from its snapshots.
fn populate_recover(
    backend: Arc<MemoryBackend>,
    cache: Arc<ArtifactCache>,
    scenario: &Scenario,
) -> SessionStore {
    let store = SessionStore::with_cache(Box::new(backend), SnapshotCodec::Binary, cache);
    store.register_scenario(scenario.clone());
    store.recover().expect("recover store");
    store
}
