//! Spatial-pipeline benchmark: blocked/parallel `SpatialIndex::build`
//! versus the seed's scalar baseline, measured in the same run.
//!
//! This is the perf gate for the kernel layer: on the default 5k-node,
//! 128-dim pool the blocked pipeline must beat
//! [`SpatialIndex::build_reference`] (the seed implementation, kept
//! verbatim) by ≥ 4×. Results are printed criterion-style and written
//! to `BENCH_spatial.json` for CI artifacts.
//!
//! Knobs (environment):
//! * `EM_BENCH_N` / `EM_BENCH_DIM` — pool size / dimension
//!   (default 5000 × 128);
//! * `EM_BENCH_OUT` — output JSON path (default `BENCH_spatial.json`);
//! * `EM_BENCH_MIN_SPEEDUP` — exit non-zero below this ratio
//!   (default 4.0; set 0 to only report);
//! * `RAYON_NUM_THREADS` — worker threads for the blocked pipeline.

use std::io::Write as _;

use battleship::{SpatialIndex, SpatialParams};
use em_core::Rng;
use em_graph::NodeKind;
use em_vector::{AnnPolicy, Embeddings};

use em_bench::env_or;

/// Gaussian blob pool mimicking matcher pair representations.
fn pool(n: usize, dim: usize, seed: u64) -> Embeddings {
    let mut rng = Rng::seed_from_u64(seed);
    let n_blobs = 10;
    let centers: Vec<Vec<f32>> = (0..n_blobs)
        .map(|_| (0..dim).map(|_| rng.normal() as f32 * 2.0).collect())
        .collect();
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let c = &centers[i % n_blobs];
        rows.push(
            c.iter()
                .map(|&x| x + rng.normal() as f32 * 0.6)
                .collect::<Vec<f32>>(),
        );
    }
    Embeddings::from_rows(&rows).expect("non-empty pool")
}

fn params(seed: u64) -> SpatialParams {
    // Paper defaults (§4.2): q = 15, extra ratio 0.03, cluster size
    // fractions 0.05–0.15, sweep sample 800.
    SpatialParams {
        q: 15,
        extra_ratio: 0.03,
        cluster_min_frac: 0.05,
        cluster_max_frac: 0.15,
        kselect_sample: 800,
        ann: AnnPolicy::with_threshold(4096),
        seed,
    }
}

fn main() {
    let n: usize = env_or("EM_BENCH_N", 5000);
    let dim: usize = env_or("EM_BENCH_DIM", 128);
    let min_speedup: f64 = env_or("EM_BENCH_MIN_SPEEDUP", 4.0);
    let out_path: String = env_or("EM_BENCH_OUT", "BENCH_spatial.json".to_string());

    eprintln!("[spatial] generating pool: n = {n}, dim = {dim}");
    let data = pool(n, dim, 0xDA7A);
    let kinds: Vec<NodeKind> = (0..n)
        .map(|i| {
            if i % 3 == 0 {
                NodeKind::PredictedNonMatch
            } else {
                NodeKind::PredictedMatch
            }
        })
        .collect();
    let confs = vec![0.9f32; n];
    let p = params(7);

    // Golden check before timing: the parallel pipeline must equal its
    // serial execution exactly (identical graphs, components, clusters).
    eprintln!("[spatial] golden check: parallel ≡ serial …");
    let fast = SpatialIndex::build(&data, &kinds, &confs, &p).expect("blocked build");
    let serial = rayon::serial_scope(|| {
        SpatialIndex::build(&data, &kinds, &confs, &p).expect("serial blocked build")
    });
    assert_eq!(fast.clusters, serial.clusters, "clusters diverged");
    assert_eq!(fast.components, serial.components, "components diverged");
    assert_eq!(
        fast.graph.edges(),
        serial.graph.edges(),
        "edge sets diverged"
    );
    eprintln!(
        "[spatial] golden check passed ({} nodes, {} edges, k = {})",
        fast.len(),
        fast.graph.n_edges(),
        fast.k
    );

    // Measure both pipelines in this same process/run.
    eprintln!("[spatial] timing scalar baseline (seed implementation) …");
    let scalar = criterion::measure(3, || {
        SpatialIndex::build_reference(&data, &kinds, &confs, &p).expect("reference build")
    });
    eprintln!("[spatial] scalar baseline: {:.3} s", scalar.median_secs);

    eprintln!("[spatial] timing blocked + parallel pipeline …");
    let blocked = criterion::measure(5, || {
        SpatialIndex::build(&data, &kinds, &confs, &p).expect("blocked build")
    });
    eprintln!("[spatial] blocked pipeline: {:.3} s", blocked.median_secs);

    let speedup = scalar.median_secs / blocked.median_secs.max(1e-12);
    let threads = rayon::current_num_threads();
    eprintln!("[spatial] speedup: {speedup:.2}× (threads = {threads}, gate: ≥ {min_speedup:.1}×)");

    let json = format!(
        "{{\n  \"bench\": \"SpatialIndex::build\",\n  \"n\": {n},\n  \"dim\": {dim},\n  \"threads\": {threads},\n  \"scalar_median_secs\": {:.6},\n  \"blocked_median_secs\": {:.6},\n  \"speedup\": {:.3},\n  \"min_speedup_gate\": {min_speedup},\n  \"edges\": {},\n  \"k\": {}\n}}\n",
        scalar.median_secs,
        blocked.median_secs,
        speedup,
        fast.graph.n_edges(),
        fast.k,
    );
    let json = em_bench::with_provenance(&json);
    match std::fs::File::create(&out_path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("[spatial] wrote {out_path}"),
        Err(e) => eprintln!("[spatial] warning: could not write {out_path}: {e}"),
    }

    if min_speedup > 0.0 && speedup < min_speedup {
        eprintln!("[spatial] FAIL: speedup {speedup:.2}× below the {min_speedup:.1}× gate");
        std::process::exit(1);
    }
    eprintln!("[spatial] PASS");
}
