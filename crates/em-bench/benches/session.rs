//! Session-API benchmark: the step-driven `MatchSession` driver versus
//! the preserved closed protocol loop, on the 2-iteration amazon_google
//! run.
//!
//! The session redesign inverted the engine's inner loop into a state
//! machine (advance / next_query_batch / submit_labels); this bench
//! pins that inversion to being free: the golden check asserts the
//! session-driven run is bit-identical (modulo wall-clock) to the
//! closed loop for every strategy, and the gate bounds the step
//! machinery's wall-clock overhead at **≤ 5 %** on the battleship run
//! (both paths pinned to one core under `rayon::serial_scope`, so the
//! comparison measures the loop plumbing, not scheduler noise).
//! Results are written to `BENCH_session.json` for CI artifacts.
//!
//! Knobs (environment):
//! * `EM_BENCH_SESSION_SCALE` — dataset scale factor (default 0.1);
//! * `EM_BENCH_SESSION_OUT` — output JSON path (default
//!   `BENCH_session.json`);
//! * `EM_BENCH_SESSION_MAX_OVERHEAD_PCT` — override the ≤ 5 % gate
//!   (set < 0 to only report; CI relaxes it to absorb shared-runner
//!   noise on a second-scale workload);
//! * `EM_BENCH_SESSION_SAMPLES` — samples per median (default 5).

use std::io::Write as _;

use battleship::api::{MatchSession, PerfectOracle, SessionConfig};
use battleship::{
    run_active_learning, run_closed_loop, ExperimentConfig, RunReport, Scenario, StrategySpec,
};
use em_bench::env_or;
use em_synth::DatasetProfile;

/// Zero a run's wall-clock fields for equality comparison.
fn strip(mut r: RunReport) -> RunReport {
    for it in &mut r.iterations {
        it.train_secs = 0.0;
        it.select_secs = 0.0;
    }
    r
}

fn main() {
    let scale: f64 = env_or("EM_BENCH_SESSION_SCALE", 0.1);
    let out_path: String = env_or("EM_BENCH_SESSION_OUT", "BENCH_session.json".to_string());
    let max_overhead_pct: f64 = env_or("EM_BENCH_SESSION_MAX_OVERHEAD_PCT", 5.0);
    let samples: usize = env_or("EM_BENCH_SESSION_SAMPLES", 5);

    let mut config = ExperimentConfig::default();
    config.al.budget = 40;
    config.al.seed_size = 40;
    config.al.weak_budget = 40;
    config.al.iterations = 2;
    config.matcher.epochs = 10;
    config.battleship.kselect_sample = 256;
    let seed = 0x5E55;

    let scenario = Scenario::synthetic_scaled(DatasetProfile::amazon_google(), scale, 0xDA7A);
    let art = scenario.materialize().expect("materialize scenario");
    eprintln!(
        "[session] task: {} ({} pairs), 2 iterations × 40 labels",
        scenario.name(),
        art.dataset.len()
    );

    // Golden check: session driver ≡ closed loop, for every strategy.
    eprintln!("[session] golden check: session driver ≡ closed loop …");
    for spec in StrategySpec::all() {
        let closed = run_closed_loop(
            &art.dataset,
            &art.features,
            spec.build().as_mut(),
            &PerfectOracle::new(),
            &config,
            seed,
        )
        .expect("closed run");
        let session = run_active_learning(
            &art.dataset,
            &art.features,
            spec.build().as_mut(),
            &PerfectOracle::new(),
            &config,
            seed,
        )
        .expect("session run");
        assert_eq!(
            strip(closed),
            strip(session),
            "session diverged from the closed loop for `{}`",
            spec.name()
        );
    }
    eprintln!("[session] golden check passed");

    let closed_run = || {
        run_closed_loop(
            &art.dataset,
            &art.features,
            StrategySpec::Battleship.build().as_mut(),
            &PerfectOracle::new(),
            &config,
            seed,
        )
        .expect("closed run")
    };
    let session_run = || {
        let oracle = PerfectOracle::new();
        let mut session = MatchSession::new(
            &art.dataset,
            &art.features,
            SessionConfig {
                experiment: config.clone(),
                strategy: StrategySpec::Battleship,
                seed,
            },
        )
        .expect("open session");
        session.drive(&oracle).expect("drive session")
    };

    // Timing, both paths pinned to one core for a stable ratio.
    eprintln!("[session] timing closed loop (one core) …");
    let closed = rayon::serial_scope(|| criterion::measure(samples, closed_run));
    eprintln!("[session] closed loop: {:.3} s", closed.median_secs);
    eprintln!("[session] timing session driver (one core) …");
    let session = rayon::serial_scope(|| criterion::measure(samples, session_run));
    eprintln!("[session] session driver: {:.3} s", session.median_secs);

    let overhead_pct = 100.0 * (session.median_secs / closed.median_secs.max(1e-12) - 1.0);
    eprintln!(
        "[session] step-driven overhead: {overhead_pct:+.2}% (gate: ≤ {max_overhead_pct:.1}%)"
    );

    let json = format!(
        "{{\n  \"bench\": \"session API step overhead\",\n  \"scenario\": \"{}\",\n  \
         \"pairs\": {},\n  \"iterations\": {},\n  \"budget\": {},\n  \
         \"closed_loop_median_secs\": {:.6},\n  \"session_median_secs\": {:.6},\n  \
         \"overhead_pct\": {:.3},\n  \"max_overhead_pct_gate\": {max_overhead_pct}\n}}\n",
        scenario.name(),
        art.dataset.len(),
        config.al.iterations,
        config.al.budget,
        closed.median_secs,
        session.median_secs,
        overhead_pct,
    );
    let json = em_bench::with_provenance(&json);
    match std::fs::File::create(&out_path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("[session] wrote {out_path}"),
        Err(e) => eprintln!("[session] warning: could not write {out_path}: {e}"),
    }

    if max_overhead_pct >= 0.0 && overhead_pct > max_overhead_pct {
        eprintln!(
            "[session] FAIL: overhead {overhead_pct:.2}% above the {max_overhead_pct:.1}% gate"
        );
        std::process::exit(1);
    }
    eprintln!("[session] PASS");
}
