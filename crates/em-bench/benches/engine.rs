//! Experiment-engine benchmark: the parallel grid scheduler versus the
//! legacy serial strategy loop, measured on the same 12-run grid
//! (4 strategies × 3 seeds, amazon_google-scaled profile).
//!
//! Before timing, two golden checks pin the engine's correctness
//! contract: every grid cell's run must be identical (modulo wall-clock)
//! to the legacy single-run `run_active_learning` path with the same
//! seed, and the canonical grid report must be bit-identical between the
//! forced-serial scheduler and the default threaded scheduler.
//!
//! The gate compares the engine's full-machine grid fan-out against the
//! serial strategy loop pinned to one core under `rayon::serial_scope`
//! (the same pinning precedent as the matcher bench): one run at a
//! time, no parallelism anywhere — the legacy `compare_strategies`
//! shape on a single core. The unpinned serial loop (inner kernels
//! free to fan out) is measured and reported alongside on multi-thread
//! hosts. The gate is thread-aware, since fan-out can only pay on a
//! multi-core host: **≥ 2.5× with ≥ 4 worker threads**, a softer
//! ≥ 1.2× with 2–3 threads, and a ≥ 0.9× no-regression bound on one
//! thread (where parallel ≡ serial and only scheduler overhead could
//! lose time). Results are written to `BENCH_engine.json` for CI
//! artifacts.
//!
//! A second A/B isolates the scheduler itself: the same grid fan-out
//! under the legacy seed-major interleave placement versus the
//! cost-model LPT placement (`ScheduleMode`). The grid is DIAL-skewed
//! by construction — `StrategySpec::all()` includes DIAL, whose cells
//! cost ~3× the average per the committed probe table — which is
//! exactly the shape where interleave strands a worker behind the heavy
//! cells. The LPT gate is thread-aware too: **≥ 1.3× with ≥ 4 worker
//! threads** (the issue's bar), and a ≥ 0.95× no-regression bound below
//! that (with few or one worker there is nothing to balance, so LPT
//! must merely not lose time to the cost model). A golden check first
//! pins that both modes produce the bit-identical canonical report.
//!
//! Knobs (environment):
//! * `EM_BENCH_ENGINE_SCALE` — dataset scale factor (default 0.1);
//! * `EM_BENCH_ENGINE_SEEDS` — seeds per strategy (default 3);
//! * `EM_BENCH_ENGINE_OUT` — output JSON path (default
//!   `BENCH_engine.json`);
//! * `EM_BENCH_ENGINE_MIN_SPEEDUP` — override the thread-aware gate
//!   (set 0 to only report);
//! * `EM_BENCH_ENGINE_LPT_MIN_SPEEDUP` — override the LPT-vs-interleave
//!   gate (set 0 to only report);
//! * `RAYON_NUM_THREADS` — worker threads for the grid fan-out.

use std::io::Write as _;

use battleship::{
    run_active_learning, ArtifactCache, ExperimentGrid, GridConfig, RunReport, Scenario,
    ScheduleMode, StrategySpec,
};
use em_bench::env_or;
use em_core::PerfectOracle;
use em_synth::DatasetProfile;

/// Zero a run's wall-clock fields for equality comparison.
fn strip(mut r: RunReport) -> RunReport {
    for it in &mut r.iterations {
        it.train_secs = 0.0;
        it.select_secs = 0.0;
    }
    r
}

fn main() {
    let scale: f64 = env_or("EM_BENCH_ENGINE_SCALE", 0.1);
    let n_seeds: usize = env_or("EM_BENCH_ENGINE_SEEDS", 3);
    let out_path: String = env_or("EM_BENCH_ENGINE_OUT", "BENCH_engine.json".to_string());

    let mut config = GridConfig {
        master_seed: 0xC41D,
        n_seeds,
        include_baselines: false,
        ..GridConfig::default()
    };
    config.experiment.al.budget = 40;
    config.experiment.al.seed_size = 40;
    config.experiment.al.weak_budget = 40;
    config.experiment.al.iterations = 2;
    config.experiment.matcher.epochs = 10;
    config.experiment.battleship.kselect_sample = 256;

    let strategies = StrategySpec::all().to_vec();
    let grid = ExperimentGrid::new(
        vec![Scenario::synthetic_scaled(
            DatasetProfile::amazon_google(),
            scale,
            0xDA7A,
        )],
        strategies.clone(),
        config.clone(),
    );
    let n_runs = strategies.len() * n_seeds;

    // Shared artifacts: both the serial loop and the engine read the same
    // materialized dataset, so the timing compares schedulers, not
    // featurization.
    let cache = ArtifactCache::new();
    let art = cache
        .get_or_materialize(&grid.scenarios[0])
        .expect("materialize scenario");
    let seeds = config.run_seeds();
    eprintln!(
        "[engine] grid: {} ({} pairs) × {} strategies × {} seeds = {} runs",
        grid.scenarios[0].name(),
        art.dataset.len(),
        strategies.len(),
        n_seeds,
        n_runs
    );

    // The legacy path: one strategy at a time, one seed at a time.
    let serial_loop = || -> Vec<RunReport> {
        let mut runs = Vec::with_capacity(n_runs);
        for &spec in &strategies {
            for &seed in &seeds {
                let oracle = PerfectOracle::new();
                runs.push(
                    run_active_learning(
                        &art.dataset,
                        &art.features,
                        spec.build().as_mut(),
                        &oracle,
                        &config.experiment,
                        seed,
                    )
                    .expect("legacy run"),
                );
            }
        }
        runs
    };

    // Golden check 1: engine cells ≡ legacy single runs, per seed.
    eprintln!("[engine] golden check: grid cells ≡ legacy single-run path …");
    let grid_report = grid.run_with_cache(&cache).expect("grid run");
    let legacy_runs = serial_loop();
    assert_eq!(grid_report.runs.len(), legacy_runs.len());
    for (g, l) in grid_report.runs.iter().zip(&legacy_runs) {
        assert_eq!(
            strip(g.clone()),
            strip(l.clone()),
            "engine diverged from legacy for ({}, seed {})",
            g.strategy,
            g.seed
        );
    }

    // Golden check 2: canonical report bit-identical serial vs threaded.
    eprintln!("[engine] golden check: serial scheduler ≡ threaded scheduler …");
    let serial_report = rayon::serial_scope(|| grid.run_with_cache(&cache)).expect("serial grid");
    assert_eq!(
        grid_report.canonical().to_json().expect("json"),
        serial_report.canonical().to_json().expect("json"),
        "grid report depends on worker-thread count"
    );
    // Golden check 3: canonical report bit-identical across schedule
    // modes — LPT may only move work between workers, never change it.
    eprintln!("[engine] golden check: cost-LPT placement ≡ seed-interleave placement …");
    let interleave_report = grid
        .run_with_cache_scheduled(&cache, ScheduleMode::SeedInterleave)
        .expect("interleave grid");
    assert_eq!(
        grid_report.canonical().to_json().expect("json"),
        interleave_report.canonical().to_json().expect("json"),
        "grid report depends on the schedule mode"
    );
    eprintln!("[engine] golden checks passed");

    // Timing: the serial strategy loop pinned to one core (the gate's
    // baseline — one run at a time, nothing parallel anywhere) …
    eprintln!("[engine] timing serial strategy loop (one core) …");
    let serial = rayon::serial_scope(|| criterion::measure(3, serial_loop));
    eprintln!("[engine] serial loop (1 core): {:.3} s", serial.median_secs);

    // … the same loop with the inner kernels free to use the machine
    // (what the legacy example actually did on a multi-core host) …
    let threads = rayon::current_num_threads();
    let serial_inner_parallel = if threads > 1 {
        eprintln!("[engine] timing serial strategy loop (inner kernels parallel) …");
        let s = criterion::measure(3, serial_loop);
        eprintln!(
            "[engine] serial loop (inner parallel): {:.3} s",
            s.median_secs
        );
        s.median_secs
    } else {
        serial.median_secs
    };

    // … versus the engine's grid fan-out over the same runs (the
    // default cost-LPT placement) …
    eprintln!("[engine] timing parallel grid engine (cost-LPT placement) …");
    let parallel = criterion::measure(3, || grid.run_with_cache(&cache).expect("grid run"));
    eprintln!("[engine] grid engine: {:.3} s", parallel.median_secs);

    // … and the scheduler A/B: the same fan-out under the legacy
    // seed-major interleave placement. Placement is the *only*
    // difference, so the effect can be smaller than this machine's
    // slow thermal/VM drift across a multi-second bench — sample the
    // two modes in alternating pairs (order swapped every pair) and
    // take the median of the per-pair ratios, which cancels any drift
    // slower than one pair.
    eprintln!("[engine] timing LPT vs seed-interleave placement (paired samples) …");
    let time_mode = |mode: ScheduleMode| {
        criterion::measure(1, || {
            grid.run_with_cache_scheduled(&cache, mode)
                .expect("grid run")
        })
        .median_secs
    };
    let mut lpt_samples = Vec::new();
    let mut interleave_samples = Vec::new();
    let mut ratios = Vec::new();
    for pair in 0..3 {
        let (l, i) = if pair % 2 == 0 {
            let l = time_mode(ScheduleMode::CostLpt);
            (l, time_mode(ScheduleMode::SeedInterleave))
        } else {
            let i = time_mode(ScheduleMode::SeedInterleave);
            (time_mode(ScheduleMode::CostLpt), i)
        };
        eprintln!("[engine]   pair {pair}: lpt {l:.3} s, interleave {i:.3} s");
        ratios.push(i / l.max(1e-12));
        lpt_samples.push(l);
        interleave_samples.push(i);
    }
    let median = |xs: &mut Vec<f64>| {
        xs.sort_by(|a, b| a.total_cmp(b));
        xs[xs.len() / 2]
    };
    let lpt_median = median(&mut lpt_samples);
    let interleave_median = median(&mut interleave_samples);

    let speedup = serial.median_secs / parallel.median_secs.max(1e-12);
    let min_speedup: f64 = env_or(
        "EM_BENCH_ENGINE_MIN_SPEEDUP",
        if threads >= 4 {
            2.5
        } else if threads >= 2 {
            1.2
        } else {
            0.9
        },
    );
    eprintln!(
        "[engine] speedup: {speedup:.2}× with {threads} thread(s) (gate: ≥ {min_speedup:.1}×)"
    );

    let lpt_speedup = median(&mut ratios);
    // ≥ 4 workers: the issue's bar — LPT must actually balance the
    // DIAL skew. Below that there is nothing to balance (at one worker
    // the two modes run identical work in a different order), so the
    // gate is a no-regression bound with headroom for paired-sample
    // noise on shared hosts.
    let lpt_min_speedup: f64 = env_or(
        "EM_BENCH_ENGINE_LPT_MIN_SPEEDUP",
        if threads >= 4 { 1.3 } else { 0.9 },
    );
    eprintln!(
        "[engine] LPT vs interleave: {lpt_speedup:.2}× (median paired ratio) with {threads} \
         thread(s) (gate: ≥ {lpt_min_speedup:.2}×)"
    );

    let battleship_final = grid_report
        .cell(grid.scenarios[0].name(), "battleship")
        .and_then(|c| c.aggregate.final_f1())
        .unwrap_or(f64::NAN);
    let json = format!(
        "{{\n  \"bench\": \"experiment engine grid\",\n  \"scenario\": \"{}\",\n  \
         \"pairs\": {},\n  \"strategies\": {},\n  \"seeds\": {},\n  \"runs\": {},\n  \
         \"iterations\": {},\n  \"budget\": {},\n  \"threads\": {threads},\n  \
         \"serial_one_core_median_secs\": {:.6},\n  \
         \"serial_inner_parallel_median_secs\": {:.6},\n  \"grid_median_secs\": {:.6},\n  \
         \"lpt_paired_median_secs\": {:.6},\n  \"interleave_paired_median_secs\": {:.6},\n  \
         \"speedup\": {:.3},\n  \"min_speedup_gate\": {min_speedup},\n  \
         \"lpt_speedup\": {:.3},\n  \"lpt_min_speedup_gate\": {lpt_min_speedup},\n  \
         \"battleship_final_f1_pct\": {:.3}\n}}\n",
        grid.scenarios[0].name(),
        art.dataset.len(),
        strategies.len(),
        n_seeds,
        n_runs,
        config.experiment.al.iterations,
        config.experiment.al.budget,
        serial.median_secs,
        serial_inner_parallel,
        parallel.median_secs,
        lpt_median,
        interleave_median,
        speedup,
        lpt_speedup,
        battleship_final,
    );
    let json = em_bench::with_provenance(&json);
    match std::fs::File::create(&out_path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("[engine] wrote {out_path}"),
        Err(e) => eprintln!("[engine] warning: could not write {out_path}: {e}"),
    }

    if min_speedup > 0.0 && speedup < min_speedup {
        eprintln!("[engine] FAIL: speedup {speedup:.2}× below the {min_speedup:.1}× gate");
        std::process::exit(1);
    }
    if lpt_min_speedup > 0.0 && lpt_speedup < lpt_min_speedup {
        eprintln!(
            "[engine] FAIL: LPT speedup {lpt_speedup:.2}× below the {lpt_min_speedup:.2}× gate"
        );
        std::process::exit(1);
    }
    eprintln!("[engine] PASS");
}
