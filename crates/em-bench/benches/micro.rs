//! Criterion micro-benchmarks of the performance-critical substrate
//! pieces behind Figure 6's runtime profile (§5.2: "the K-Means
//! clustering step consumes the majority of the running time"), plus the
//! ablation comparisons DESIGN.md calls out: exact vs LSH vs HNSW
//! nearest-neighbour search and greedy vs min-cost-flow constrained
//! assignment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use em_cluster::constrained::AssignmentMode;
use em_cluster::{constrained_kmeans, kmeans, ConstrainedConfig, Gmm, GmmConfig, KMeansConfig};
use em_core::Rng;
use em_graph::{build_graph, pagerank, DotSim, EdgeConfig, NodeKind, PageRankConfig};
use em_vector::{top_k, Embeddings, Hnsw, HnswConfig, LshConfig, LshIndex};

fn gaussian(n: usize, dim: usize, seed: u64) -> Embeddings {
    let mut rng = Rng::seed_from_u64(seed);
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.normal() as f32).collect())
        .collect();
    Embeddings::from_rows(&rows).unwrap()
}

fn bench_kmeans(c: &mut Criterion) {
    let data = gaussian(2000, 96, 1);
    let mut group = c.benchmark_group("kmeans");
    group.sample_size(10);
    group.bench_function("plain_k10_n2000_d96", |b| {
        b.iter(|| {
            kmeans(
                black_box(&data),
                KMeansConfig {
                    k: 10,
                    max_iters: 10,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    group.bench_function("constrained_greedy_k10_n2000_d96", |b| {
        b.iter(|| {
            constrained_kmeans(
                black_box(&data),
                ConstrainedConfig {
                    k: 10,
                    min_size: 100,
                    max_size: 300,
                    max_iters: 10,
                    seed: 1,
                    mode: AssignmentMode::Greedy,
                    ann: Default::default(),
                },
            )
            .unwrap()
        })
    });
    // The exact flow assignment is far costlier per iteration — bench on
    // a smaller instance (the greedy-vs-flow ablation DESIGN.md names).
    let small = gaussian(300, 32, 2);
    group.bench_function("constrained_flow_k5_n300_d32", |b| {
        b.iter(|| {
            constrained_kmeans(
                black_box(&small),
                ConstrainedConfig {
                    k: 5,
                    min_size: 30,
                    max_size: 90,
                    max_iters: 3,
                    seed: 1,
                    mode: AssignmentMode::Flow,
                    ann: Default::default(),
                },
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_knn_indexes(c: &mut Criterion) {
    let data = gaussian(5000, 96, 3);
    let lsh = LshIndex::build(&data, LshConfig::default()).unwrap();
    let hnsw = Hnsw::build(&data, HnswConfig::default()).unwrap();
    let mut group = c.benchmark_group("knn_indexes");
    {
        let k = 15usize;
        group.bench_with_input(BenchmarkId::new("exact", k), &k, |b, &k| {
            b.iter(|| top_k(black_box(&data), data.row(17), k, Some(17)))
        });
        group.bench_with_input(BenchmarkId::new("lsh", k), &k, |b, &k| {
            b.iter(|| {
                lsh.search(black_box(&data), data.row(17), k, Some(17))
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("hnsw", k), &k, |b, &k| {
            b.iter(|| hnsw.search(data.row(17), k, Some(17)).unwrap())
        });
    }
    group.finish();
}

/// HNSW in isolation — build, insert and k-query cost plus recall@k
/// against the exact `knn` kernel — so regressions in the index itself
/// are visible without running any pipeline bench. The ANN routing layer
/// (`AnnPolicy`) sends k-selection, constrained assignment and graph
/// edges here above the crossover, which makes these numbers
/// load-bearing for every large-pool stage.
fn bench_hnsw(c: &mut Criterion) {
    let data = {
        let mut d = gaussian(4000, 96, 7);
        d.normalize_rows();
        d
    };
    let config = HnswConfig::default();
    let mut group = c.benchmark_group("hnsw");
    group.bench_function("build_n4000_d96", |b| {
        b.iter(|| Hnsw::build(black_box(&data), config).unwrap())
    });
    group.bench_function("insert_d96", |b| {
        let mut index = Hnsw::build(&data, config).unwrap();
        let row = data.row(42).to_vec();
        b.iter(|| index.insert(black_box(&row)).unwrap())
    });
    let index = Hnsw::build(&data, config).unwrap();
    for k in [10usize, 50] {
        group.bench_with_input(BenchmarkId::new("query", k), &k, |b, &k| {
            b.iter(|| index.search(data.row(13), k, Some(13)).unwrap())
        });
        // Recall@k over a spread probe set, vs the exact kernel.
        let probes: Vec<usize> = (0..64).map(|p| p * data.len() / 64).collect();
        let mut hits = 0usize;
        let mut total = 0usize;
        for &qi in &probes {
            let exact: std::collections::HashSet<usize> = top_k(&data, data.row(qi), k, Some(qi))
                .into_iter()
                .map(|nb| nb.index)
                .collect();
            let approx = index.search(data.row(qi), k, Some(qi)).unwrap();
            hits += approx.iter().filter(|nb| exact.contains(&nb.index)).count();
            total += exact.len();
        }
        let recall = hits as f64 / total.max(1) as f64;
        eprintln!(
            "[micro] hnsw recall@{k}: {recall:.4} over {} probes",
            probes.len()
        );
        assert!(
            recall >= 0.80,
            "hnsw recall@{k} collapsed to {recall:.4} (floor 0.80)"
        );
    }
    group.finish();
}

fn bench_graph(c: &mut Criterion) {
    let data = {
        let mut d = gaussian(1500, 96, 4);
        d.normalize_rows();
        d
    };
    let kinds = vec![NodeKind::PredictedMatch; 1500];
    let confs = vec![0.9f32; 1500];
    // Ten equal clusters.
    let clusters: Vec<Vec<usize>> = (0..10)
        .map(|c| (c * 150..(c + 1) * 150).collect())
        .collect();
    let mut group = c.benchmark_group("graph");
    group.sample_size(10);
    group.bench_function("build_q15_n1500", |b| {
        b.iter(|| {
            build_graph(
                &DotSim::new(black_box(&data)),
                &kinds,
                &confs,
                &clusters,
                EdgeConfig::default(),
            )
            .unwrap()
        })
    });
    let graph = build_graph(
        &DotSim::new(&data),
        &kinds,
        &confs,
        &clusters,
        EdgeConfig::default(),
    )
    .unwrap();
    let comp: Vec<usize> = clusters[0].clone();
    group.bench_function("pagerank_one_component", |b| {
        b.iter(|| pagerank(black_box(&graph), &comp, PageRankConfig::default()).unwrap())
    });
    group.finish();
}

fn bench_gmm(c: &mut Criterion) {
    let data = gaussian(3000, 22, 5);
    let mut group = c.benchmark_group("gmm");
    group.sample_size(10);
    group.bench_function("em_2comp_n3000_d22", |b| {
        b.iter(|| {
            Gmm::fit(
                black_box(&data),
                GmmConfig {
                    max_iters: 25,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_matcher_step(c: &mut Criterion) {
    use em_matcher::{train_matcher, MatcherConfig};
    let data = gaussian(512, 848, 6);
    let mut rng = Rng::seed_from_u64(7);
    let labels: Vec<em_core::Label> = (0..512)
        .map(|_| em_core::Label::from_bool(rng.bool(0.2)))
        .collect();
    let idx: Vec<usize> = (0..512).collect();
    let mut group = c.benchmark_group("matcher");
    group.sample_size(10);
    group.bench_function("train_1epoch_n512_d848_h96", |b| {
        b.iter(|| {
            train_matcher(
                black_box(&data),
                &idx,
                &labels,
                &[],
                &[],
                &MatcherConfig {
                    epochs: 1,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_kernel_tiers(c: &mut Criterion) {
    use em_vector::{gemm, kernel, simd_tier, with_simd_tier, SimdTier};
    let query = gaussian(1, 768, 8);
    let rows = gaussian(8, 768, 9);
    let a = gaussian(64, 96, 10);
    let bm = gaussian(16, 96, 11);
    let detected = simd_tier();
    let mut group = c.benchmark_group("kernel_tiers");
    for tier in [SimdTier::Portable, SimdTier::Avx2, SimdTier::Avx512] {
        // Don't time a silently clamped tier under the wrong label.
        if detected < tier {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::new("dot_d768_r8", tier.name()),
            &tier,
            |b, &tier| {
                b.iter(|| {
                    with_simd_tier(tier, || {
                        let mut acc = 0.0f32;
                        for i in 0..8 {
                            acc += kernel::dot(black_box(query.row(0)), rows.row(i));
                        }
                        acc
                    })
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("gemm_64x16x96", tier.name()),
            &tier,
            |b, &tier| {
                b.iter(|| {
                    with_simd_tier(tier, || {
                        let mut out = vec![0.0f32; 64 * 16];
                        gemm(black_box(a.flat()), 64, bm.flat(), 16, 96, &mut out);
                        out
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kmeans,
    bench_knn_indexes,
    bench_hnsw,
    bench_graph,
    bench_gmm,
    bench_matcher_step,
    bench_kernel_tiers
);
criterion_main!(benches);
