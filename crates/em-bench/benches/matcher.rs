//! Matcher-engine benchmark: the batched GEMM train + predict path
//! versus the seed's scalar implementation, measured in the same run.
//!
//! This is the perf gate for the matcher half of each active-learning
//! iteration (§3.1/§4.2): on the default 5k-row, 128-dim synthetic task
//! the batched engine ([`em_matcher::train_matcher`] +
//! [`TrainedMatcher::predict`]) must beat the seed-verbatim scalar
//! baseline ([`em_matcher::train_matcher_reference`] +
//! [`em_matcher::predict_reference`]) by ≥ 3× **on one core** (the
//! batched timing runs under `rayon::serial_scope`, so the gate measures
//! the kernel engine, not thread count). The parallel timing is reported
//! alongside. Results are written to `BENCH_matcher.json` for CI
//! artifacts, together with an end-to-end `run_active_learning`
//! wall-clock (2 iterations, amazon_google-scaled profile) so future
//! PRs can track whole-iteration latency, not just subsystem speedups.
//!
//! Knobs (environment):
//! * `EM_BENCH_MATCHER_N` / `EM_BENCH_MATCHER_DIM` — predict-set size /
//!   feature dimension (default 5000 × 128);
//! * `EM_BENCH_MATCHER_OUT` — output JSON path
//!   (default `BENCH_matcher.json`);
//! * `EM_BENCH_MATCHER_MIN_SPEEDUP` — exit non-zero below this ratio
//!   (default 3.0; set 0 to only report);
//! * `RAYON_NUM_THREADS` — worker threads for the parallel predict
//!   timing (the gate itself is single-threaded by construction).

use std::io::Write as _;
use std::time::Instant;

use battleship::{run_active_learning, BattleshipStrategy, ExperimentConfig};
use em_core::{Label, PerfectOracle, Rng};
use em_matcher::{
    predict_reference, train_matcher, train_matcher_reference, FeatureConfig, Featurizer,
    MatcherConfig,
};
use em_synth::{generate, DatasetProfile};
use em_vector::Embeddings;

use em_bench::env_or;

/// Two-blob synthetic matching task: rows of class 1 cluster around one
/// center, class 0 around another, with enough overlap that training
/// has real work to do.
fn synthetic_task(n: usize, dim: usize, seed: u64) -> (Embeddings, Vec<Label>) {
    let mut rng = Rng::seed_from_u64(seed);
    let center_pos: Vec<f32> = (0..dim).map(|_| rng.normal() as f32 * 0.8).collect();
    let center_neg: Vec<f32> = (0..dim).map(|_| rng.normal() as f32 * 0.8).collect();
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let positive = i % 3 == 0;
        let center = if positive { &center_pos } else { &center_neg };
        rows.push(
            center
                .iter()
                .map(|&c| c + rng.normal() as f32 * 0.9)
                .collect::<Vec<f32>>(),
        );
        labels.push(Label::from_bool(positive));
    }
    (
        Embeddings::from_rows(&rows).expect("non-empty task"),
        labels,
    )
}

fn main() {
    let n: usize = env_or("EM_BENCH_MATCHER_N", 5000);
    let dim: usize = env_or("EM_BENCH_MATCHER_DIM", 128);
    let min_speedup: f64 = env_or("EM_BENCH_MATCHER_MIN_SPEEDUP", 3.0);
    let out_path: String = env_or("EM_BENCH_MATCHER_OUT", "BENCH_matcher.json".to_string());

    let train_n = (n / 5).max(64);
    let valid_n = (n / 10).max(32);
    eprintln!(
        "[matcher] synthetic task: n = {n}, dim = {dim}, train = {train_n}, valid = {valid_n}"
    );
    let (features, labels) = synthetic_task(n, dim, 0xBEEF);
    let train_idx: Vec<usize> = (0..train_n).collect();
    let train_labels: Vec<Label> = train_idx.iter().map(|&i| labels[i]).collect();
    let valid_idx: Vec<usize> = (train_n..train_n + valid_n).collect();
    let valid_labels: Vec<Label> = valid_idx.iter().map(|&i| labels[i]).collect();
    let all_idx: Vec<usize> = (0..n).collect();
    let config = MatcherConfig {
        hidden: vec![96],
        epochs: 10,
        seed: 0xD1770,
        ..Default::default()
    };

    // Golden check before timing: the batched + parallel predict must be
    // bit-identical to the per-row scalar path.
    eprintln!("[matcher] golden check: batched predict ≡ per-row …");
    let probe = train_matcher(
        &features,
        &train_idx,
        &train_labels,
        &valid_idx,
        &valid_labels,
        &config,
    )
    .expect("probe training");
    let batched = probe.predict(&features, &all_idx).expect("batched predict");
    for (bi, &i) in all_idx.iter().enumerate().step_by(97) {
        let (pred, repr) = probe.predict_one(features.row(i)).expect("scalar predict");
        assert_eq!(
            batched.predictions[bi].prob.to_bits(),
            pred.prob.to_bits(),
            "row {i} prob diverged"
        );
        assert_eq!(
            batched.representations.row(bi),
            repr.as_slice(),
            "row {i} representation diverged"
        );
    }
    eprintln!(
        "[matcher] golden check passed (tier: {}, best epoch {}, valid F1 {:.3})",
        em_vector::simd_tier().name(),
        probe.best_epoch,
        probe.best_valid_f1
    );

    // Measure the seed-verbatim scalar baseline (inherently one core).
    eprintln!("[matcher] timing scalar baseline (seed implementation) …");
    let scalar = criterion::measure(3, || {
        let m = train_matcher_reference(
            &features,
            &train_idx,
            &train_labels,
            &valid_idx,
            &valid_labels,
            &config,
        )
        .expect("reference training");
        predict_reference(&m, &features, &all_idx).expect("reference predict")
    });
    eprintln!("[matcher] scalar baseline: {:.3} s", scalar.median_secs);

    // Measure the batched engine pinned to one core — the gate compares
    // kernel engines, not thread counts.
    eprintln!("[matcher] timing batched engine (one core) …");
    let batched_serial = rayon::serial_scope(|| {
        criterion::measure(3, || {
            let m = train_matcher(
                &features,
                &train_idx,
                &train_labels,
                &valid_idx,
                &valid_labels,
                &config,
            )
            .expect("batched training");
            m.predict(&features, &all_idx).expect("batched predict")
        })
    });
    eprintln!(
        "[matcher] batched engine (1 core): {:.3} s",
        batched_serial.median_secs
    );

    eprintln!("[matcher] timing batched engine (all threads) …");
    let batched_parallel = criterion::measure(5, || {
        let m = train_matcher(
            &features,
            &train_idx,
            &train_labels,
            &valid_idx,
            &valid_labels,
            &config,
        )
        .expect("batched training");
        m.predict(&features, &all_idx).expect("batched predict")
    });
    eprintln!(
        "[matcher] batched engine (parallel): {:.3} s",
        batched_parallel.median_secs
    );

    let speedup = scalar.median_secs / batched_serial.median_secs.max(1e-12);
    let speedup_parallel = scalar.median_secs / batched_parallel.median_secs.max(1e-12);
    let threads = rayon::current_num_threads();
    eprintln!(
        "[matcher] speedup: {speedup:.2}× on one core, {speedup_parallel:.2}× with {threads} \
         threads (gate: ≥ {min_speedup:.1}× one-core)"
    );

    // End-to-end iteration latency: a full 2-iteration battleship run on
    // an amazon_google-scaled task, so the bench history tracks the
    // whole loop (train + predict + select), not just this subsystem.
    eprintln!("[matcher] end-to-end: run_active_learning (amazon_google, 2 iterations) …");
    let profile = DatasetProfile::amazon_google().scaled(0.06);
    let dataset = generate(&profile, &mut Rng::seed_from_u64(0xDA7A)).expect("dataset");
    let featurizer = Featurizer::new(&dataset, FeatureConfig::default()).expect("featurizer");
    let e2e_features = featurizer.featurize_all(&dataset).expect("features");
    let mut e2e_config = ExperimentConfig::default();
    e2e_config.al.budget = 40;
    e2e_config.al.seed_size = 40;
    e2e_config.al.weak_budget = 40;
    e2e_config.al.iterations = 2;
    e2e_config.matcher.epochs = 12;
    e2e_config.battleship.kselect_sample = 256;
    let oracle = PerfectOracle::new();
    let t_e2e = Instant::now();
    let report = run_active_learning(
        &dataset,
        &e2e_features,
        &mut BattleshipStrategy::new(),
        &oracle,
        &e2e_config,
        1,
    )
    .expect("end-to-end run");
    let e2e_secs = t_e2e.elapsed().as_secs_f64();
    let final_f1 = report
        .iterations
        .last()
        .map(|it| it.test_f1_pct)
        .unwrap_or(f64::NAN);
    let e2e_train_secs: f64 = report.iterations.iter().map(|it| it.train_secs).sum();
    let e2e_select_secs: f64 = report.iterations.iter().map(|it| it.select_secs).sum();
    eprintln!(
        "[matcher] end-to-end: {e2e_secs:.3} s ({} pairs, train {e2e_train_secs:.3} s, select \
         {e2e_select_secs:.3} s, final F1 {final_f1:.1}%)",
        dataset.len()
    );

    let json = format!(
        "{{\n  \"bench\": \"matcher train+predict\",\n  \"n\": {n},\n  \"dim\": {dim},\n  \
         \"train_n\": {train_n},\n  \"valid_n\": {valid_n},\n  \"epochs\": {},\n  \
         \"threads\": {threads},\n  \"simd_tier\": \"{}\",\n  \
         \"scalar_median_secs\": {:.6},\n  \"batched_serial_median_secs\": {:.6},\n  \
         \"batched_parallel_median_secs\": {:.6},\n  \"speedup_one_core\": {:.3},\n  \
         \"speedup_parallel\": {:.3},\n  \"min_speedup_gate\": {min_speedup},\n  \
         \"e2e\": {{\n    \"dataset\": \"{}\",\n    \"scale\": 0.06,\n    \"pairs\": {},\n    \
         \"iterations\": {},\n    \"budget\": {},\n    \"wall_secs\": {:.6},\n    \
         \"train_secs\": {:.6},\n    \"select_secs\": {:.6},\n    \"final_f1_pct\": {:.3}\n  }}\n}}\n",
        config.epochs,
        em_vector::simd_tier().name(),
        scalar.median_secs,
        batched_serial.median_secs,
        batched_parallel.median_secs,
        speedup,
        speedup_parallel,
        dataset.name,
        dataset.len(),
        e2e_config.al.iterations,
        e2e_config.al.budget,
        e2e_secs,
        e2e_train_secs,
        e2e_select_secs,
        final_f1,
    );
    let json = em_bench::with_provenance(&json);
    match std::fs::File::create(&out_path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("[matcher] wrote {out_path}"),
        Err(e) => eprintln!("[matcher] warning: could not write {out_path}: {e}"),
    }

    if min_speedup > 0.0 && speedup < min_speedup {
        eprintln!("[matcher] FAIL: speedup {speedup:.2}× below the {min_speedup:.1}× gate");
        std::process::exit(1);
    }
    eprintln!("[matcher] PASS");
}
