//! ANN routing benchmark: the `AnnPolicy` crossover layer's two
//! quadratic-stage rewrites, measured exact-vs-ANN at blocked-pool
//! scale, plus an end-to-end quality check and the below-threshold
//! bit-identity golden.
//!
//! Three stages:
//!
//! 1. **k-selection silhouette fallback** — the sweep's per-candidate
//!    exact score is `O(sample · n · d)`; the HNSW-backed estimator
//!    (one clustering-independent cache per sweep, centroid-moment
//!    distances) drops it to `O(n · d)` amortised. Both routes score
//!    the same untimed K-Means sweep, so the timing isolates the
//!    silhouette stage and the argmax `k` values are comparable.
//! 2. **constrained greedy assignment** — one assignment pass over
//!    fixed centroids via `greedy_assign_pass`: the exact route
//!    materialises the `n × k` distance matrix and sorts all `k`
//!    preferences per point; the ANN route shortlists `top_m`
//!    candidate clusters through HNSW over the centroids. The full
//!    `constrained_kmeans` is also run on both routes for the quality
//!    gates (capacity bounds exact, SSE ratio bounded). This is the
//!    regime where `k` scales with `n` (absolute cluster-size caps on
//!    10⁵⁺-record pools), not the paper's small fractional-`k` setting.
//! 3. **end-to-end** — a small battleship active-learning run with the
//!    default policy (exact below crossover) versus
//!    `ann_cluster_threshold = 2` (every stage routed through ANN);
//!    final F1 must agree within tolerance.
//!
//! A below-threshold golden re-checks in-bench that the default policy
//! is bit-identical to `AnnPolicy::never()` on a small pool, for both
//! `select_k` and `constrained_kmeans`.
//!
//! Gates (all from the issue's acceptance bar; every number is written
//! to `BENCH_ann.json` *before* gating so failures still leave an
//! artifact): silhouette-stage and assignment-stage speedups ≥ 3×,
//! `|k_ann − k_exact| ≤ 1`, ANN cluster sizes within `[min, max]`
//! exactly, SSE ratio ≤ 1.25, `|ΔF1| ≤ 5` points, golden pass.
//!
//! Knobs (environment):
//! * `EM_BENCH_ANN_RECORDS` — pool size for stages 1–2 (default 100000);
//! * `EM_BENCH_ANN_DIM` — embedding dim (default 32);
//! * `EM_BENCH_ANN_K` — constrained cluster count (default 4096; stage 2
//!   generates its own pool with this many natural clusters);
//! * `EM_BENCH_ANN_SCALE` — end-to-end dataset scale (default 0.04);
//! * `EM_BENCH_ANN_MIN_SPEEDUP` — stage gate (default 3.0; 0 = report only);
//! * `EM_BENCH_ANN_F1_TOL` — end-to-end F1 tolerance, points (default 5.0);
//! * `EM_BENCH_ANN_OUT` — output JSON path (default `BENCH_ann.json`).

use std::io::Write as _;
use std::time::Instant;

use battleship::{run_active_learning, ArtifactCache, GridConfig, Scenario, StrategySpec};
use em_bench::env_or;
use em_cluster::constrained::{greedy_assign_pass, AssignmentMode};
use em_cluster::silhouette::{build_silhouette_cache, silhouette_score, silhouette_score_ann};
use em_cluster::{
    constrained_kmeans, kmeans, select_k, ConstrainedConfig, KMeansConfig, KSelectConfig,
};
use em_core::{PerfectOracle, Rng};
use em_synth::DatasetProfile;
use em_vector::{AnnPolicy, Embeddings};

/// Time a closure once, returning its value and the elapsed seconds.
/// The heavyweight exact stages run for tens of seconds at the default
/// scale, so the usual warmup-then-sample loop would double the bench;
/// all inputs are pre-touched by the untimed sweep/init phases.
fn time_once<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

/// Gaussian blobs with random-direction centers — the geometry real
/// embedding pools have (and the one cosine shortlisting is honest on),
/// unlike axis-grid toy data.
fn blobs(n: usize, dim: usize, true_k: usize, spread: f32, seed: u64) -> Embeddings {
    let mut rng = Rng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> = (0..true_k)
        .map(|_| (0..dim).map(|_| rng.normal() as f32 * 4.0).collect())
        .collect();
    let mut flat = Vec::with_capacity(n * dim);
    for i in 0..n {
        let c = &centers[i % true_k];
        for &cd in c {
            flat.push(cd + rng.normal() as f32 * spread);
        }
    }
    Embeddings::from_flat(dim, flat).unwrap()
}

/// Serial argmax with strict `>` — ties to the smaller k, the same rule
/// `select_k`'s silhouette fallback applies.
fn argmax_k(k_min: usize, scores: &[f64]) -> usize {
    let mut best_k = k_min;
    let mut best = f64::NEG_INFINITY;
    for (i, &s) in scores.iter().enumerate() {
        if s > best {
            best = s;
            best_k = k_min + i;
        }
    }
    best_k
}

fn main() {
    let records: usize = env_or("EM_BENCH_ANN_RECORDS", 100_000);
    let dim: usize = env_or("EM_BENCH_ANN_DIM", 32);
    let k_constrained: usize = env_or("EM_BENCH_ANN_K", 4096);
    let scale: f64 = env_or("EM_BENCH_ANN_SCALE", 0.04);
    let min_speedup: f64 = env_or("EM_BENCH_ANN_MIN_SPEEDUP", 3.0);
    let f1_tol: f64 = env_or("EM_BENCH_ANN_F1_TOL", 5.0);
    let out_path: String = env_or("EM_BENCH_ANN_OUT", "BENCH_ann.json".to_string());
    let threads = rayon::current_num_threads();

    let policy_ann = AnnPolicy::always();
    let seed = 0xA55E55u64;
    eprintln!(
        "[ann] pool: {records} records × {dim} dims, {threads} thread(s); \
         policy: top_m {}, hnsw m {} ef {}",
        policy_ann.top_m, policy_ann.hnsw.m, policy_ann.hnsw.ef_search
    );
    let data = blobs(records, dim, 8, 0.8, seed);

    // ---- Stage 1: k-selection silhouette fallback -----------------------
    // Untimed sweep shared by both routes (same derived seeds as
    // `select_k`), then the silhouette stage timed in isolation.
    let (k_min, k_max, sil_sample) = (2usize, 12usize, 384usize);
    eprintln!("[ann] k-sweep: K-Means for k in [{k_min}, {k_max}] (untimed, shared) …");
    let clusterings: Vec<_> = (k_min..=k_max)
        .map(|k| {
            kmeans(
                &data,
                KMeansConfig {
                    k,
                    max_iters: 3,
                    tol: 1e-4,
                    seed: seed ^ (k as u64) << 32,
                },
            )
            .expect("sweep kmeans")
        })
        .collect();

    eprintln!("[ann] timing exact silhouette stage …");
    let (exact_scores, sil_exact_secs) = time_once(|| {
        clusterings
            .iter()
            .enumerate()
            .map(|(i, run)| {
                silhouette_score(&data, &run.assignment, k_min + i, sil_sample, seed)
                    .expect("exact silhouette")
            })
            .collect::<Vec<f64>>()
    });
    eprintln!("[ann] exact silhouette stage: {sil_exact_secs:.3} s");

    eprintln!("[ann] timing ANN silhouette stage (cache build + scores) …");
    let (ann_scores, sil_ann_secs) = time_once(|| {
        let cache =
            build_silhouette_cache(&data, sil_sample, seed, &policy_ann).expect("silhouette cache");
        clusterings
            .iter()
            .enumerate()
            .map(|(i, run)| {
                silhouette_score_ann(&data, &run.assignment, k_min + i, &run.centroids, &cache)
                    .expect("ann silhouette")
            })
            .collect::<Vec<f64>>()
    });
    eprintln!("[ann] ann silhouette stage: {sil_ann_secs:.3} s");

    let k_exact = argmax_k(k_min, &exact_scores);
    let k_ann = argmax_k(k_min, &ann_scores);
    let sil_speedup = sil_exact_secs / sil_ann_secs.max(1e-12);
    let k_delta = k_ann.abs_diff(k_exact);
    eprintln!(
        "[ann] silhouette: {sil_speedup:.2}× speedup, k exact {k_exact} vs ann {k_ann} \
         (gate: |Δk| ≤ 1)"
    );

    // ---- Stage 2: constrained greedy assignment -------------------------
    // Absolute size caps make k scale with n: 100k records at ≤ tens per
    // cluster (the graph tier's preferred occupancy) force thousands of
    // clusters — the regime where the exact route's n × k distance matrix
    // and O(k) per-point scans dominate. The stage gets its own pool
    // whose natural cluster count matches k: with k centroids tiling a
    // handful of blobs every candidate is near-equidistant, so the
    // shortlist is meaningless noise and the serial repair pass swamps
    // both routes; with separated clusters each record has a defined
    // nearest centroid and the measurement isolates the routed stage
    // (ANN agreement with exact is ≥ 0.99 here, so the SSE gate below
    // is tight rather than vacuous).
    // Bounds derive from the mean occupancy so any EM_BENCH_ANN_K stays
    // feasible (k · min ≤ n ≤ k · max) with 4× slack each way.
    let assign_data = blobs(records, dim, k_constrained, 1.0, seed ^ 0x51A6E2);
    let avg_occupancy = (records / k_constrained).max(1);
    let (min_size, max_size) = ((avg_occupancy / 4).max(1), avg_occupancy * 4);
    let base_cfg = ConstrainedConfig {
        k: k_constrained,
        min_size,
        max_size,
        max_iters: 2,
        seed: 0xC0_57A9,
        mode: AssignmentMode::Greedy,
        ann: AnnPolicy::never(),
    };
    eprintln!(
        "[ann] constrained: k={k_constrained}, sizes [{min_size}, {max_size}]; \
         warm-start K-Means (untimed, shared) …"
    );
    let warm = kmeans(
        &assign_data,
        KMeansConfig {
            k: k_constrained,
            max_iters: 5,
            tol: 1e-4,
            seed: base_cfg.seed,
        },
    )
    .expect("warm-start kmeans");

    eprintln!("[ann] timing exact assignment pass …");
    let (exact_pass, assign_exact_secs) = time_once(|| {
        greedy_assign_pass(&assign_data, &warm.centroids, &base_cfg).expect("exact pass")
    });
    eprintln!("[ann] exact assignment pass: {assign_exact_secs:.3} s");

    let ann_cfg = ConstrainedConfig {
        ann: policy_ann,
        ..base_cfg
    };
    eprintln!("[ann] timing ANN assignment pass …");
    let (ann_pass, assign_ann_secs) = time_once(|| {
        greedy_assign_pass(&assign_data, &warm.centroids, &ann_cfg).expect("ann pass")
    });
    eprintln!("[ann] ann assignment pass: {assign_ann_secs:.3} s");
    let assign_speedup = assign_exact_secs / assign_ann_secs.max(1e-12);
    drop(exact_pass);

    // Capacity bounds on the ANN pass — exact, not approximate.
    let mut sizes = vec![0usize; k_constrained];
    for &c in &ann_pass {
        sizes[c] += 1;
    }
    let bounds_ok = sizes.iter().all(|&s| (min_size..=max_size).contains(&s));
    eprintln!(
        "[ann] assignment: {assign_speedup:.2}× speedup, ann sizes in [{}, {}] (bounds_ok {bounds_ok})",
        sizes.iter().min().unwrap(),
        sizes.iter().max().unwrap()
    );

    // Full Lloyd runs on both routes for the SSE quality gate.
    eprintln!("[ann] full constrained_kmeans, exact route …");
    let (full_exact, full_exact_secs) =
        time_once(|| constrained_kmeans(&assign_data, base_cfg).expect("exact constrained"));
    eprintln!("[ann] full constrained_kmeans, ANN route …");
    let (full_ann, full_ann_secs) =
        time_once(|| constrained_kmeans(&assign_data, ann_cfg).expect("ann constrained"));
    let full_bounds_ok = full_ann
        .sizes
        .iter()
        .all(|&s| (min_size..=max_size).contains(&s));
    let sse_ratio = full_ann.sse as f64 / (full_exact.sse as f64).max(1e-12);
    eprintln!(
        "[ann] full runs: exact {full_exact_secs:.3} s (sse {:.1}) vs ann {full_ann_secs:.3} s \
         (sse {:.1}, ratio {sse_ratio:.4}, bounds_ok {full_bounds_ok})",
        full_exact.sse, full_ann.sse
    );

    // ---- Stage 3: end-to-end F1, default policy vs all-ANN --------------
    let mut config = GridConfig::default();
    config.experiment.al.budget = 40;
    config.experiment.al.seed_size = 40;
    config.experiment.al.weak_budget = 40;
    config.experiment.al.iterations = 2;
    config.experiment.matcher.epochs = 10;
    config.experiment.battleship.kselect_sample = 256;
    let scenario = Scenario::synthetic_scaled(DatasetProfile::amazon_google(), scale, 0xDA7A);
    let cache = ArtifactCache::new();
    let art = cache.get_or_materialize(&scenario).expect("materialize");
    eprintln!(
        "[ann] end-to-end: {} ({} pairs), default threshold {} vs forced 2 …",
        scenario.name(),
        art.dataset.len(),
        config.experiment.battleship.ann_cluster_threshold
    );
    let run_once = |cfg: &GridConfig| {
        let oracle = PerfectOracle::new();
        run_active_learning(
            &art.dataset,
            &art.features,
            StrategySpec::Battleship.build().as_mut(),
            &oracle,
            &cfg.experiment,
            0xF1,
        )
        .expect("end-to-end run")
    };
    let (f1_exact, e2e_exact_secs) = {
        let (r, s) = time_once(|| run_once(&config));
        (r.final_f1().unwrap_or(f64::NAN), s)
    };
    let mut config_ann = config.clone();
    config_ann.experiment.battleship.ann_cluster_threshold = 2;
    let (f1_ann, e2e_ann_secs) = {
        let (r, s) = time_once(|| run_once(&config_ann));
        (r.final_f1().unwrap_or(f64::NAN), s)
    };
    let f1_delta = (f1_ann - f1_exact).abs();
    eprintln!(
        "[ann] end-to-end F1: exact {f1_exact:.2} ({e2e_exact_secs:.3} s) vs \
         ann {f1_ann:.2} ({e2e_ann_secs:.3} s), |Δ| {f1_delta:.2} (gate ≤ {f1_tol})"
    );

    // ---- Below-threshold golden: default policy ≡ never() ---------------
    eprintln!("[ann] below-threshold golden (n=2000) …");
    let small = blobs(2000, 16, 6, 0.8, 0x600D);
    let golden_ok = {
        let sel = |ann: AnnPolicy| {
            select_k(
                &small,
                KSelectConfig {
                    sensitivity: 1e9, // force the silhouette fallback
                    kmeans_iters: 3,
                    silhouette_sample: 256,
                    ann,
                    ..Default::default()
                },
            )
            .expect("golden select_k")
        };
        let (sd, sn) = (sel(AnnPolicy::default()), sel(AnnPolicy::never()));
        let kselect_ok = sd.k == sn.k
            && sd.method == sn.method
            && sd
                .sse_curve
                .iter()
                .zip(&sn.sse_curve)
                .all(|(a, b)| a.1.to_bits() == b.1.to_bits());
        let con = |ann: AnnPolicy| {
            constrained_kmeans(
                &small,
                ConstrainedConfig {
                    k: 10,
                    min_size: 100,
                    max_size: 400,
                    max_iters: 4,
                    seed: 0x5EED,
                    mode: AssignmentMode::Greedy,
                    ann,
                },
            )
            .expect("golden constrained")
        };
        let (cd, cn) = (con(AnnPolicy::default()), con(AnnPolicy::never()));
        let constrained_ok = cd.assignment == cn.assignment && cd.sse.to_bits() == cn.sse.to_bits();
        eprintln!("[ann] golden: kselect {kselect_ok}, constrained {constrained_ok}");
        kselect_ok && constrained_ok
    };

    // ---- Artifact, then gates -------------------------------------------
    let json = format!(
        "{{\n  \"bench\": \"ann routing\",\n  \"records\": {records},\n  \"dim\": {dim},\n  \
         \"threads\": {threads},\n  \"policy\": {{\n    \"threshold_default\": {},\n    \
         \"top_m\": {},\n    \"hnsw_m\": {},\n    \"hnsw_ef_search\": {}\n  }},\n  \
         \"kselect_silhouette\": {{\n    \"k_range\": [{k_min}, {k_max}],\n    \
         \"sample\": {sil_sample},\n    \"exact_secs\": {sil_exact_secs:.6},\n    \
         \"ann_secs\": {sil_ann_secs:.6},\n    \"speedup\": {sil_speedup:.3},\n    \
         \"k_exact\": {k_exact},\n    \"k_ann\": {k_ann}\n  }},\n  \
         \"constrained_assignment\": {{\n    \"k\": {k_constrained},\n    \
         \"min_size\": {min_size},\n    \"max_size\": {max_size},\n    \
         \"pass_exact_secs\": {assign_exact_secs:.6},\n    \
         \"pass_ann_secs\": {assign_ann_secs:.6},\n    \"speedup\": {assign_speedup:.3},\n    \
         \"bounds_ok\": {},\n    \"full_exact_secs\": {full_exact_secs:.6},\n    \
         \"full_ann_secs\": {full_ann_secs:.6},\n    \"sse_exact\": {:.3},\n    \
         \"sse_ann\": {:.3},\n    \"sse_ratio\": {sse_ratio:.5}\n  }},\n  \
         \"end_to_end\": {{\n    \"scenario\": \"{}\",\n    \"pairs\": {},\n    \
         \"f1_exact_pct\": {f1_exact:.3},\n    \"f1_ann_pct\": {f1_ann:.3},\n    \
         \"f1_delta_pct\": {f1_delta:.3},\n    \"exact_secs\": {e2e_exact_secs:.6},\n    \
         \"ann_secs\": {e2e_ann_secs:.6}\n  }},\n  \
         \"below_threshold_bit_identical\": {golden_ok},\n  \"gates\": {{\n    \
         \"min_stage_speedup\": {min_speedup},\n    \"max_k_delta\": 1,\n    \
         \"max_sse_ratio\": 1.25,\n    \"f1_tol_pct\": {f1_tol}\n  }}\n}}\n",
        AnnPolicy::default().threshold,
        policy_ann.top_m,
        policy_ann.hnsw.m,
        policy_ann.hnsw.ef_search,
        bounds_ok && full_bounds_ok,
        full_exact.sse,
        full_ann.sse,
        scenario.name(),
        art.dataset.len(),
    );
    let json = em_bench::with_provenance(&json);
    match std::fs::File::create(&out_path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("[ann] wrote {out_path}"),
        Err(e) => eprintln!("[ann] warning: could not write {out_path}: {e}"),
    }

    let mut failures = Vec::new();
    if min_speedup > 0.0 && sil_speedup < min_speedup {
        failures.push(format!(
            "silhouette stage speedup {sil_speedup:.2}× below {min_speedup:.1}×"
        ));
    }
    if min_speedup > 0.0 && assign_speedup < min_speedup {
        failures.push(format!(
            "assignment stage speedup {assign_speedup:.2}× below {min_speedup:.1}×"
        ));
    }
    if k_delta > 1 {
        failures.push(format!("|Δk| = {k_delta} (exact {k_exact}, ann {k_ann})"));
    }
    if !(bounds_ok && full_bounds_ok) {
        failures.push("ANN route violated capacity bounds".to_string());
    }
    if sse_ratio > 1.25 {
        failures.push(format!("SSE ratio {sse_ratio:.4} above 1.25"));
    }
    // A NaN Δ (either run produced no F1) must fail the gate too.
    if f1_delta > f1_tol || f1_delta.is_nan() {
        failures.push(format!("|ΔF1| = {f1_delta:.2} above {f1_tol}"));
    }
    if !golden_ok {
        failures.push("below-threshold routing not bit-identical".to_string());
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("[ann] FAIL: {f}");
        }
        std::process::exit(1);
    }
    eprintln!("[ann] PASS");
}
