//! `cargo bench` entry point that regenerates the paper's headline tables
//! and figures at smoke scale (a custom harness, not criterion — these
//! are experiment reproductions, not timing benchmarks; use the
//! `em-bench` binaries directly for larger scales).

use std::process::Command;

fn main() {
    println!("regenerating headline tables and figures at smoke scale…\n");
    // target/release/deps/tables-<hash> → target/release
    let exe_dir = std::env::current_exe().ok().and_then(|p| {
        p.parent()
            .and_then(std::path::Path::parent)
            .map(std::path::Path::to_path_buf)
    });
    let bins = [
        "table3_stats",
        "fig5_f1_curves",
        "fig6_runtime",
        "table4_f1",
        "table5_auc",
    ];
    for bin in bins {
        println!("\n================ {bin} ================\n");
        let status = match &exe_dir {
            Some(dir) if dir.join(bin).exists() => Command::new(dir.join(bin))
                .args(["--scale", "smoke", "--out", "bench-results-smoke"])
                .status(),
            _ => Command::new("cargo")
                .args([
                    "run",
                    "--release",
                    "-p",
                    "em-bench",
                    "--bin",
                    bin,
                    "--",
                    "--scale",
                    "smoke",
                    "--out",
                    "bench-results-smoke",
                ])
                .status(),
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("[tables] {bin} exited with {s}"),
            Err(e) => eprintln!("[tables] failed to launch {bin}: {e}"),
        }
    }
}
