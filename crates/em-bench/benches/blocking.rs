//! Blocking-tier benchmark: sub-quadratic candidate generation for
//! 10⁵-record pools, gated on recall, reduction ratio and a
//! thread-aware speedup bound.
//!
//! Before timing, golden checks pin the tier's correctness contract:
//!
//! 1. a `BlockingSpec::Exhaustive` scenario is **bit-identical** to the
//!    legacy (pre-blocking) pair generation — same pairs, same split,
//!    same ground truth;
//! 2. at an anchor size where the exhaustive cross product is still
//!    co-computable, LSH and token candidates are sorted,
//!    duplicate-free subsets of the exhaustive pair set, and LSH output
//!    is identical under the forced-serial scheduler;
//! 3. blocking recall vs the pool's ground-truth matches clears the
//!    gate (default ≥ 0.95) for both LSH and token tiers.
//!
//! The headline measurement then runs a 10⁵-record pool through the LSH
//! tier via `Scenario::candidate_pool` — the exhaustive matrix (beyond
//! the 2²⁴ materialization cap) never exists — and records throughput
//! (candidate pairs/sec), recall and reduction ratio. A smaller pool is
//! warmed up untimed, then timed both parallel and under
//! `rayon::serial_scope` for the thread-aware speedup gate (≥ 2.5×
//! with ≥ 4 worker threads, ≥ 1.5× with 2–3, and a ≥ 0.97×
//! no-regression bound on one thread, where both paths run the same
//! inline code).
//!
//! Finally, the `ann_cluster_threshold` sweep times
//! `em_graph::build_graph_blocked` on single clusters of doubling sizes
//! with ANN routing disabled vs forced, and reports the measured
//! exact→ANN crossover; the committed default in
//! `battleship::config` cites this table.
//!
//! Knobs (environment):
//! * `EM_BENCH_BLOCKING_RECORDS` — records in the headline pool
//!   (default 100 000);
//! * `EM_BENCH_BLOCKING_ANCHOR_RECORDS` — records in the co-computable
//!   anchor pool (default 4 000);
//! * `EM_BENCH_BLOCKING_SPEEDUP_RECORDS` — records in the speedup pool
//!   (default 20 000);
//! * `EM_BENCH_BLOCKING_MIN_RECALL` — recall gate (default 0.95);
//! * `EM_BENCH_BLOCKING_MIN_REDUCTION` — reduction-ratio gate
//!   (default 0.99);
//! * `EM_BENCH_BLOCKING_MIN_SPEEDUP` — override the thread-aware gate
//!   (set 0 to only report);
//! * `EM_BENCH_BLOCKING_SWEEP_SIZES` — comma-separated cluster sizes
//!   for the ANN sweep (default `2048,4096,8192,16384`; empty skips);
//! * `EM_BENCH_BLOCKING_OUT` — output JSON path (default
//!   `BENCH_blocking.json`);
//! * `RAYON_NUM_THREADS` — worker threads.

use std::collections::HashSet;
use std::io::Write as _;

use battleship::{block_tables, BlockingSpec, LshBlocking, Scenario, MAX_EXHAUSTIVE_PAIRS};
use em_bench::env_or;
use em_core::Rng;
use em_graph::{build_graph_blocked, BlockedConfig, EdgeConfig, NodeKind};
use em_synth::{blocking_recall, generate_pool, BlockingConfig, DatasetProfile, PoolProfile};
use em_vector::Embeddings;

/// One row of the ANN-threshold sweep.
struct SweepRow {
    cluster_size: usize,
    exact_secs: f64,
    ann_secs: f64,
}

fn main() {
    let records: usize = env_or("EM_BENCH_BLOCKING_RECORDS", 100_000);
    let anchor_records: usize = env_or("EM_BENCH_BLOCKING_ANCHOR_RECORDS", 4_000);
    let speedup_records: usize = env_or("EM_BENCH_BLOCKING_SPEEDUP_RECORDS", 20_000);
    let min_recall: f64 = env_or("EM_BENCH_BLOCKING_MIN_RECALL", 0.95);
    let min_reduction: f64 = env_or("EM_BENCH_BLOCKING_MIN_REDUCTION", 0.99);
    let sweep_sizes: String = env_or(
        "EM_BENCH_BLOCKING_SWEEP_SIZES",
        "2048,4096,8192,16384".to_string(),
    );
    let out_path: String = env_or("EM_BENCH_BLOCKING_OUT", "BENCH_blocking.json".to_string());
    let threads = rayon::current_num_threads();
    let lsh_spec = BlockingSpec::Lsh(LshBlocking::default());
    let token_spec = BlockingSpec::Token(BlockingConfig::default());

    // --- Golden check 1: exhaustive spec ≡ legacy pair generation. -------
    eprintln!("[blocking] golden check: Exhaustive spec ≡ legacy scenario …");
    let legacy = Scenario::synthetic_scaled(DatasetProfile::amazon_google(), 0.04, 11);
    let via_spec = legacy.clone().with_blocking(BlockingSpec::Exhaustive);
    let a = legacy.materialize().expect("legacy materialize");
    let b = via_spec.materialize().expect("spec materialize");
    assert_eq!(a.dataset.pairs(), b.dataset.pairs(), "pair list diverged");
    assert_eq!(a.dataset.split(), b.dataset.split(), "split diverged");
    for i in 0..a.dataset.len() {
        assert_eq!(a.dataset.ground_truth(i), b.dataset.ground_truth(i));
        assert_eq!(a.features.row(i), b.features.row(i), "features diverged");
    }

    // --- Golden check 2: anchor pool — containment, dedup, recall. -------
    eprintln!("[blocking] anchor pool ({anchor_records} records): exhaustive vs LSH vs token …");
    let anchor_profile = PoolProfile::products("bench-anchor", anchor_records);
    let anchor = generate_pool(&anchor_profile, &mut Rng::seed_from_u64(0xA2C4)).unwrap();
    assert!(
        anchor.exhaustive_pairs() <= MAX_EXHAUSTIVE_PAIRS,
        "anchor pool must stay co-computable"
    );
    let exhaustive = block_tables(&anchor.left, &anchor.right, &BlockingSpec::Exhaustive).unwrap();
    let exhaustive_set: HashSet<(u32, u32)> =
        exhaustive.candidates.iter().map(|p| p.key()).collect();
    let anchor_lsh = block_tables(&anchor.left, &anchor.right, &lsh_spec).unwrap();
    let anchor_token = block_tables(&anchor.left, &anchor.right, &token_spec).unwrap();
    for (name, out) in [("lsh", &anchor_lsh), ("token", &anchor_token)] {
        assert!(
            out.candidates.windows(2).all(|w| w[0] < w[1]),
            "{name} candidates must be sorted and duplicate-free"
        );
        assert!(
            out.candidates
                .iter()
                .all(|p| exhaustive_set.contains(&p.key())),
            "{name} candidates must be a subset of the exhaustive pairs"
        );
    }
    let serial_lsh =
        rayon::serial_scope(|| block_tables(&anchor.left, &anchor.right, &lsh_spec).unwrap());
    assert_eq!(
        anchor_lsh.candidates, serial_lsh.candidates,
        "LSH candidates depend on worker-thread count"
    );
    let anchor_recall_lsh = blocking_recall(&anchor_lsh.candidates, &anchor.true_matches);
    let anchor_recall_token = blocking_recall(&anchor_token.candidates, &anchor.true_matches);
    eprintln!(
        "[blocking] anchor recall: lsh {anchor_recall_lsh:.4}, token {anchor_recall_token:.4} \
         (gate ≥ {min_recall})"
    );
    eprintln!("[blocking] golden checks passed");

    // --- Headline: 10⁵-record pool through the LSH tier. -----------------
    eprintln!("[blocking] headline pool ({records} records) through the LSH tier …");
    let headline = Scenario::pool(PoolProfile::products("bench-pool", records), 0xDA7A)
        .with_blocking(lsh_spec.clone());
    let mut pool = None;
    let headline_stats = criterion::measure(1, || {
        pool = Some(headline.candidate_pool().expect("candidate pool"));
    });
    let pool = pool.expect("measured at least once");
    let stats = pool.blocking.stats;
    let headline_recall = blocking_recall(&pool.blocking.candidates, &pool.true_matches);
    let headline_secs = headline_stats.median_secs;
    let pairs_per_sec = stats.n_candidates as f64 / headline_secs.max(1e-12);
    assert!(
        stats.exhaustive_pairs > MAX_EXHAUSTIVE_PAIRS,
        "headline pool must be beyond the exhaustive materialization cap \
         (got {} records total)",
        stats.n_left + stats.n_right
    );
    eprintln!(
        "[blocking] {} candidates in {headline_secs:.2} s ({pairs_per_sec:.0} pairs/s), \
         recall {headline_recall:.4}, reduction {:.6}",
        stats.n_candidates, stats.reduction_ratio
    );

    // --- Thread-aware speedup gate. --------------------------------------
    eprintln!("[blocking] speedup pool ({speedup_records} records): parallel vs pinned serial …");
    let speedup_profile = PoolProfile::products("bench-speedup", speedup_records);
    let sp_pool = generate_pool(&speedup_profile, &mut Rng::seed_from_u64(0x5EED)).unwrap();
    // Untimed warmup so neither side pays first-touch page faults and
    // allocator growth — the earlier parallel-first ordering charged all
    // of that to the parallel measurement and recorded a phantom 0.909×
    // "regression" at one thread.
    block_tables(&sp_pool.left, &sp_pool.right, &lsh_spec).unwrap();
    let parallel = criterion::measure(2, || {
        block_tables(&sp_pool.left, &sp_pool.right, &lsh_spec).unwrap()
    });
    let serial = rayon::serial_scope(|| {
        criterion::measure(2, || {
            block_tables(&sp_pool.left, &sp_pool.right, &lsh_spec).unwrap()
        })
    });
    let speedup = serial.median_secs / parallel.median_secs.max(1e-12);
    let min_speedup: f64 = env_or(
        "EM_BENCH_BLOCKING_MIN_SPEEDUP",
        if threads >= 4 {
            2.5
        } else if threads >= 2 {
            1.5
        } else {
            0.97
        },
    );
    eprintln!(
        "[blocking] speedup: {speedup:.2}× with {threads} thread(s) (gate: ≥ {min_speedup:.2}×)"
    );

    // --- ann_cluster_threshold sweep: exact vs ANN per cluster size. -----
    let sizes: Vec<usize> = sweep_sizes
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let mut sweep: Vec<SweepRow> = Vec::new();
    for &size in &sizes {
        eprintln!("[blocking] ANN sweep: cluster of {size} …");
        // One cluster of `size` pair nodes with realistic shape: unit
        // vectors, mixed predicted kinds, mid confidences.
        let mut rng = Rng::seed_from_u64(size as u64 ^ 0xA22);
        let dim = 32;
        let mut flat = Vec::with_capacity(size * dim);
        for _ in 0..size * dim {
            flat.push(rng.normal() as f32);
        }
        let mut emb = Embeddings::from_flat(dim, flat).unwrap();
        emb.normalize_rows();
        let kinds: Vec<NodeKind> = (0..size)
            .map(|i| {
                if i % 2 == 0 {
                    NodeKind::PredictedMatch
                } else {
                    NodeKind::PredictedNonMatch
                }
            })
            .collect();
        let confidences: Vec<f32> = (0..size).map(|_| rng.f32()).collect();
        let clusters = vec![(0..size).collect::<Vec<usize>>()];
        let edge = EdgeConfig::default();
        let exact = criterion::measure(1, || {
            build_graph_blocked(
                &emb,
                &kinds,
                &confidences,
                &clusters,
                &BlockedConfig {
                    edge,
                    ann_threshold: usize::MAX,
                    ann_seed: 0xA22_0E55,
                },
            )
            .expect("exact graph")
        });
        let ann = criterion::measure(1, || {
            build_graph_blocked(
                &emb,
                &kinds,
                &confidences,
                &clusters,
                &BlockedConfig {
                    edge,
                    ann_threshold: 2,
                    ann_seed: 0xA22_0E55,
                },
            )
            .expect("ann graph")
        });
        eprintln!(
            "[blocking]   exact {:.3} s, ann {:.3} s",
            exact.median_secs, ann.median_secs
        );
        sweep.push(SweepRow {
            cluster_size: size,
            exact_secs: exact.median_secs,
            ann_secs: ann.median_secs,
        });
    }
    let crossover = sweep
        .iter()
        .find(|row| row.ann_secs < row.exact_secs)
        .map(|row| row.cluster_size);
    match crossover {
        Some(c) => eprintln!("[blocking] ANN beats exact from cluster size {c}"),
        None => eprintln!("[blocking] exact wins at every swept size"),
    }

    // --- JSON artifact (written before gating, like the other benches). --
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|row| {
            format!(
                "    {{\"cluster_size\": {}, \"exact_secs\": {:.6}, \"ann_secs\": {:.6}}}",
                row.cluster_size, row.exact_secs, row.ann_secs
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"blocking tier\",\n  \"threads\": {threads},\n  \
         \"headline\": {{\n    \"records\": {},\n    \"left\": {},\n    \"right\": {},\n    \
         \"exhaustive_pairs\": {},\n    \"candidates\": {},\n    \
         \"candidate_secs\": {:.6},\n    \"pairs_per_sec\": {:.0},\n    \
         \"recall\": {:.6},\n    \"reduction_ratio\": {:.6}\n  }},\n  \
         \"anchor\": {{\n    \"records\": {anchor_records},\n    \
         \"recall_lsh\": {anchor_recall_lsh:.6},\n    \
         \"recall_token\": {anchor_recall_token:.6}\n  }},\n  \
         \"speedup\": {{\n    \"records\": {speedup_records},\n    \
         \"serial_median_secs\": {:.6},\n    \"parallel_median_secs\": {:.6},\n    \
         \"speedup\": {speedup:.3},\n    \"min_speedup_gate\": {min_speedup}\n  }},\n  \
         \"gates\": {{\"min_recall\": {min_recall}, \"min_reduction\": {min_reduction}}},\n  \
         \"ann_threshold_sweep\": [\n{}\n  ],\n  \"ann_crossover_cluster_size\": {}\n}}\n",
        stats.n_left + stats.n_right,
        stats.n_left,
        stats.n_right,
        stats.exhaustive_pairs,
        stats.n_candidates,
        headline_secs,
        pairs_per_sec,
        headline_recall,
        stats.reduction_ratio,
        serial.median_secs,
        parallel.median_secs,
        sweep_json.join(",\n"),
        crossover.map_or("null".to_string(), |c| c.to_string()),
    );
    let json = em_bench::with_provenance(&json);
    match std::fs::File::create(&out_path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("[blocking] wrote {out_path}"),
        Err(e) => eprintln!("[blocking] warning: could not write {out_path}: {e}"),
    }

    // --- Gates. -----------------------------------------------------------
    let mut failed = false;
    for (name, recall) in [
        ("anchor lsh", anchor_recall_lsh),
        ("anchor token", anchor_recall_token),
        ("headline lsh", headline_recall),
    ] {
        if recall < min_recall {
            eprintln!("[blocking] FAIL: {name} recall {recall:.4} below the {min_recall} gate");
            failed = true;
        }
    }
    if stats.reduction_ratio < min_reduction {
        eprintln!(
            "[blocking] FAIL: reduction ratio {:.4} below the {min_reduction} gate",
            stats.reduction_ratio
        );
        failed = true;
    }
    if min_speedup > 0.0 && speedup < min_speedup {
        eprintln!("[blocking] FAIL: speedup {speedup:.2}× below the {min_speedup:.2}× gate");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!("[blocking] PASS");
}
