//! Chaos benchmark: the serve layer under a seeded fault schedule.
//!
//! N mixed-strategy sessions in one [`SessionStore`] are driven to
//! completion while every backend operation passes through a
//! [`FaultyBackend`] injecting transient errors, torn writes,
//! crash-before-commit, silent bit corruption and latency — plus one
//! full process "crash" (store dropped, fresh store over the same
//! directory, `recover()`) in the middle of the run. Before the crash,
//! one torn write and one silent corruption are *forced*, so every run
//! exercises the quarantine-and-fall-back path, not just retry.
//!
//! Gates (all of them, every run):
//!
//! 1. **Completion** — every session reaches `Done`; no fault may cost
//!    a session.
//! 2. **Bit-identity** — the per-session reports equal (modulo
//!    wall-clock) the same population driven with no faults at all:
//!    retry, generational fallback and replay-from-checkpoint are
//!    correctness-invisible.
//! 3. **Fault quota** — the observed transient-failure rate is ≥ 5 % of
//!    backend operations, and at least one torn write and one corrupt
//!    frame were injected (a chaos run that injected nothing proves
//!    nothing).
//! 4. **Recovery evidence** — the mid-run `recover()` actually
//!    quarantined ≥ 1 corrupt frame and restored every session.
//!
//! Results are written to `BENCH_chaos.json` for CI artifacts.
//!
//! Knobs (environment):
//! * `EM_BENCH_CHAOS_SCALE` — dataset scale factor (default 0.05);
//! * `EM_BENCH_CHAOS_SESSIONS` — concurrent sessions (default 12);
//! * `EM_BENCH_CHAOS_SEED` — fault-plan seed (default 0xC4A05);
//! * `EM_BENCH_CHAOS_OUT` — output JSON path (default `BENCH_chaos.json`);
//! * `EM_BENCH_CHAOS_MIN_TRANSIENT_PCT` — override the ≥ 5 % observed
//!   transient-rate gate (set < 0 to only report).

use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use battleship::api::{
    ArtifactCache, DirBackend, Fault, FaultPlan, FaultyBackend, Label, MemoryBackend, PairIdx,
    RunReport, Scenario, SessionConfig, SessionPhase, SessionStore, SnapshotCodec, StrategySpec,
};
use battleship::ExperimentConfig;
use em_bench::env_or;
use em_synth::DatasetProfile;

/// Zero a run's wall-clock fields for equality comparison.
fn strip(mut r: RunReport) -> RunReport {
    for it in &mut r.iterations {
        it.train_secs = 0.0;
        it.select_secs = 0.0;
    }
    r
}

/// Session ids `c00..cNN` with strategy and seed derived from the index
/// (a heterogeneous population, as a server would see).
fn session_plan(n: usize) -> Vec<(String, StrategySpec, u64)> {
    (0..n)
        .map(|i| {
            (
                format!("c{i:02}"),
                StrategySpec::all()[i % 4],
                0xC4A0 + i as u64,
            )
        })
        .collect()
}

fn populate(
    store: &SessionStore,
    scenario: &Scenario,
    config: &ExperimentConfig,
    plan: &[(String, StrategySpec, u64)],
) {
    store.register_scenario(scenario.clone());
    for (id, strategy, seed) in plan {
        store
            .create(
                id,
                scenario.name(),
                SessionConfig {
                    experiment: config.clone(),
                    strategy: *strategy,
                    seed: *seed,
                },
            )
            .expect("create session");
    }
}

/// Answer every outstanding query batch from ground truth.
fn answer_batches(store: &SessionStore, plan: &[(String, StrategySpec, u64)]) {
    for (id, _, _) in plan {
        let batch = store.next_query_batch(id).expect("query batch");
        if batch.is_empty() {
            continue;
        }
        let artifacts = store.artifacts(id).expect("artifacts");
        let answers: Vec<(PairIdx, Label)> = batch
            .iter()
            .map(|&p| (p, artifacts.dataset.ground_truth(p)))
            .collect();
        store.submit_labels(id, &answers).expect("submit labels");
    }
}

/// Drive every session to `Done` in store-wide rounds, checkpointing
/// after each round when asked.
fn drive_to_done(
    store: &SessionStore,
    plan: &[(String, StrategySpec, u64)],
    checkpoint_each_round: bool,
) -> Vec<RunReport> {
    loop {
        answer_batches(store, plan);
        let stepped = store.step_ready_sessions().expect("step sessions");
        if checkpoint_each_round {
            store.checkpoint_all().expect("checkpoint all");
        }
        if stepped.is_empty() {
            let all_done = plan
                .iter()
                .all(|(id, _, _)| store.get(id).expect("status").phase == SessionPhase::Done);
            assert!(all_done, "store stalled with sessions not Done");
            break;
        }
    }
    plan.iter()
        .map(|(id, _, _)| store.report(id).expect("report"))
        .collect()
}

fn main() {
    let scale: f64 = env_or("EM_BENCH_CHAOS_SCALE", 0.05);
    let n_sessions: usize = env_or("EM_BENCH_CHAOS_SESSIONS", 12);
    let seed: u64 = env_or("EM_BENCH_CHAOS_SEED", 0xC4A05);
    let out_path: String = env_or("EM_BENCH_CHAOS_OUT", "BENCH_chaos.json".to_string());
    let min_transient_pct: f64 = env_or("EM_BENCH_CHAOS_MIN_TRANSIENT_PCT", 5.0);

    let mut config = ExperimentConfig::low_resource(2, 20);
    config.al.seed_size = 20;
    config.matcher.epochs = 8;
    config.battleship.kselect_sample = 128;

    let scenario = Scenario::synthetic_scaled(DatasetProfile::amazon_google(), scale, 0xDA7A);
    let cache = Arc::new(ArtifactCache::new());
    let art = cache
        .get_or_materialize(&scenario)
        .expect("materialize scenario");
    let plan = session_plan(n_sessions);
    eprintln!(
        "[chaos] {} sessions over `{}` ({} pairs), fault plan seed {seed:#x}",
        n_sessions,
        scenario.name(),
        art.dataset.len()
    );

    // Fault-free reference: same population over a pristine in-memory
    // backend. The chaos run must reproduce these reports exactly.
    eprintln!("[chaos] fault-free reference run …");
    let reference = {
        let store = SessionStore::with_cache(
            Box::new(MemoryBackend::new()),
            SnapshotCodec::Binary,
            cache.clone(),
        );
        populate(&store, &scenario, &config, &plan);
        drive_to_done(&store, &plan, false)
    };

    // Chaos run: directory backend wrapped in the fault injector.
    let dir = std::env::temp_dir().join(format!("em-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let backend = Arc::new(FaultyBackend::new(
        DirBackend::new(&dir).expect("create snapshot dir"),
        FaultPlan::chaos(seed),
    ));
    eprintln!(
        "[chaos] chaos run: transient {:.0}% / torn {:.0}% / corrupt {:.0}% / crash {:.0}% / latency {:.0}% …",
        100.0 * backend.plan().transient_rate,
        100.0 * backend.plan().torn_write_rate,
        100.0 * backend.plan().corrupt_rate,
        100.0 * backend.plan().crash_rate,
        100.0 * backend.plan().latency_rate,
    );
    let started = Instant::now();
    let store = SessionStore::with_cache(
        Box::new(backend.clone()),
        SnapshotCodec::Binary,
        cache.clone(),
    );
    populate(&store, &scenario, &config, &plan);

    // Two rounds with per-round checkpoints. Round 1's first checkpoint
    // put is forced torn (fails transiently, leaves a truncated frame on
    // disk, retry rewrites it); round 2's first checkpoint put is forced
    // silently corrupt — the newest frame of session `c00` at crash time
    // is garbage, so the recovery below MUST fall back a generation.
    for round in 0..2 {
        answer_batches(&store, &plan);
        store.step_ready_sessions().expect("step sessions");
        backend.force_on_put(if round == 0 {
            Fault::TornWrite
        } else {
            Fault::Corrupt
        });
        store.checkpoint_all().expect("checkpoint all");
    }

    // Process "crash": drop the store mid-run and recover a fresh one
    // over the same directory.
    drop(store);
    eprintln!("[chaos] simulated crash; recovering a fresh store …");
    let store = SessionStore::with_cache(
        Box::new(backend.clone()),
        SnapshotCodec::Binary,
        cache.clone(),
    );
    store.register_scenario(scenario.clone());
    let recovery = store.recover().expect("recover store");
    eprintln!(
        "[chaos] recovered {} session(s), quarantined {} frame(s), lost {}",
        recovery.recovered.len(),
        recovery.quarantined.len(),
        recovery.lost.len()
    );

    // Finish the run under continued fault injection.
    let chaos_reports = drive_to_done(&store, &plan, true);
    let wall_secs = started.elapsed().as_secs_f64();

    let stats = backend.stats();
    // Torn writes and crash-before-commit also surface to the store as
    // `EmError::Transient` (the caller retries them), so the observed
    // transient-failure rate counts all three.
    let transient_failures = stats.transient + stats.torn_writes + stats.crashes;
    let transient_pct = if stats.ops > 0 {
        100.0 * transient_failures as f64 / stats.ops as f64
    } else {
        0.0
    };
    eprintln!(
        "[chaos] {} backend ops: {} transient / {} torn / {} crash-before-commit \
         ({transient_pct:.1}% transient failures), {} corrupt, {} delayed; {wall_secs:.3} s wall",
        stats.ops,
        stats.transient,
        stats.torn_writes,
        stats.crashes,
        stats.corruptions,
        stats.delays
    );

    let mut mismatched = Vec::new();
    for ((id, _, _), (r, c)) in plan.iter().zip(reference.iter().zip(&chaos_reports)) {
        if strip(r.clone()) != strip(c.clone()) {
            mismatched.push(id.clone());
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"serve layer chaos\",\n  \"scenario\": \"{}\",\n  \
         \"pairs\": {},\n  \"sessions\": {},\n  \"fault_seed\": {seed},\n  \
         \"backend_ops\": {},\n  \"transient_faults\": {},\n  \
         \"transient_pct\": {transient_pct:.3},\n  \"torn_writes\": {},\n  \
         \"corruptions\": {},\n  \"crashes_before_commit\": {},\n  \"delays\": {},\n  \
         \"recovered_sessions\": {},\n  \"quarantined_frames\": {},\n  \"lost_sessions\": {},\n  \
         \"report_mismatches\": {},\n  \"wall_secs\": {wall_secs:.6},\n  \
         \"min_transient_pct_gate\": {min_transient_pct}\n}}\n",
        scenario.name(),
        art.dataset.len(),
        n_sessions,
        stats.ops,
        stats.transient,
        stats.torn_writes,
        stats.corruptions,
        stats.crashes,
        stats.delays,
        recovery.recovered.len(),
        recovery.quarantined.len(),
        recovery.lost.len(),
        mismatched.len(),
    );
    let json = em_bench::with_provenance(&json);
    match std::fs::File::create(&out_path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("[chaos] wrote {out_path}"),
        Err(e) => eprintln!("[chaos] warning: could not write {out_path}: {e}"),
    }
    let _ = std::fs::remove_dir_all(&dir);

    let mut failed = false;
    if !mismatched.is_empty() {
        eprintln!(
            "[chaos] FAIL: {} session(s) diverged from the fault-free run: {:?}",
            mismatched.len(),
            mismatched
        );
        failed = true;
    }
    if min_transient_pct >= 0.0 && transient_pct < min_transient_pct {
        eprintln!(
            "[chaos] FAIL: observed transient rate {transient_pct:.1}% below the \
             {min_transient_pct:.1}% gate"
        );
        failed = true;
    }
    if stats.torn_writes < 1 || stats.corruptions < 1 {
        eprintln!(
            "[chaos] FAIL: fault quota not met (torn {}, corrupt {}) — need ≥ 1 of each",
            stats.torn_writes, stats.corruptions
        );
        failed = true;
    }
    if recovery.quarantined.is_empty() {
        eprintln!(
            "[chaos] FAIL: recovery quarantined nothing — the corrupt frame was not exercised"
        );
        failed = true;
    }
    if recovery.recovered.len() != n_sessions || !recovery.lost.is_empty() {
        eprintln!(
            "[chaos] FAIL: recovery restored {}/{} sessions ({} lost)",
            recovery.recovered.len(),
            n_sessions,
            recovery.lost.len()
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!("[chaos] PASS: every session finished bit-identical to the fault-free run");
}
